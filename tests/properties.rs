//! Property-based tests (proptest) over the core data structures and
//! invariants: cache bookkeeping, resize semantics, the tuner state
//! machine, statistics accumulators, and workload generation.

use ace::core::{single_cu_list, AceConfig, ConfigTuner, Measurement};
use ace::sim::{
    Cache, CacheGeometry, CuKind, Machine, MachineConfig, MemAccess, OnlineStats, SizeLevel,
};
use ace::workloads::{DetRng, Executor, MemPattern, ProgramBuilder, Step, Stmt};
use proptest::prelude::*;

fn small_geom() -> CacheGeometry {
    CacheGeometry {
        size_bytes: 8 * 1024,
        ways: 2,
        block_bytes: 64,
        hit_latency: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any access, the line is resident; counters stay consistent.
    #[test]
    fn cache_access_invariants(ops in prop::collection::vec((0u64..1u64<<20, any::<bool>()), 1..400)) {
        let mut c = Cache::new(small_geom()).unwrap();
        for &(addr, is_store) in &ops {
            c.access(addr, is_store);
            prop_assert!(c.contains(addr), "just-accessed line must be resident");
        }
        let s = c.stats();
        prop_assert_eq!(s.total_accesses(), ops.len() as u64);
        prop_assert!(s.total_misses() <= s.total_accesses());
        prop_assert!(s.stores.iter().sum::<u64>() <= s.total_accesses());
        prop_assert!(c.valid_lines() <= 8 * 1024 / 64);
        prop_assert!(c.dirty_lines() <= c.valid_lines());
    }

    /// Shrinking can only remove lines; lines in surviving sets remain,
    /// and the flush report accounts exactly for what disappeared.
    #[test]
    fn cache_resize_conservation(
        ops in prop::collection::vec((0u64..1u64<<18, any::<bool>()), 1..300),
        level in 0u8..4,
    ) {
        let mut c = Cache::new(small_geom()).unwrap();
        for &(addr, is_store) in &ops {
            c.access(addr, is_store);
        }
        let valid_before = c.valid_lines();
        let dirty_before = c.dirty_lines();
        let report = c.resize(SizeLevel::new(level).unwrap());
        prop_assert_eq!(c.valid_lines() + report.valid_lines, valid_before);
        prop_assert_eq!(c.dirty_lines() + report.dirty_lines, dirty_before);
        prop_assert!(report.dirty_lines <= report.valid_lines);
    }

    /// A resize round-trip never invents hits: every line reported
    /// resident after shrink+grow was resident before.
    #[test]
    fn cache_resize_no_phantom_lines(
        addrs in prop::collection::vec(0u64..1u64<<18, 1..200),
        level in 1u8..4,
    ) {
        let mut c = Cache::new(small_geom()).unwrap();
        for &a in &addrs {
            c.access(a, false);
        }
        let resident_before: Vec<u64> =
            addrs.iter().copied().filter(|&a| c.contains(a)).collect();
        c.resize(SizeLevel::new(level).unwrap());
        c.resize(SizeLevel::LARGEST);
        for &a in &addrs {
            if c.contains(a) {
                prop_assert!(resident_before.contains(&a), "phantom line {a:#x}");
            }
        }
    }

    /// The tuner always terminates, picks a configuration from its list,
    /// and never picks a non-reference configuration that violates the
    /// performance threshold.
    #[test]
    fn tuner_selection_sound(
        ipcs in prop::collection::vec(0.5f64..4.0, 4),
        epis in prop::collection::vec(0.01f64..2.0, 4),
        threshold in 0.0f64..0.3,
    ) {
        let list = single_cu_list(CuKind::L1d);
        let mut t = ConfigTuner::new(list.clone(), threshold);
        let mut fed = Vec::new();
        let mut i = 0;
        while t.next_trial().is_some() {
            let m = Measurement { instr: 100_000, ipc: ipcs[i], epi_nj: epis[i] };
            fed.push((t.next_trial().unwrap(), m));
            t.record(m);
            i += 1;
            prop_assert!(i <= 4, "walk must terminate within the list length");
        }
        prop_assert!(t.is_done());
        let best = t.best().unwrap();
        prop_assert!(list.contains(&best));
        // If the best is not the reference, it met the threshold.
        if best != list[0] {
            let reference = fed[0].1.ipc;
            let chosen = fed.iter().find(|(c, _)| *c == best).unwrap().1;
            prop_assert!(chosen.ipc >= reference * (1.0 - threshold) - 1e-12);
        }
    }

    /// Domination is reflexive and transitive on full configurations.
    #[test]
    fn domination_is_a_preorder(a in 0u8..4, b in 0u8..4, c in 0u8..4,
                                d in 0u8..4, e in 0u8..4, f in 0u8..4) {
        let x = AceConfig::both(SizeLevel::new(a).unwrap(), SizeLevel::new(b).unwrap());
        let y = AceConfig::both(SizeLevel::new(c).unwrap(), SizeLevel::new(d).unwrap());
        let z = AceConfig::both(SizeLevel::new(e).unwrap(), SizeLevel::new(f).unwrap());
        prop_assert!(x.dominated_by(&x));
        if x.dominated_by(&y) && y.dominated_by(&z) {
            prop_assert!(x.dominated_by(&z));
        }
    }

    /// `AceConfig` serde round-trips losslessly through its sparse JSON
    /// shape for every combination of touched CUs and levels.
    #[test]
    fn ace_config_serde_round_trip(levels in prop::collection::vec(prop::option::of(0u8..4), 4)) {
        let mut cfg = AceConfig::empty();
        for (cu, lvl) in CuKind::ALL.into_iter().zip(levels.iter()) {
            cfg.set(cu, lvl.map(|l| SizeLevel::new(l).unwrap()));
        }
        let json = serde_json::to_string(&cfg).unwrap();
        let back: AceConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, cfg);
        prop_assert_eq!(format!("{back}"), format!("{cfg}"));
    }

    /// Every legacy `{l1d,l2,window}` JSON shape (nulls included) parses
    /// into the equivalent per-CU array form.
    #[test]
    fn ace_config_legacy_json_parses(
        l1d in prop::option::of(0u8..4),
        l2 in prop::option::of(0u8..4),
        window in prop::option::of(0u8..4),
    ) {
        let field = |v: Option<u8>| v.map_or("null".to_string(), |l| l.to_string());
        let json = format!(
            r#"{{"l1d":{},"l2":{},"window":{}}}"#,
            field(l1d), field(l2), field(window)
        );
        let parsed: AceConfig = serde_json::from_str(&json).unwrap();
        let mut want = AceConfig::empty();
        want.set(CuKind::L1d, l1d.map(|l| SizeLevel::new(l).unwrap()));
        want.set(CuKind::L2, l2.map(|l| SizeLevel::new(l).unwrap()));
        want.set(CuKind::Window, window.map(|l| SizeLevel::new(l).unwrap()));
        prop_assert_eq!(parsed, want);
    }

    /// Welford merge equals sequential accumulation.
    #[test]
    fn online_stats_merge(xs in prop::collection::vec(-1e6f64..1e6, 2..100),
                          split in 1usize..99) {
        let split = split.min(xs.len() - 1);
        let mut all = OnlineStats::new();
        for &x in &xs { all.push(x); }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() <= 1e-6 * (1.0 + all.mean().abs()));
        prop_assert!(
            (left.population_variance() - all.population_variance()).abs()
                <= 1e-5 * (1.0 + all.population_variance())
        );
    }

    /// The deterministic RNG respects ranges.
    #[test]
    fn det_rng_ranges(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            let v = rng.range(lo, lo + span);
            prop_assert!(v >= lo && v <= lo + span);
            let b = rng.below(span + 1);
            prop_assert!(b <= span);
        }
    }

    /// Randomly shaped programs build, validate, and execute with
    /// balanced enter/exit events and plausible instruction totals.
    #[test]
    fn random_programs_execute_cleanly(
        seed in any::<u64>(),
        leaf_instr in 100u64..5_000,
        calls in 1u32..20,
        loops in 1u32..8,
        ws in 256u64..32_768,
    ) {
        let mut b = ProgramBuilder::new("prop", seed);
        let region = b.alloc_region(ws);
        let pat = b.add_pattern(MemPattern::resident(region, ws));
        let leaf = b.add_method("leaf", vec![Stmt::Compute { ninstr: leaf_instr, pattern: pat }]);
        b.own_pattern(leaf, pat);
        let mid = b.add_method(
            "mid",
            vec![Stmt::Loop { count: loops, body: vec![Stmt::Call { callee: leaf, count: calls }] }],
        );
        let main = b.add_method("main", vec![Stmt::Call { callee: mid, count: 2 }]);
        let program = b.entry(main).build().unwrap();
        program.validate().unwrap();

        let mut exec = Executor::new(&program);
        let mut buf = ace::sim::Block::default();
        let mut depth: i64 = 0;
        let mut emitted = 0u64;
        loop {
            match exec.step(&mut buf) {
                Step::Enter(_) => depth += 1,
                Step::Exit(_) => { depth -= 1; prop_assert!(depth >= 0); }
                Step::Block => {
                    prop_assert!(depth > 0);
                    emitted += buf.ninstr as u64;
                    for a in &buf.accesses {
                        prop_assert!(a.addr >= region && a.addr < region + ws);
                    }
                }
                Step::Done => break,
            }
        }
        prop_assert_eq!(depth, 0);
        let expect = program.static_size(main);
        prop_assert!(emitted > expect / 2 && emitted < expect * 2,
            "emitted {} vs static {}", emitted, expect);
    }

    /// Machine counters never go backwards and the reconfiguration guard
    /// always enforces its interval.
    #[test]
    fn machine_guard_monotonic(levels in prop::collection::vec(0u8..4, 1..20)) {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut last_change_at: Option<u64> = None;
        for (i, &lvl) in levels.iter().enumerate() {
            // Retire some instructions between requests.
            for k in 0..40u64 {
                m.exec_block(&ace::sim::Block {
                    pc: 0x400,
                    ninstr: 50,
                    accesses: vec![MemAccess::load(0x8000 + (i as u64 * 40 + k) * 64)],
                    branch: None,
                });
            }
            let now = m.instret();
            let outcome = m.request_resize(CuKind::L1d, SizeLevel::new(lvl).unwrap());
            if let ace::sim::ReconfigOutcome::Applied(_) = outcome {
                if let Some(prev) = last_change_at {
                    prop_assert!(now - prev >= m.config().l1d_reconfig_interval,
                        "guard violated: {} since last change", now - prev);
                }
                last_change_at = Some(now);
            }
        }
    }
}
