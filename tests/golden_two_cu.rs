//! Two-CU equivalence goldens: pins the headline summaries and the full
//! telemetry event streams of seeded paper experiments to fixture bytes
//! captured before the registry-driven CU refactor.
//!
//! The paper's experiments configure exactly the L1D and L2 caches (plus
//! the vestigial window CU). The CU-registry refactor must not perturb a
//! single byte of what those runs measure or emit, so this test extends
//! the `golden_counters.rs` pattern one layer up: from raw machine
//! counters to the manager layer (scheme reports and telemetry streams).
//!
//! Regenerate fixtures (only legitimate after an *intentional* behaviour
//! change, never to paper over a refactor diff):
//!
//! ```text
//! ACE_BLESS_GOLDEN=1 cargo test --test golden_two_cu
//! ```

use ace::core::{Experiment, Scheme, SchemeExt};
use ace::telemetry::Telemetry;
use std::fmt::Write as _;
use std::path::PathBuf;

const SEED: u64 = 42;
const RING_CAPACITY: usize = 1 << 20;

const CASES: &[(&str, Scheme)] = &[
    ("db", Scheme::Hotspot),
    ("db", Scheme::Bbv),
    ("jess", Scheme::Hotspot),
    ("jess", Scheme::Bbv),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Runs one seeded case, returning (telemetry stream, headline digest).
fn run_case(workload: &str, scheme: Scheme) -> (String, String) {
    let (tel, ring) = Telemetry::ring(RING_CAPACITY);
    let run = Experiment::preset(workload)
        .scheme(scheme)
        .seed(SEED)
        .telemetry(&tel)
        .run_scheme()
        .expect("seeded golden run succeeds");
    let events = ring.snapshot();
    assert!(
        (events.len() as u64) == ring.recorded(),
        "ring overflowed; raise RING_CAPACITY"
    );
    let mut stream = String::new();
    for ev in &events {
        stream.push_str(&serde_json::to_string(ev).expect("event serializes"));
        stream.push('\n');
    }
    (stream, digest(workload, scheme, &run))
}

/// Renders the headline summary through stable accessors only; `{:?}`
/// float formatting makes any bit-level drift visible.
fn digest(workload: &str, scheme: Scheme, run: &ace::core::SchemeRun) -> String {
    let r = &run.record;
    let mut out = String::new();
    let _ = writeln!(out, "workload {workload} scheme {}", scheme.name());
    let _ = writeln!(out, "instret {}", r.instret);
    let _ = writeln!(out, "cycles {}", r.cycles);
    let _ = writeln!(out, "ipc {:?}", r.ipc);
    let _ = writeln!(out, "l1d_nj {:?}", r.energy.l1d_nj);
    let _ = writeln!(out, "l2_nj {:?}", r.energy.l2_nj);
    let _ = writeln!(out, "window_nj {:?}", r.energy.window_nj);
    let _ = writeln!(out, "total_nj {:?}", r.energy.total_nj());
    let _ = writeln!(out, "guard_rejections {}", r.counters.guard_rejections);
    let _ = writeln!(out, "table4_hotspots {}", r.table4.hotspots);
    let _ = writeln!(out, "do_jit {}", r.do_stats.jit_compilations);
    let _ = writeln!(out, "do_instr_in_hotspots {}", r.do_stats.instr_in_hotspots);
    match &run.report.ext {
        SchemeExt::Hotspot(h) => {
            let _ = writeln!(
                out,
                "hotspots window {} l1d {} l2 {} small {} tuned {}",
                h.window_hotspots(),
                h.l1d_hotspots(),
                h.l2_hotspots(),
                h.small_hotspots,
                h.tuned_hotspots
            );
            for (name, s) in [("window", h.window()), ("l1d", h.l1d()), ("l2", h.l2())] {
                let _ = writeln!(
                    out,
                    "cu {name} tunings {} reconfigs {} covered {}",
                    s.tunings, s.reconfigs, s.covered_instr
                );
            }
            let _ = writeln!(out, "per_hotspot_ipc_cov {:?}", h.per_hotspot_ipc_cov);
            let _ = writeln!(out, "inter_hotspot_ipc_cov {:?}", h.inter_hotspot_ipc_cov);
            let _ = writeln!(out, "retunings {}", h.retunings);
            let _ = writeln!(out, "report_guard_rejections {}", h.guard_rejections);
        }
        SchemeExt::Bbv(b) => {
            let _ = writeln!(out, "phases {} tuned {}", b.phases, b.tuned_phases);
            let _ = writeln!(
                out,
                "intervals {} in_tuned {}",
                b.intervals, b.intervals_in_tuned_phases
            );
            let _ = writeln!(
                out,
                "tunings {} reconfigs {} covered {}",
                b.tunings, b.reconfigs, b.covered_instr
            );
            let _ = writeln!(out, "per_phase_ipc_cov {:?}", b.per_phase_ipc_cov);
            let _ = writeln!(out, "inter_phase_ipc_cov {:?}", b.inter_phase_ipc_cov);
            let _ = writeln!(out, "misattributed_trials {}", b.misattributed_trials);
            let _ = writeln!(
                out,
                "predictions {} accuracy {:?}",
                b.predictions, b.prediction_accuracy
            );
            let _ = writeln!(
                out,
                "stability stable {} transitional {}",
                b.stability.stable_intervals, b.stability.transitional_intervals
            );
        }
        _ => unreachable!("golden cases are Hotspot/Bbv only"),
    }
    out
}

#[test]
fn two_cu_runs_match_pre_refactor_bytes() {
    let bless = std::env::var_os("ACE_BLESS_GOLDEN").is_some();
    let dir = fixture_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("create fixture dir");
    }
    for &(workload, scheme) in CASES {
        let (stream, digest) = run_case(workload, scheme);
        let stem = format!("{workload}-{}", scheme.name());
        let events_path = dir.join(format!("{stem}.events.jsonl"));
        let digest_path = dir.join(format!("{stem}.digest.txt"));
        if bless {
            std::fs::write(&events_path, &stream).expect("write events fixture");
            std::fs::write(&digest_path, &digest).expect("write digest fixture");
            continue;
        }
        let want_digest = std::fs::read_to_string(&digest_path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", digest_path.display()));
        assert_eq!(
            digest, want_digest,
            "{stem}: headline digest drifted from pre-refactor bytes"
        );
        let want_stream = std::fs::read_to_string(&events_path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", events_path.display()));
        if stream != want_stream {
            let got: Vec<&str> = stream.lines().collect();
            let want: Vec<&str> = want_stream.lines().collect();
            let first_diff = got
                .iter()
                .zip(want.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| got.len().min(want.len()));
            panic!(
                "{stem}: telemetry stream drifted ({} vs {} events), first diff at line {}:\n  got: {}\n want: {}",
                got.len(),
                want.len(),
                first_diff + 1,
                got.get(first_diff).unwrap_or(&"<eof>"),
                want.get(first_diff).unwrap_or(&"<eof>"),
            );
        }
    }
}
