//! Cross-crate integration tests: workloads → runtime → simulator →
//! managers, exercised end-to-end the way the experiment harness uses
//! them. Runs are capped at a few million instructions so the suite stays
//! fast in debug builds; the full-length reproduction lives in
//! `crates/bench`.

use ace::core::{
    AceConfig, BbvAceManager, BbvManagerConfig, Experiment, HotspotAceManager,
    HotspotManagerConfig, Scheme,
};
use ace::energy::EnergyModel;
use ace::sim::SizeLevel;

fn exp(name: &str, limit: u64) -> Experiment {
    Experiment::preset(name).instruction_limit(limit)
}

#[test]
fn every_preset_runs_under_every_scheme() {
    let model = EnergyModel::default_180nm();
    for name in ace::workloads::PRESET_NAMES {
        let base = exp(name, 2_000_000).run().unwrap();
        assert!(
            base.ipc > 1.0 && base.ipc <= 4.0,
            "{name}: baseline ipc {}",
            base.ipc
        );
        assert!(base.energy.total_nj() > 0.0);

        let mut bbv = BbvAceManager::new(BbvManagerConfig::default(), model);
        let b = exp(name, 2_000_000).run_with(&mut bbv).unwrap();
        assert_eq!(b.instret, base.instret, "{name}: same instruction stream");

        let mut hs = HotspotAceManager::new(HotspotManagerConfig::default(), model);
        let h = exp(name, 2_000_000).run_with(&mut hs).unwrap();
        assert_eq!(h.instret, base.instret);
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let model = EnergyModel::default_180nm();
    let mut a_mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let a = exp("jess", 3_000_000).run_with(&mut a_mgr).unwrap();
    let mut b_mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let b = exp("jess", 3_000_000).run_with(&mut b_mgr).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a_mgr.report(), b_mgr.report());
}

#[test]
fn hotspot_scheme_saves_energy_on_db() {
    // db's defining property: tiny working sets, so even a short run shows
    // substantial L1D savings once tuning completes.
    let base = exp("db", 30_000_000).run().unwrap();
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let run = exp("db", 30_000_000).run_with(&mut mgr).unwrap();
    assert!(
        run.l1d_saving_vs(&base) > 0.25,
        "db L1D saving {:.3} too small",
        run.l1d_saving_vs(&base)
    );
    assert!(
        run.slowdown_vs(&base) < 0.08,
        "slowdown {:.3}",
        run.slowdown_vs(&base)
    );
    let report = mgr.report();
    assert!(
        report.l1d_hotspots() >= 5,
        "L1D hotspots {}",
        report.l1d_hotspots()
    );
    assert!(report.tuned_fraction() > 0.5);
}

#[test]
fn detection_statistics_are_consistent() {
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let run = exp("compress", 20_000_000).run_with(&mut mgr).unwrap();
    let report = mgr.report();

    let t4 = &run.table4;
    assert!(t4.hotspots >= report.l1d_hotspots() + report.l2_hotspots());
    assert!(t4.pct_code_in_hotspots <= 100.0);
    assert!(t4.identification_latency_pct <= 100.0);
    assert!(report.tuned_hotspots <= report.l1d_hotspots() + report.l2_hotspots());
    assert!(report.l1d().covered_instr <= run.instret);
    assert!(report.l2().covered_instr <= run.instret);
}

#[test]
fn bbv_scheme_reports_are_consistent() {
    let mut mgr = BbvAceManager::new(BbvManagerConfig::default(), EnergyModel::default_180nm());
    let run = exp("mpeg", 25_000_000).run_with(&mut mgr).unwrap();
    let report = mgr.report();

    assert!(report.intervals >= 20, "intervals {}", report.intervals);
    assert_eq!(report.stability.total_intervals, report.intervals);
    assert!(report.tuned_phases <= report.phases);
    assert!(report.intervals_in_tuned_phases <= report.intervals);
    assert!(report.covered_instr <= run.instret);
    assert!(report.per_phase_ipc_cov >= 0.0);
}

#[test]
fn fixed_configurations_trade_energy_for_ipc() {
    let base = exp("jess", 5_000_000).run().unwrap();
    let small = exp("jess", 5_000_000)
        .scheme(Scheme::Fixed(AceConfig::both(
            SizeLevel::SMALLEST,
            SizeLevel::SMALLEST,
        )))
        .run()
        .unwrap();
    // The smallest configuration always burns less leakage...
    assert!(small.energy.l1d_leak_nj < base.energy.l1d_leak_nj);
    assert!(small.energy.l2_leak_nj < base.energy.l2_leak_nj);
    // ...but cannot be faster.
    assert!(small.ipc <= base.ipc * 1.001);
}

#[test]
fn decoupling_outperforms_coupled_tuning() {
    let model = EnergyModel::default_180nm();
    let base = exp("mpeg", 40_000_000).run().unwrap();

    let mut on = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let r_on = exp("mpeg", 40_000_000).run_with(&mut on).unwrap();
    let mut off = HotspotAceManager::new(
        HotspotManagerConfig {
            decouple: false,
            ..HotspotManagerConfig::default()
        },
        model,
    );
    let r_off = exp("mpeg", 40_000_000).run_with(&mut off).unwrap();

    let sav_on = 1.0 - r_on.energy.total_nj() / base.energy.total_nj();
    let sav_off = 1.0 - r_off.energy.total_nj() / base.energy.total_nj();
    assert!(
        sav_on > sav_off,
        "decoupling on ({sav_on:.3}) must beat off ({sav_off:.3})"
    );
    // Coupled tuning needs more trials per tuned hotspot.
    let rep_on = on.report();
    let rep_off = off.report();
    let per_on =
        (rep_on.l1d().tunings + rep_on.l2().tunings) as f64 / rep_on.tuned_hotspots.max(1) as f64;
    let per_off = (rep_off.l1d().tunings + rep_off.l2().tunings) as f64
        / rep_off.tuned_hotspots.max(1) as f64;
    assert!(
        per_off > per_on,
        "coupled {per_off:.1} vs decoupled {per_on:.1} trials/hotspot"
    );
}

#[test]
fn guard_rejections_only_without_decoupling() {
    // With decoupling, small hotspots never touch the L2, so the hardware
    // guard is essentially idle; the coupled ablation hammers it.
    let model = EnergyModel::default_180nm();
    let mut on = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let r_on = exp("jess", 20_000_000).run_with(&mut on).unwrap();
    let mut off = HotspotAceManager::new(
        HotspotManagerConfig {
            decouple: false,
            ..HotspotManagerConfig::default()
        },
        model,
    );
    let r_off = exp("jess", 20_000_000).run_with(&mut off).unwrap();
    assert!(
        r_off.counters.guard_rejections > r_on.counters.guard_rejections,
        "coupled {} vs decoupled {}",
        r_off.counters.guard_rejections,
        r_on.counters.guard_rejections
    );
}

#[test]
fn prediction_extension_eliminates_tuning() {
    let program = ace::workloads::preset("db").unwrap();
    let model = EnergyModel::default_180nm();
    let mut mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    // Predict the smallest L1D and a mid L2 for every method.
    for id in 0..program.method_count() as u32 {
        mgr.set_prediction(
            ace::workloads::MethodId(id),
            AceConfig::both(SizeLevel::SMALLEST, SizeLevel::new(2).unwrap()),
        );
    }
    let _ = Experiment::program(program.clone())
        .instruction_limit(20_000_000)
        .run_with(&mut mgr)
        .unwrap();
    let report = mgr.report();
    assert_eq!(
        report.l1d().tunings + report.l2().tunings,
        0,
        "predictions skip trials"
    );
    assert!(report.l1d().reconfigs > 0, "predicted configs are applied");
}
