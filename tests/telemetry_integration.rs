//! End-to-end checks of the `ace-telemetry` wiring: events are
//! deterministic across identical runs, and the decision stream agrees
//! with the counters the managers report through [`HotspotReport`].

use ace::core::{Experiment, HotspotAceManager, HotspotManagerConfig};
use ace::energy::EnergyModel;
use ace::telemetry::{Event, EventKind, ReconfigCause, Telemetry};

fn traced_run(workload: &str, limit: u64) -> (Vec<Event>, ace::core::HotspotReport) {
    let (telemetry, ring) = Telemetry::ring(1 << 17);
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    Experiment::preset(workload)
        .instruction_limit(limit)
        .telemetry(&telemetry)
        .run_with(&mut mgr)
        .expect("valid run");
    (ring.snapshot(), mgr.report())
}

#[test]
fn identical_runs_emit_identical_event_streams() {
    let (first, _) = traced_run("db", 20_000_000);
    let (second, _) = traced_run("db", 20_000_000);
    assert!(!first.is_empty(), "a traced db run must emit events");
    assert_eq!(
        first, second,
        "event streams must be bit-identical across runs"
    );
}

#[test]
fn compress_trace_matches_hotspot_report() {
    let (events, report) = traced_run("compress", 60_000_000);

    let applies = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                Event::Reconfigured {
                    cause: ReconfigCause::Apply,
                    ..
                }
            )
        })
        .count() as u64;
    let reported = report.window().reconfigs + report.l1d().reconfigs + report.l2().reconfigs;
    assert!(
        applies >= 1,
        "compress must apply at least one configuration"
    );
    assert_eq!(
        applies, reported,
        "apply-cause Reconfigured events must equal the report's reconfig count"
    );

    let converged = events
        .iter()
        .filter(|e| matches!(e, Event::TuningConverged { .. }))
        .count() as u64;
    assert!(converged >= 1, "compress must converge at least one tuner");
    assert!(
        converged >= report.tuned_hotspots,
        "every tuned hotspot ({}) must have announced convergence ({converged})",
        report.tuned_hotspots
    );
}

#[test]
fn jsonl_sink_captures_a_compress_run() {
    let path = std::env::temp_dir().join(format!("ace_telemetry_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let telemetry = Telemetry::jsonl(&path).expect("temp dir is writable");
        let mut mgr = HotspotAceManager::new(
            HotspotManagerConfig::default(),
            EnergyModel::default_180nm(),
        );
        Experiment::preset("compress")
            .instruction_limit(60_000_000)
            .telemetry(&telemetry)
            .run_with(&mut mgr)
            .expect("valid run");
        telemetry.flush();

        let text = std::fs::read_to_string(&path).expect("telemetry file exists");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len() as u64,
            telemetry.total_events(),
            "one JSONL line per emitted event"
        );
        assert!(lines.iter().any(|l| l.contains("Reconfigured")));
        assert!(lines.iter().any(|l| l.contains("TuningConverged")));
        assert_eq!(
            lines.iter().filter(|l| l.contains("Reconfigured")).count() as u64,
            telemetry.count(EventKind::Reconfigured),
        );
    }
    let _ = std::fs::remove_file(&path);
}
