//! Full-length golden regression of the headline reproduction.
//!
//! These run complete (~80 M instruction) workloads and take minutes in
//! debug builds, so they are `#[ignore]`d by default; run them with
//!
//! ```text
//! cargo test --release --test headline_regression -- --ignored
//! ```
//!
//! The assertions pin the *shape* of Figures 3/4 — the claims EXPERIMENTS.md
//! records — so calibration drift fails loudly instead of silently.

use ace::core::{
    BbvAceManager, BbvManagerConfig, Experiment, HotspotAceManager, HotspotManagerConfig,
};
use ace::energy::EnergyModel;

struct Outcome {
    l1d_saving: f64,
    l2_saving: f64,
    slowdown: f64,
}

fn run_pair(name: &str) -> (Outcome, Outcome) {
    let model = EnergyModel::default_180nm();
    let base = Experiment::preset(name).run().unwrap();

    let mut bbv = BbvAceManager::new(BbvManagerConfig::default(), model);
    let b = Experiment::preset(name).run_with(&mut bbv).unwrap();
    let mut hs = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let h = Experiment::preset(name).run_with(&mut hs).unwrap();

    let mk = |r: &ace::core::RunRecord| Outcome {
        l1d_saving: 100.0 * r.l1d_saving_vs(&base),
        l2_saving: 100.0 * r.l2_saving_vs(&base),
        slowdown: 100.0 * r.slowdown_vs(&base),
    };
    (mk(&b), mk(&h))
}

#[test]
#[ignore = "full-length run; invoke with --ignored in release builds"]
fn headline_shape_holds_on_every_workload() {
    let mut bbv_l1d = Vec::new();
    let mut hs_l1d = Vec::new();
    let mut bbv_l2 = Vec::new();
    let mut hs_l2 = Vec::new();
    let mut bbv_slow = Vec::new();
    let mut hs_slow = Vec::new();

    for name in ace::workloads::PRESET_NAMES {
        let (bbv, hs) = run_pair(name);
        // The hotspot scheme wins L1D on every benchmark (Fig 3a).
        assert!(
            hs.l1d_saving > bbv.l1d_saving,
            "{name}: hotspot L1D {:.1} must beat BBV {:.1}",
            hs.l1d_saving,
            bbv.l1d_saving
        );
        // Substantial hotspot savings everywhere.
        assert!(
            hs.l1d_saving > 30.0,
            "{name}: hotspot L1D saving {:.1}",
            hs.l1d_saving
        );
        assert!(
            hs.l2_saving > 10.0,
            "{name}: hotspot L2 saving {:.1}",
            hs.l2_saving
        );
        // Slowdowns stay in the low single digits (Fig 4 band).
        assert!(
            hs.slowdown < 6.0,
            "{name}: hotspot slowdown {:.2}",
            hs.slowdown
        );
        assert!(
            bbv.slowdown < 10.0,
            "{name}: BBV slowdown {:.2}",
            bbv.slowdown
        );

        bbv_l1d.push(bbv.l1d_saving);
        hs_l1d.push(hs.l1d_saving);
        bbv_l2.push(bbv.l2_saving);
        hs_l2.push(hs.l2_saving);
        bbv_slow.push(bbv.slowdown);
        hs_slow.push(hs.slowdown);
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Averages land in the reproduction's recorded bands.
    assert!(avg(&hs_l1d) > 42.0, "avg hotspot L1D {:.1}", avg(&hs_l1d));
    assert!(avg(&hs_l2) > 30.0, "avg hotspot L2 {:.1}", avg(&hs_l2));
    assert!(avg(&hs_l1d) > avg(&bbv_l1d) + 15.0, "the Fig 3a gap");
    assert!(avg(&hs_l2) > avg(&bbv_l2), "the Fig 3b ordering");
    assert!(avg(&hs_slow) < avg(&bbv_slow), "the Fig 4 ordering");
    assert!(
        avg(&hs_slow) < 3.5,
        "avg hotspot slowdown {:.2}",
        avg(&hs_slow)
    );
}

#[test]
#[ignore = "full-length run; invoke with --ignored in release builds"]
fn db_keeps_its_signature_result() {
    // The paper's flagship per-benchmark observation: db's tiny working
    // sets make it a top L1D saver under the hotspot scheme while the BBV
    // compromise captures far less.
    let (bbv, hs) = run_pair("db");
    assert!(hs.l1d_saving > 45.0, "db hotspot L1D {:.1}", hs.l1d_saving);
    assert!(hs.l1d_saving - bbv.l1d_saving > 25.0, "db gap");
}
