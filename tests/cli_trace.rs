//! Exit-code and output contract of the `ace trace` subcommands, driven
//! through the real binary: `summarize`/`timeline`/`chrome` succeed on a
//! recorded trace, `diff` exits zero on identical runs and nonzero when a
//! synthetic regression exceeds the thresholds, and the legacy
//! `ace trace <workload> <file>` recorder still works.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ace"))
        .args(args)
        .output()
        .expect("ace binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ace_cli_trace_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A small synthetic trace: one converged episode plus a reconfiguration,
/// with the converged IPC injectable so tests can fabricate regressions.
fn synthetic_trace(ipc: f64) -> String {
    let scope = r#"{"Hotspot":{"method":3}}"#;
    [
        r#"{"HotspotPromoted":{"method":3,"invocations":5,"instret":100}}"#.to_string(),
        format!(r#"{{"TuningStarted":{{"scope":{scope},"configs":4,"instret":120}}}}"#),
        format!(
            r#"{{"TuningStep":{{"scope":{scope},"trial":0,"ipc":{ipc},"epi_nj":0.5,"instret":200}}}}"#
        ),
        format!(
            r#"{{"TuningConverged":{{"scope":{scope},"trials":1,"ipc":{ipc},"epi_nj":0.5,"instret":300}}}}"#
        ),
        r#"{"Reconfigured":{"cu":"L1d","from":0,"to":2,"cause":"Apply","cycle":400}}"#.to_string(),
    ]
    .join("\n")
        + "\n"
}

#[test]
fn summarize_and_timeline_report_a_recorded_run() {
    let dir = temp_dir("summarize");
    let trace = dir.join("run.jsonl");
    let out = ace(&[
        "run",
        "db",
        "--limit",
        "2000000",
        "--telemetry",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let summary = ace(&["trace", "summarize", trace.to_str().unwrap()]);
    assert!(summary.status.success());
    let text = String::from_utf8(summary.stdout).unwrap();
    assert!(text.contains("trace summary"), "{text}");
    assert!(
        !text.contains("events total 0"),
        "trace must have events: {text}"
    );

    let timeline = ace(&["trace", "timeline", trace.to_str().unwrap()]);
    assert!(timeline.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chrome_export_is_valid_json() {
    let dir = temp_dir("chrome");
    let trace = dir.join("t.jsonl");
    std::fs::write(&trace, synthetic_trace(1.5)).unwrap();
    let json_path = dir.join("t.chrome.json");
    let out = ace(&[
        "trace",
        "chrome",
        trace.to_str().unwrap(),
        "--out",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&json_path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let value: serde::Value = serde_json::from_str(&json).expect("export parses as JSON");
    let root = value.as_object().expect("root is an object");
    assert!(serde::find_field(root, "traceEvents")
        .and_then(serde::Value::as_array)
        .is_some_and(|events| !events.is_empty()));
}

#[test]
fn diff_exit_codes_encode_the_verdict() {
    let dir = temp_dir("diff");
    let base = dir.join("a.jsonl");
    let same = dir.join("b.jsonl");
    let slower = dir.join("c.jsonl");
    std::fs::write(&base, synthetic_trace(1.5)).unwrap();
    std::fs::write(&same, synthetic_trace(1.5)).unwrap();
    // 20% IPC drop: far beyond the default 2% threshold.
    std::fs::write(&slower, synthetic_trace(1.2)).unwrap();

    let ok = ace(&[
        "trace",
        "diff",
        base.to_str().unwrap(),
        same.to_str().unwrap(),
    ]);
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("no regressions"));

    let bad = ace(&[
        "trace",
        "diff",
        base.to_str().unwrap(),
        slower.to_str().unwrap(),
    ]);
    assert!(!bad.status.success(), "a 20% IPC drop must fail the diff");
    assert!(String::from_utf8_lossy(&bad.stdout).contains("FAIL"));

    // Loosened thresholds accept the same delta.
    let loose = ace(&[
        "trace",
        "diff",
        base.to_str().unwrap(),
        slower.to_str().unwrap(),
        "--max-ipc-drop",
        "0.5",
    ]);
    assert!(
        loose.status.success(),
        "{}",
        String::from_utf8_lossy(&loose.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_trace_fails_with_line_number() {
    let dir = temp_dir("malformed");
    let trace = dir.join("bad.jsonl");
    std::fs::write(
        &trace,
        "{\"HotspotPromoted\":{\"method\":1,\"invocations\":1,\"instret\":1}}\ngarbage\n",
    )
    .unwrap();
    let out = ace(&["trace", "summarize", trace.to_str().unwrap()]);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
}

#[test]
fn legacy_block_trace_recorder_still_works() {
    let dir = temp_dir("legacy");
    let trace = dir.join("blocks.bin");
    let out = ace(&["trace", "db", trace.to_str().unwrap(), "--limit", "200000"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.metadata().unwrap().len() > 0);
    let replay = ace(&["replay", trace.to_str().unwrap()]);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(replay.status.success());
}
