//! `ace` — command-line front end for the reproduction.
//!
//! ```text
//! ace list                                   show the preset workloads
//! ace run <workload> [--scheme S] [--limit N] [--telemetry <file>]
//!                                            run one workload; S is one of
//!                                            baseline | hotspot | bbv | positional
//! ace sweep <workload>                       16-point static-oracle grid
//! ace trace summarize <trace.jsonl>          analyze a telemetry trace
//! ace trace timeline <trace.jsonl>           chronological episode/phase view
//! ace trace chrome <trace.jsonl> [--out F]   export Chrome/Perfetto JSON
//! ace trace diff <a.jsonl> <b.jsonl>         compare runs; nonzero on regression
//! ace trace metrics <obs.jsonl>              obs time-series report / stream diff
//! ace trace <workload> <file> [--limit N]    record a binary block trace
//! ace replay <file>                          simulate a recorded trace
//! ```

use ace::core::{
    AceConfig, BbvAceManager, BbvManagerConfig, Experiment, HotspotAceManager,
    HotspotManagerConfig, PositionalAceManager, PositionalManagerConfig, RunConfig, RunRecord,
    Scheme,
};
use ace::energy::EnergyModel;
use ace::sim::{record_trace, Block, BlockSource, Machine, MachineConfig, SizeLevel, TraceReader};
use ace::telemetry::Telemetry;
use ace::trace::{
    analyze_file, chrome_trace, diff, diff_obs_series, metrics_report, DiffThresholds, ObsSeries,
};
use ace::workloads::{Executor, Program, PRESET_NAMES};
use std::error::Error;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try --help").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "ace — adaptive computing environment management via dynamic optimization\n\
         \n\
         usage:\n  \
         ace list\n  \
         ace run <workload> [--scheme baseline|hotspot|bbv|positional] [--limit N] [--telemetry <file>]\n  \
         ace sweep <workload>\n  \
         ace trace summarize <trace.jsonl>\n  \
         ace trace timeline <trace.jsonl>\n  \
         ace trace chrome <trace.jsonl> [--out <file>]\n  \
         ace trace diff <a.jsonl> <b.jsonl> [--max-ipc-drop F] [--max-epi-rise F]\n            \
         [--max-count-delta F] [--max-residency-shift F] [--max-convergence-slowdown F]\n  \
         ace trace metrics <obs.jsonl> [--pass P] [--from W] [--to W] [--top N]\n            \
         [--against <baseline.jsonl>] [threshold flags as for diff]\n  \
         ace trace <workload> <file> [--limit N]\n  \
         ace replay <file>"
    );
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn load_program(name: &str) -> Result<Program, Box<dyn Error>> {
    ace::workloads::preset(name)
        .ok_or_else(|| format!("unknown workload {name:?}; see `ace list`").into())
}

fn cmd_list() -> Result<(), Box<dyn Error>> {
    println!(
        "{:<10} {:>8} {:>8} {:>14}",
        "workload", "methods", "stages", "est. instr"
    );
    for name in PRESET_NAMES {
        let spec = ace::workloads::preset_spec(name).expect("known preset");
        let program = spec.build()?;
        println!(
            "{:<10} {:>8} {:>8} {:>14}",
            name,
            program.method_count(),
            spec.stages.len(),
            spec.expected_total(),
        );
    }
    Ok(())
}

fn summarize(label: &str, record: &RunRecord, baseline: Option<&RunRecord>) {
    print!(
        "{label:<11} {:>11} instr  IPC {:.3}  energy {:8.2} mJ",
        record.instret,
        record.ipc,
        record.energy.total_nj() / 1e6
    );
    if let Some(base) = baseline {
        print!(
            "  | L1D saving {:.1}%  L2 saving {:.1}%  slowdown {:.2}%",
            100.0 * record.l1d_saving_vs(base),
            100.0 * record.l2_saving_vs(base),
            100.0 * record.slowdown_vs(base),
        );
    }
    println!();
}

fn cmd_run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let name = args
        .first()
        .ok_or("usage: ace run <workload> [--scheme S] [--limit N] [--telemetry <file>]")?;
    let program = load_program(name)?;
    let scheme = flag_value(args, "--scheme").unwrap_or_else(|| "hotspot".to_string());
    let mut cfg = RunConfig::default();
    if let Some(limit) = flag_value(args, "--limit") {
        cfg.instruction_limit = Some(limit.parse()?);
    }
    let telemetry = match flag_value(args, "--telemetry") {
        Some(path) => {
            let tel = Telemetry::jsonl(&path)
                .map_err(|e| format!("cannot open telemetry file {path}: {e}"))?;
            println!("recording telemetry to {path} (analyze with `ace trace summarize {path}`)");
            tel
        }
        None => Telemetry::off(),
    };
    cfg.telemetry = telemetry.clone();
    let model = EnergyModel::default_180nm();

    let base = Experiment::program(program.clone())
        .config(cfg.clone())
        .run()?;
    summarize("baseline", &base, None);
    match scheme.as_str() {
        "baseline" => {}
        "hotspot" => {
            let mut mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
            let r = Experiment::program(program.clone())
                .config(cfg.clone())
                .run_with(&mut mgr)?;
            summarize("hotspot", &r, Some(&base));
            let rep = mgr.report();
            println!(
                "            {} L1D + {} L2 hotspots, {:.0}% tuned, {} + {} reconfigs",
                rep.l1d_hotspots(),
                rep.l2_hotspots(),
                100.0 * rep.tuned_fraction(),
                rep.l1d().reconfigs,
                rep.l2().reconfigs,
            );
        }
        "bbv" => {
            let mut mgr = BbvAceManager::new(BbvManagerConfig::default(), model);
            let r = Experiment::program(program.clone())
                .config(cfg.clone())
                .run_with(&mut mgr)?;
            summarize("bbv", &r, Some(&base));
            let rep = mgr.report();
            println!(
                "            {} phases ({} tuned), {:.0}% stable intervals",
                rep.phases,
                rep.tuned_phases,
                100.0 * rep.stability.stable_fraction(),
            );
        }
        "positional" => {
            let mut mgr =
                PositionalAceManager::new(&program, PositionalManagerConfig::default(), model);
            let r = Experiment::program(program.clone())
                .config(cfg.clone())
                .run_with(&mut mgr)?;
            summarize("positional", &r, Some(&base));
            let rep = mgr.report();
            println!(
                "            {} large procedures ({} tuned), {} reconfigs",
                rep.large_procedures, rep.tuned, rep.reconfigs,
            );
        }
        other => return Err(format!("unknown scheme {other:?}").into()),
    }
    telemetry.flush();
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), Box<dyn Error>> {
    let name = args.first().ok_or("usage: ace sweep <workload>")?;
    let program = load_program(name)?;
    let base = Experiment::program(program.clone()).run()?;
    println!("{name}: energy saving % / slowdown % per fixed configuration");
    println!("L1D\\L2     1MB        512KB       256KB       128KB");
    for l1d in 0..4u8 {
        print!("{:>4}KB", 64 >> l1d);
        for l2 in 0..4u8 {
            let fixed = AceConfig::both(SizeLevel::new(l1d).unwrap(), SizeLevel::new(l2).unwrap());
            let r = Experiment::program(program.clone())
                .scheme(Scheme::Fixed(fixed))
                .run()?;
            print!(
                "  {:>5.1}/{:<4.1}",
                100.0 * (1.0 - r.energy.total_nj() / base.energy.total_nj()),
                100.0 * r.slowdown_vs(&base),
            );
        }
        println!();
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), Box<dyn Error>> {
    // Telemetry-analysis subcommands dispatch on the first argument; any
    // other first argument is a workload name and falls through to the
    // original binary-block-trace recorder.
    match args.first().map(String::as_str) {
        Some("summarize") => return cmd_trace_summarize(&args[1..]),
        Some("timeline") => return cmd_trace_timeline(&args[1..]),
        Some("chrome") => return cmd_trace_chrome(&args[1..]),
        Some("diff") => return cmd_trace_diff(&args[1..]),
        Some("metrics") => return cmd_trace_metrics(&args[1..]),
        _ => {}
    }
    let name = args
        .first()
        .ok_or("usage: ace trace <workload> <file> [--limit N]")?;
    let path = args
        .get(1)
        .ok_or("usage: ace trace <workload> <file> [--limit N]")?;
    let limit: u64 = flag_value(args, "--limit")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10_000_000);
    let program = load_program(name)?;
    let mut exec = Executor::new(&program);
    let trace = record_trace(&mut exec, limit);
    std::fs::write(path, &trace)?;
    println!(
        "wrote {} ({:.2} MB, ~{} instructions)",
        path,
        trace.len() as f64 / 1e6,
        limit
    );
    Ok(())
}

/// Writes report text to stdout, treating a closed pipe (`... | head`)
/// as a normal early exit rather than a panic.
fn print_report(text: &str) -> Result<(), Box<dyn Error>> {
    use std::io::Write;
    match std::io::stdout().write_all(text.as_bytes()) {
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        other => Ok(other?),
    }
}

fn cmd_trace_summarize(args: &[String]) -> Result<(), Box<dyn Error>> {
    let path = args
        .first()
        .ok_or("usage: ace trace summarize <trace.jsonl>")?;
    let analysis = analyze_file(path)?;
    print_report(&ace::trace::summarize(&analysis))
}

fn cmd_trace_timeline(args: &[String]) -> Result<(), Box<dyn Error>> {
    let path = args
        .first()
        .ok_or("usage: ace trace timeline <trace.jsonl>")?;
    let analysis = analyze_file(path)?;
    print_report(&ace::trace::timeline(&analysis))
}

fn cmd_trace_chrome(args: &[String]) -> Result<(), Box<dyn Error>> {
    let path = args
        .first()
        .ok_or("usage: ace trace chrome <trace.jsonl> [--out <file>]")?;
    let analysis = analyze_file(path)?;
    let json = chrome_trace(&analysis);
    match flag_value(args, "--out") {
        Some(out) => {
            std::fs::write(&out, &json)?;
            println!(
                "wrote {out} ({} bytes); load it in chrome://tracing or ui.perfetto.dev",
                json.len()
            );
        }
        None => {
            print_report(&json)?;
            print_report("\n")?;
        }
    }
    Ok(())
}

fn cmd_trace_diff(args: &[String]) -> Result<(), Box<dyn Error>> {
    let usage = "usage: ace trace diff <a.jsonl> <b.jsonl> [--max-ipc-drop F] ...";
    let path_a = args.first().ok_or(usage)?;
    let path_b = args.get(1).ok_or(usage)?;
    let thresholds = parse_thresholds(args)?;
    let a = analyze_file(path_a).map_err(|e| format!("{path_a}: {e}"))?;
    let b = analyze_file(path_b).map_err(|e| format!("{path_b}: {e}"))?;
    let report = diff(&a, &b, &thresholds);
    print!("{}", report.render());
    if report.regressed() {
        return Err(format!("{path_b} regressed against {path_a}").into());
    }
    Ok(())
}

/// Shared threshold-flag parsing for the diff-style subcommands.
fn parse_thresholds(args: &[String]) -> Result<DiffThresholds, Box<dyn Error>> {
    let mut thresholds = DiffThresholds::default();
    for (flag, slot) in [
        ("--max-ipc-drop", &mut thresholds.max_ipc_drop),
        ("--max-epi-rise", &mut thresholds.max_epi_rise),
        ("--max-count-delta", &mut thresholds.max_count_delta),
        ("--max-residency-shift", &mut thresholds.max_residency_shift),
        (
            "--max-convergence-slowdown",
            &mut thresholds.max_convergence_slowdown,
        ),
    ] {
        if let Some(value) = flag_value(args, flag) {
            *slot = value
                .parse()
                .map_err(|e| format!("{flag} {value:?}: {e}"))?;
        }
    }
    Ok(thresholds)
}

fn cmd_trace_metrics(args: &[String]) -> Result<(), Box<dyn Error>> {
    let usage = "usage: ace trace metrics <obs.jsonl> [--pass P] [--from W] [--to W] [--top N]\n            \
                 [--against <baseline.jsonl>] [--max-ipc-drop F] [--max-epi-rise F] ...";
    let path = args.first().ok_or(usage)?;
    let series = ObsSeries::load(path)?;
    let pass = flag_value(args, "--pass");
    let pass = pass.as_deref();

    if let Some(baseline_path) = flag_value(args, "--against") {
        let baseline = ObsSeries::load(&baseline_path)?;
        let thresholds = parse_thresholds(args)?;
        let report = diff_obs_series(&baseline, &series, pass, &thresholds)?;
        print!("{}", report.render());
        if report.regressed() {
            return Err(format!("{path} regressed against {baseline_path}").into());
        }
        return Ok(());
    }

    let from = flag_value(args, "--from").map(|s| s.parse()).transpose()?;
    let to = flag_value(args, "--to").map(|s| s.parse()).transpose()?;
    let top: usize = flag_value(args, "--top")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10);
    print_report(&metrics_report(&series, pass, from, to, top)?)
}

fn cmd_replay(args: &[String]) -> Result<(), Box<dyn Error>> {
    let path = args.first().ok_or("usage: ace replay <file>")?;
    let data = bytes::Bytes::from(std::fs::read(path)?);
    let mut reader = TraceReader::new(data)?;
    let mut machine = Machine::new(MachineConfig::table2())?;
    let mut buf = Block::default();
    while reader.next_block(&mut buf) {
        machine.exec_block(&buf);
    }
    let c = machine.counters();
    println!(
        "{}: {} instructions, {} cycles, IPC {:.3}",
        path,
        c.instret,
        c.cycles,
        c.ipc()
    );
    println!(
        "L1D miss {:.2}%  L2 miss {:.2}%  mispredict {:.2}%  DTLB miss {:.3}%",
        100.0 * c.l1d.miss_ratio(),
        100.0 * c.l2.miss_ratio(),
        100.0 * c.branch.mispredict_ratio(),
        100.0 * c.dtlb.miss_ratio(),
    );
    Ok(())
}
