//! # ace — reproduction of *Effective Adaptive Computing Environment
//! Management via Dynamic Optimization* (CGO 2005)
//!
//! This façade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | CPU + reconfigurable memory-hierarchy timing simulator |
//! | [`energy`] | CACTI/Wattch-style cache energy model |
//! | [`workloads`] | synthetic SPECjvm98-like programs |
//! | [`runtime`] | dynamic-optimization-system (JVM) model |
//! | [`phase`] | BBV / working-set / positional phase detectors |
//! | [`core`] | the paper's ACE management framework + baselines |
//! | [`telemetry`] | decision-event log, metrics, timers (zero-cost when off) |
//! | [`trace`] | trace analysis: episodes, residency, Chrome export, diffing |
//!
//! See the repository's `README.md` for a walkthrough, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-versus-measured results.
//!
//! ## Quickstart
//!
//! ```no_run
//! use ace::core::{Experiment, Scheme};
//!
//! let baseline = Experiment::preset("db").run()?;
//! let adaptive = Experiment::preset("db").scheme(Scheme::Hotspot).run()?;
//! println!("L1D energy saving: {:.0}%", 100.0 * adaptive.l1d_saving_vs(&baseline));
//! # Ok::<(), ace::core::ExperimentError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ace_core as core;
pub use ace_energy as energy;
pub use ace_phase as phase;
pub use ace_runtime as runtime;
pub use ace_sim as sim;
pub use ace_telemetry as telemetry;
pub use ace_trace as trace;
pub use ace_workloads as workloads;
