//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group` API the
//! workspace's benches are written against, but replaces the statistical
//! engine with a simple calibrated timing loop: each benchmark is warmed
//! up, run for a fixed wall-clock budget, and reported as mean ns/iter
//! (plus throughput when configured). Good enough for relative comparisons
//! in this offline environment; not a confidence-interval estimator.
//!
//! When `ACE_MICROBENCH_JSON` names a file, each result is also appended
//! there as one JSON line (`{"name":"<group>/<bench>","ns_per_iter":N}`)
//! so the perf gate can compare runs against a committed baseline.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
            throughput: None,
        }
    }
}

/// Per-element/byte scaling applied to reported results.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; the timing loop is budget-based.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, budget: Duration) {
        self.criterion.measure_budget = budget;
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };

        // Warm-up / calibration pass.
        bencher.iters = 0;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        let warm = bencher.ns_per_iter();

        // Measurement: run enough batches to fill the budget.
        let budget = self.criterion.measure_budget;
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        while total_time < budget {
            bencher.iters = 0;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            total_iters += bencher.iters;
            total_time += bencher.elapsed;
            if bencher.iters == 0 {
                break;
            }
        }

        let ns = if total_iters > 0 {
            total_time.as_nanos() as f64 / total_iters as f64
        } else {
            warm
        };
        match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                let rate = n as f64 * 1e9 / ns;
                println!("{name:<32} {ns:>12.1} ns/iter  ({rate:.2e} elem/s)");
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                let rate = n as f64 * 1e9 / ns;
                println!("{name:<32} {ns:>12.1} ns/iter  ({rate:.2e} B/s)");
            }
            _ => println!("{name:<32} {ns:>12.1} ns/iter"),
        }
        if let Ok(path) = std::env::var("ACE_MICROBENCH_JSON") {
            if !path.is_empty() {
                let line = format!(
                    "{{\"name\":\"{}/{}\",\"ns_per_iter\":{ns:.3}}}\n",
                    self.group, name
                );
                let write = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| f.write_all(line.as_bytes()));
                if let Err(e) = write {
                    eprintln!("warning: cannot append microbench record to {path}: {e}");
                }
            }
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Grow the batch until it is long enough to time reliably.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let t = start.elapsed();
            self.iters += batch;
            self.elapsed += t;
            if t > Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.iters as f64
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
