//! Offline stand-in for `serde_derive`.
//!
//! The workspace vendors a minimal `serde` whose `Serialize`/`Deserialize`
//! traits convert through a single self-describing `serde::Value` tree.
//! This crate derives those traits for the shapes the workspace actually
//! uses, parsing the item with nothing but the std `proc_macro` API:
//!
//! * structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(skip)]`),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, like real serde's default representation).
//!
//! Generics are intentionally unsupported: the workspace derives these
//! traits only on concrete types, and an explicit compile error beats a
//! subtly wrong impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field of a named struct or struct variant.
struct Field {
    name: String,
    /// `#[serde(default)]`: missing key deserializes via `Default`.
    default: bool,
    /// `#[serde(skip)]`: never serialized, always defaulted.
    skip: bool,
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with `n` fields; `n == 1` is a transparent newtype.
    Tuple(usize),
    Named(Vec<Field>),
}

/// Parsed derive input.
struct Input {
    name: String,
    kind: InputKind,
}

enum InputKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading attributes, returning the `serde(...)` markers seen.
    fn take_attrs(&mut self) -> (bool, bool) {
        let (mut default, mut skip) = (false, false);
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    if let Some(TokenTree::Group(g)) = self.next() {
                        let (d, s) = scan_serde_attr(&g.stream());
                        default |= d;
                        skip |= s;
                    }
                }
                _ => return (default, skip),
            }
        }
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consumes type tokens up to (not including) a top-level comma,
    /// tracking `<...>` nesting so `HashMap<K, V>` stays intact.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

/// Looks for `serde(default)` / `serde(skip)` inside one attribute body.
fn scan_serde_attr(stream: &TokenStream) -> (bool, bool) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return (false, false),
    }
    let (mut default, mut skip) = (false, false);
    if let Some(TokenTree::Group(g)) = tokens.get(1) {
        for t in g.stream() {
            if let TokenTree::Ident(i) = t {
                match i.to_string().as_str() {
                    "default" => default = true,
                    "skip" => skip = true,
                    other => panic!("unsupported serde attribute `{other}` (vendored derive)"),
                }
            }
        }
    }
    (default, skip)
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(input);
    // Skip outer attributes and visibility to reach `struct` / `enum`.
    loop {
        c.take_attrs();
        c.skip_vis();
        match c.next() {
            Some(TokenTree::Ident(i)) => {
                let kw = i.to_string();
                if kw == "struct" || kw == "enum" {
                    let name = match c.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        other => return Err(format!("expected type name, got {other:?}")),
                    };
                    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        return Err(format!(
                            "vendored serde derive does not support generic type `{name}`"
                        ));
                    }
                    let kind = if kw == "struct" {
                        parse_struct_body(&mut c)?
                    } else {
                        parse_enum_body(&mut c, &name)?
                    };
                    return Ok(Input { name, kind });
                }
                // `union`, or stray tokens: keep scanning.
                if kw == "union" {
                    return Err("vendored serde derive does not support unions".into());
                }
            }
            Some(_) => {}
            None => return Err("no struct or enum found in derive input".into()),
        }
    }
}

fn parse_struct_body(c: &mut Cursor) -> Result<InputKind, String> {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(InputKind::NamedStruct(parse_named_fields(g.stream())?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(InputKind::TupleStruct(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(InputKind::UnitStruct),
        other => Err(format!("unexpected struct body: {other:?}")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let (default, skip) = c.take_attrs();
        c.skip_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        c.skip_type();
        c.next(); // the comma, if any
        fields.push(Field {
            name,
            default,
            skip,
        });
    }
    Ok(fields)
}

/// Counts top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut n = 0;
    while !c.at_end() {
        c.take_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        c.skip_type();
        c.next(); // comma
        n += 1;
    }
    n
}

fn parse_enum_body(c: &mut Cursor, enum_name: &str) -> Result<InputKind, String> {
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => {
            return Err(format!(
                "expected enum body for `{enum_name}`, got {other:?}"
            ))
        }
    };
    let mut vc = Cursor::new(group.stream());
    let mut variants = Vec::new();
    while !vc.at_end() {
        vc.take_attrs();
        let name = match vc.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let kind = match vc.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                vc.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                vc.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        match vc.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "vendored serde derive does not support discriminants ({enum_name}::{name})"
                ));
            }
            _ => {}
        }
        vc.next(); // comma
        variants.push(Variant { name, kind });
    }
    Ok(InputKind::Enum(variants))
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        InputKind::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(__fields)");
            s
        }
        InputKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        InputKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        InputKind::UnitStruct => "::serde::Value::Null".to_string(),
        InputKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(__f0))]),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({b}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Array(::std::vec![{vals}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            vals = vals.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {b} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(::std::vec![{p}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            p = pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        InputKind::NamedStruct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                if f.skip {
                    s.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                    continue;
                }
                let missing = if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(::serde::Error::custom(\
                         \"missing field `{}` in {name}\"))",
                        f.name
                    )
                };
                s.push_str(&format!(
                    "{0}: match ::serde::find_field(__obj, \"{0}\") {{\n\
                     ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                     ::std::option::Option::None => {{ {missing} }},\n}},\n",
                    f.name
                ));
            }
            s.push_str("})");
            s
        }
        InputKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        InputKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        InputKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        InputKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        ));
                        // Also accept the tagged-with-null form.
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __a = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{v}\"))?;\n\
                             if __a.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong arity for {name}::{v}\")); }}\n\
                             ::std::result::Result::Ok({name}::{v}({items}))\n}},\n",
                            v = v.name,
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = format!(
                            "let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{\n",
                            v = v.name
                        );
                        for f in fields {
                            if f.skip {
                                inner.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                                continue;
                            }
                            let missing = if f.default {
                                "::std::default::Default::default()".to_string()
                            } else {
                                format!(
                                    "return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"missing field `{f}` in {name}::{v}\"))",
                                    f = f.name,
                                    v = v.name
                                )
                            };
                            inner.push_str(&format!(
                                "{0}: match ::serde::find_field(__obj, \"{0}\") {{\n\
                                 ::std::option::Option::Some(__fv) => \
                                 ::serde::Deserialize::from_value(__fv)?,\n\
                                 ::std::option::Option::None => {{ {missing} }},\n}},\n",
                                f.name
                            ));
                        }
                        inner.push_str("})");
                        tagged_arms.push_str(&format!("\"{v}\" => {{\n{inner}\n}},\n", v = v.name));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(&::std::format!(\
                 \"unknown {name} variant {{__other}}\"))),\n}},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(&::std::format!(\
                 \"unknown {name} variant {{__other}}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
