//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses it
//! back with a small recursive-descent parser. Covers exactly the calls
//! the workspace makes: [`to_string`] and [`from_str`].

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the
/// `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(n) => {
            if n.is_finite() {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    // Keep a trailing ".0" so the token re-parses as a float.
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| Error::custom("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_value_tree() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
            ("s".into(), Value::Str("he\"llo\n".into())),
            ("n".into(), Value::I64(-3)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
