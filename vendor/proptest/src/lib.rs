//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace uses, backed by a deterministic SplitMix64 generator
//! seeded from the test name — every run explores the same inputs, which
//! suits a repository whose experiments are all reproducibility-keyed.
//! There is no shrinking: a failing case reports the assertion message
//! and the case index instead of a minimized input.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! Runner configuration, error type, and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator directly.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Seeds the generator from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            // Multiply-shift reduction; bias is irrelevant for test generation.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    //! The [`Strategy`] trait and basic combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

use strategy::Strategy;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64)
                    .checked_sub(self.start as u64)
                    .filter(|&s| s > 0)
                    .expect("empty integer range strategy");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64);
                assert!(span > 0, "empty integer range strategy");
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind `any::<T>()`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<A>(pub(crate) PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of a given element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_incl - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies (`of`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy generating `Option`s of an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Roughly 1 in 4 None, matching proptest's default weighting
            // closely enough for coverage purposes.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Strategy yielding `None` sometimes and `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        $crate::prop_assert!(
            $lhs == $rhs,
            "assertion failed: {} == {}",
            stringify!($lhs),
            stringify!($rhs)
        )
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        $crate::prop_assert!($lhs == $rhs, $($fmt)+)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        $crate::prop_assert!(
            $lhs != $rhs,
            "assertion failed: {} != {}",
            stringify!($lhs),
            stringify!($rhs)
        )
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        $crate::prop_assert!($lhs != $rhs, $($fmt)+)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), __case, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u64..10, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(
            v in prop::collection::vec(0u32..100, 2..6),
            exact in prop::collection::vec(any::<bool>(), 4),
            opt in prop::option::of(0u8..4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(exact.len(), 4);
            if let Some(x) = opt {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn map_applies(sum in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(sum < 19, "sum {} out of range", sum);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..20);
        let mut r1 = crate::test_runner::TestRng::from_name("det");
        let mut r2 = crate::test_runner::TestRng::from_name("det");
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
