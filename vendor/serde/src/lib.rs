//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the few capabilities it actually uses instead
//! of the real crates. This `serde` keeps the same *surface* the code was
//! written against — `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` and `#[serde(default)]` /
//! `#[serde(skip)]` — but simplifies the machinery: both traits convert
//! through one self-describing [`Value`] tree instead of serde's
//! visitor-based data model. `serde_json` (also vendored) renders and
//! parses that tree.
//!
//! Supported shapes are exactly what the workspace derives: concrete
//! structs and enums over integers, floats, bools, strings, options,
//! vectors, fixed arrays, tuples (≤ 6), and `HashMap`/`BTreeMap` (encoded
//! as arrays of `[key, value]` pairs so non-string keys round-trip).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree: the single intermediate representation both
/// traits convert through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key-ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value as `f64`, coercing from any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as `u64`, accepting integral floats.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, accepting integral floats.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) => i64::try_from(v).ok(),
            Value::I64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }
}

/// First value for `key` among an object's entries (derive-internal).
pub fn find_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type from `v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitives ------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Non-finite floats serialize as null (JSON has no NaN).
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom("wrong array length"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expect = [$(stringify!($idx)),+].len();
                if a.len() != expect {
                    return Err(Error::custom("wrong tuple arity"));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// Maps encode as arrays of [key, value] pairs so that non-string keys
// (e.g. newtype ids) survive the JSON round-trip losslessly.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.collect()
    }
}

fn map_pairs<'a, K: Deserialize, V: Deserialize>(
    v: &'a Value,
) -> Result<impl Iterator<Item = Result<(K, V), Error>> + 'a, Error> {
    Ok(v.as_array()
        .ok_or_else(|| Error::custom("expected map as array of pairs"))?
        .iter()
        .map(|pair| {
            let a = pair
                .as_array()
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            if a.len() != 2 {
                return Err(Error::custom("expected [key, value] pair"));
            }
            Ok((K::from_value(&a[0])?, V::from_value(&a[1])?))
        }))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(u64::from_value(&Value::F64(3.0)).unwrap(), 3);
        assert!(u64::from_value(&Value::F64(3.5)).is_err());
        assert_eq!(i64::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::U64(2)).unwrap(), 2.0);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn map_round_trips_as_pairs() {
        let mut m = HashMap::new();
        m.insert(3u32, "x".to_string());
        let v = m.to_value();
        let back: HashMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn array_and_tuple_shapes() {
        let a = [1u64, 2, 3];
        let back: [u64; 3] = Deserialize::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
        let t = (1u64, 2u32);
        let back: (u64, u32) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }
}
