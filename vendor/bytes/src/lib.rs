//! Offline stand-in for `bytes`.
//!
//! Provides `Bytes`/`BytesMut` with the `Buf`/`BufMut` method subset the
//! trace codec in `ace-sim` uses. `Bytes` here is a plain owned buffer
//! with a read cursor rather than a refcounted slice — same observable
//! behaviour for sequential encode/decode, none of the zero-copy
//! machinery.

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out and advances the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    cursor: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            cursor: 0,
        }
    }

    /// Buffer length in bytes (unread portion).
    pub fn len(&self) -> usize {
        self.data.len() - self.cursor
    }

    /// Copies the given subrange of the unread bytes into a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_ref()[range].to_vec(),
            cursor: 0,
        }
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, cursor: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            cursor: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.cursor..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.cursor..self.cursor + dst.len()]);
        self.cursor += dst.len();
    }
}

/// Growable byte buffer for encoding.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            cursor: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"HDR");
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(42);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 3 + 1 + 4 + 8);
        let mut hdr = [0u8; 3];
        bytes.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xdead_beef);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.remaining(), 0);
    }
}
