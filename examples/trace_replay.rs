//! Record a workload's dynamic block stream into a binary trace file and
//! replay it through the simulator — the trace-driven workflow of the
//! SimpleScalar era, for pinning inputs or driving the machine from
//! externally produced traces.
//!
//! ```text
//! cargo run --release --example trace_replay [workload] [instr_limit]
//! ```

use ace::sim::{record_trace, Block, BlockSource, Machine, MachineConfig, TraceReader};
use ace::workloads::Executor;
use bytes::Bytes;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_string());
    let limit: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(5_000_000);
    let program =
        ace::workloads::preset(&name).ok_or_else(|| format!("unknown workload {name:?}"))?;

    // Record.
    let mut exec = Executor::new(&program);
    let trace = record_trace(&mut exec, limit);
    let path = std::env::temp_dir().join(format!("{name}.acet"));
    std::fs::write(&path, &trace)?;
    println!(
        "recorded {} instructions of {name} into {} ({:.2} MB, {:.2} bytes/instr)",
        limit,
        path.display(),
        trace.len() as f64 / 1e6,
        trace.len() as f64 / limit as f64,
    );

    // Replay from disk and simulate.
    let data = Bytes::from(std::fs::read(&path)?);
    let mut reader = TraceReader::new(data)?;
    let mut machine = Machine::new(MachineConfig::table2())?;
    let mut buf = Block::default();
    while reader.next_block(&mut buf) {
        machine.exec_block(&buf);
    }
    let c = machine.counters();
    println!(
        "replayed: {} instructions, {} cycles, IPC {:.3}",
        c.instret,
        c.cycles,
        c.ipc()
    );
    println!(
        "L1D miss ratio {:.2}%, L2 miss ratio {:.2}%, branch mispredict {:.2}%",
        100.0 * c.l1d.miss_ratio(),
        100.0 * c.l2.miss_ratio(),
        100.0 * c.branch.mispredict_ratio(),
    );

    // Cross-check against a live run of the same prefix.
    let mut live_exec = Executor::new(&program);
    let mut live = Machine::new(MachineConfig::table2())?;
    let mut emitted = 0u64;
    while emitted < limit && live_exec.next_block(&mut buf) {
        emitted += buf.ninstr as u64;
        live.exec_block(&buf);
    }
    assert_eq!(
        live.counters(),
        machine.counters(),
        "replay must match live execution"
    );
    println!("replay matches live execution bit-for-bit");
    std::fs::remove_file(&path).ok();
    Ok(())
}
