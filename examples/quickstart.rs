//! Quickstart: run one SPECjvm98-like workload under the paper's
//! DO-based ACE manager and report the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart [workload]
//! ```

use ace::core::{Experiment, HotspotAceManager, HotspotManagerConfig};
use ace::energy::EnergyModel;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "db".to_string());
    let program = ace::workloads::preset(&name).ok_or_else(|| {
        format!(
            "unknown workload {name:?}; try one of {:?}",
            ace::workloads::PRESET_NAMES
        )
    })?;

    println!(
        "workload: {} ({} methods)",
        program.name(),
        program.method_count()
    );

    // Baseline: both configurable caches pinned at their largest sizes.
    let baseline = Experiment::program(program.clone()).run()?;
    println!(
        "baseline : {:>11} instructions, IPC {:.3}, cache energy {:.2} mJ",
        baseline.instret,
        baseline.ipc,
        baseline.energy.total_nj() / 1e6,
    );

    // The paper's scheme: hotspot-boundary adaptation with CU decoupling.
    let mut manager = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let adaptive = Experiment::program(program).run_with(&mut manager)?;
    let report = manager.report();

    println!(
        "adaptive : {:>11} instructions, IPC {:.3}, cache energy {:.2} mJ",
        adaptive.instret,
        adaptive.ipc,
        adaptive.energy.total_nj() / 1e6,
    );
    println!();
    println!(
        "hotspots: {} L1D + {} L2 adaptable ({:.0}% finished tuning), {} too small",
        report.l1d_hotspots(),
        report.l2_hotspots(),
        100.0 * report.tuned_fraction(),
        report.small_hotspots,
    );
    println!(
        "L1D energy saving: {:>5.1}%   ({} tunings, {} reconfigurations)",
        100.0 * adaptive.l1d_saving_vs(&baseline),
        report.l1d().tunings,
        report.l1d().reconfigs,
    );
    println!(
        "L2  energy saving: {:>5.1}%   ({} tunings, {} reconfigurations)",
        100.0 * adaptive.l2_saving_vs(&baseline),
        report.l2().tunings,
        report.l2().reconfigs,
    );
    println!(
        "slowdown:          {:>5.2}%",
        100.0 * adaptive.slowdown_vs(&baseline)
    );
    Ok(())
}
