//! Static-oracle exploration: run one workload under all 16 fixed cache
//! configurations and print the IPC/energy grid, showing the trade-off
//! space the adaptive schemes navigate at runtime.
//!
//! ```text
//! cargo run --release --example cache_explorer [workload]
//! ```

use ace::core::{AceConfig, Experiment, Scheme};
use ace::sim::SizeLevel;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mpeg".to_string());

    let base = Experiment::preset(name.as_str()).run()?;
    println!(
        "{name}: baseline IPC {:.3}, cache energy {:.2} mJ",
        base.ipc,
        base.energy.total_nj() / 1e6
    );
    println!();
    println!("L1D\\L2    1MB          512KB        256KB        128KB");

    let mut best: Option<(f64, u8, u8, f64)> = None;
    for l1d in 0..4u8 {
        let l1d_size = 64 >> l1d;
        print!("{l1d_size:>3}KB ");
        for l2 in 0..4u8 {
            let fixed = AceConfig::both(SizeLevel::new(l1d).unwrap(), SizeLevel::new(l2).unwrap());
            let r = Experiment::preset(name.as_str())
                .scheme(Scheme::Fixed(fixed))
                .run()?;
            let saving = 100.0 * (1.0 - r.energy.total_nj() / base.energy.total_nj());
            let slow = 100.0 * r.slowdown_vs(&base);
            // The oracle obeys the same 2% performance bound as the tuners.
            let marker = if slow <= 2.0 { ' ' } else { '!' };
            print!(" {saving:>5.1}%/{slow:>4.1}{marker}");
            if slow <= 2.0 && best.is_none_or(|(s, ..)| saving > s) {
                best = Some((saving, l1d, l2, slow));
            }
        }
        println!();
    }
    println!();
    println!("cells: total-cache energy saving % / slowdown % ('!' = violates the 2% bound)");
    if let Some((saving, l1d, l2, slow)) = best {
        println!(
            "static oracle: L1D={}KB, L2={}KB saves {saving:.1}% at {slow:.2}% slowdown",
            64 >> l1d,
            1024 >> l2,
        );
    }
    Ok(())
}
