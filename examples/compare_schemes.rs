//! Compare the three management schemes — non-adaptive baseline, BBV
//! (temporal) + tune-all-combinations, and the paper's hotspot scheme —
//! on one workload, reproducing one column of Figures 3 and 4.
//!
//! ```text
//! cargo run --release --example compare_schemes [workload]
//! ```

use ace::core::{
    BbvAceManager, BbvManagerConfig, Experiment, HotspotAceManager, HotspotManagerConfig,
};
use ace::energy::EnergyModel;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "jess".to_string());
    let program =
        ace::workloads::preset(&name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let model = EnergyModel::default_180nm();

    let baseline = Experiment::program(program.clone()).run()?;

    let mut bbv = BbvAceManager::new(BbvManagerConfig::default(), model);
    let bbv_run = Experiment::program(program.clone()).run_with(&mut bbv)?;
    let bbv_report = bbv.report();

    let mut hs = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let hs_run = Experiment::program(program).run_with(&mut hs)?;
    let hs_report = hs.report();

    println!(
        "workload {name}: {} instructions, baseline IPC {:.3}",
        baseline.instret, baseline.ipc
    );
    println!();
    println!("{:<26} {:>10} {:>10}", "", "BBV", "hotspot");
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "L1D energy saving (%)",
            100.0 * bbv_run.l1d_saving_vs(&baseline),
            100.0 * hs_run.l1d_saving_vs(&baseline),
        ),
        (
            "L2 energy saving (%)",
            100.0 * bbv_run.l2_saving_vs(&baseline),
            100.0 * hs_run.l2_saving_vs(&baseline),
        ),
        (
            "slowdown (%)",
            100.0 * bbv_run.slowdown_vs(&baseline),
            100.0 * hs_run.slowdown_vs(&baseline),
        ),
    ];
    for (label, b, h) in rows {
        println!("{label:<26} {b:>10.2} {h:>10.2}");
    }
    println!();
    println!(
        "BBV:     {} phases, {} tuned, {:.0}% of intervals stable, {} trials",
        bbv_report.phases,
        bbv_report.tuned_phases,
        100.0 * bbv_report.stability.stable_fraction(),
        bbv_report.tunings,
    );
    println!(
        "hotspot: {} L1D + {} L2 hotspots, {:.0}% tuned, {} + {} trials, {} + {} reconfigs",
        hs_report.l1d_hotspots(),
        hs_report.l2_hotspots(),
        100.0 * hs_report.tuned_fraction(),
        hs_report.l1d().tunings,
        hs_report.l2().tunings,
        hs_report.l1d().reconfigs,
        hs_report.l2().reconfigs,
    );
    Ok(())
}
