//! Prints the reconfiguration timeline of a `compress` run.
//!
//! Runs the hotspot scheme with an in-memory ring-buffer sink attached,
//! then walks the captured decision events and prints every cache/window
//! resize in cycle order, followed by the event-count summary.
//!
//! ```text
//! cargo run --release --example telemetry_trace
//! ```

use ace::core::{run_with_manager, HotspotAceManager, HotspotManagerConfig, RunConfig};
use ace::energy::EnergyModel;
use ace::telemetry::{Event, Telemetry};

fn main() -> Result<(), ace::sim::ConfigError> {
    let program = ace::workloads::preset("compress").expect("compress is a built-in preset");
    let (telemetry, ring) = Telemetry::ring(65_536);
    let cfg = RunConfig {
        instruction_limit: Some(60_000_000),
        telemetry: telemetry.clone(),
        ..RunConfig::default()
    };
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let record = run_with_manager(&program, &cfg, &mut mgr)?;

    let mut events = ring.snapshot();
    events.sort_by_key(Event::timestamp);

    println!(
        "reconfiguration timeline ({} events captured):",
        events.len()
    );
    println!("{:>14}  {:-^7}  transition", "cycle", "unit");
    for event in &events {
        if let Event::Reconfigured {
            cu,
            from,
            to,
            cause,
            cycle,
        } = event
        {
            println!(
                "{cycle:>14}  {:^7}  level {from} -> {to} ({})",
                cu.name(),
                cause.name()
            );
        }
    }

    println!();
    println!(
        "run: {} instructions, {:.3} IPC, {:.2} uJ total",
        record.instret,
        record.ipc,
        record.energy.total_nj() / 1_000.0
    );
    print!("{}", telemetry.summary());
    Ok(())
}
