//! Prints the reconfiguration timeline of a `compress` run.
//!
//! Runs the hotspot scheme with an in-memory ring-buffer sink attached,
//! then walks the captured decision events and prints every cache/window
//! resize in cycle order, followed by the event-count summary.
//!
//! ```text
//! cargo run --release --example telemetry_trace
//! ```

use ace::core::{Experiment, ExperimentError, HotspotAceManager, HotspotManagerConfig};
use ace::energy::EnergyModel;
use ace::telemetry::{Event, Telemetry};

fn main() -> Result<(), ExperimentError> {
    let (telemetry, ring) = Telemetry::ring(65_536);
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let record = Experiment::preset("compress")
        .instruction_limit(60_000_000)
        .telemetry(&telemetry)
        .run_with(&mut mgr)?;

    let mut events = ring.snapshot();
    events.sort_by_key(Event::timestamp);

    println!(
        "reconfiguration timeline ({} events captured):",
        events.len()
    );
    println!("{:>14}  {:-^7}  transition", "cycle", "unit");
    for event in &events {
        if let Event::Reconfigured {
            cu,
            from,
            to,
            cause,
            cycle,
        } = event
        {
            println!(
                "{cycle:>14}  {:^7}  level {from} -> {to} ({})",
                cu.name(),
                cause.name()
            );
        }
    }

    println!();
    println!(
        "run: {} instructions, {:.3} IPC, {:.2} uJ total",
        record.instret,
        record.ipc,
        record.energy.total_nj() / 1_000.0
    );
    print!("{}", telemetry.summary());
    Ok(())
}
