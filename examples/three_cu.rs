//! The three-CU extension in action: enable the configurable instruction
//! window (Section 4.1's work-in-progress CU) and watch CU decoupling
//! stretch across three granularities — window hotspots (5–50 K
//! instructions), L1D hotspots (50–500 K), and L2 hotspots (> 500 K).
//!
//! ```text
//! cargo run --release --example three_cu [workload]
//! ```

use ace::core::{Experiment, HotspotAceManager, HotspotManagerConfig, RunConfig};
use ace::energy::EnergyModel;
use ace::runtime::DoConfig;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mpeg".to_string());
    let model = EnergyModel::default_180nm_with_window();

    // Two-CU run (the paper's evaluation), window powered but not adapted.
    let cfg2 = RunConfig {
        energy: model,
        ..RunConfig::default()
    };
    let base = Experiment::preset(name.as_str())
        .config(cfg2.clone())
        .run()?;
    let mut two = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let r2 = Experiment::preset(name.as_str())
        .config(cfg2)
        .run_with(&mut two)?;

    // Three-CU run: hotspots of 5-50K instructions adapt the window.
    let cfg3 = RunConfig {
        energy: model,
        do_config: DoConfig::with_window(),
        ..RunConfig::default()
    };
    let mut three = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let r3 = Experiment::preset(name.as_str())
        .config(cfg3)
        .run_with(&mut three)?;
    let rep = three.report();

    println!(
        "workload {name}: baseline energy {:.2} mJ (window included)",
        base.energy.total_nj() / 1e6
    );
    println!();
    println!(
        "two CUs  : saves {:>5.1}% at {:.2}% slowdown",
        100.0 * (1.0 - r2.energy.total_nj() / base.energy.total_nj()),
        100.0 * r2.slowdown_vs(&base),
    );
    println!(
        "three CUs: saves {:>5.1}% at {:.2}% slowdown  (window energy alone: -{:.1}%)",
        100.0 * (1.0 - r3.energy.total_nj() / base.energy.total_nj()),
        100.0 * r3.slowdown_vs(&base),
        100.0 * (1.0 - r3.energy.window_nj / base.energy.window_nj),
    );
    println!();
    println!("hotspot size classes and their configurable units:");
    println!(
        "  window (5-50K instr):  {:>3} hotspots, {:>4} tunings, {:>5} reconfigs",
        rep.window_hotspots(),
        rep.window().tunings,
        rep.window().reconfigs,
    );
    println!(
        "  L1D (50-500K instr):   {:>3} hotspots, {:>4} tunings, {:>5} reconfigs",
        rep.l1d_hotspots(),
        rep.l1d().tunings,
        rep.l1d().reconfigs,
    );
    println!(
        "  L2 (>500K instr):      {:>3} hotspots, {:>4} tunings, {:>5} reconfigs",
        rep.l2_hotspots(),
        rep.l2().tunings,
        rep.l2().reconfigs,
    );
    println!();
    println!(
        "multi-grain adaptation: the window reconfigures {}x as often as the L2",
        if rep.l2().reconfigs > 0 {
            rep.window().reconfigs / rep.l2().reconfigs.max(1)
        } else {
            rep.window().reconfigs
        },
    );
    Ok(())
}
