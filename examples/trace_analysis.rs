//! Records a telemetry trace of a `jess` run, analyzes it with
//! `ace-trace`, and prints the reconstructed view: tuning episodes,
//! configuration residency, and the headline statistics — everything
//! `ace trace summarize` would show, but driven through the library API.
//!
//! Also exports a Chrome trace-event file next to the JSONL trace; load
//! it in `chrome://tracing` or <https://ui.perfetto.dev> to see the
//! episodes and reconfigurations on a timeline.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use ace::core::{Experiment, HotspotAceManager, HotspotManagerConfig};
use ace::energy::EnergyModel;
use ace::telemetry::Telemetry;
use ace::trace::{analyze_file, chrome_trace, summarize, EpisodeOutcome};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let dir = std::env::temp_dir().join("ace-trace-analysis-example");
    std::fs::create_dir_all(&dir)?;
    let trace_path = dir.join("jess.jsonl");

    // 1. Record: run the hotspot scheme with a JSONL sink attached.
    let telemetry = Telemetry::jsonl(&trace_path)?;
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let record = Experiment::preset("jess")
        .instruction_limit(60_000_000)
        .telemetry(&telemetry)
        .run_with(&mut mgr)?;
    telemetry.flush();
    println!(
        "recorded {} events over {} instructions to {}\n",
        telemetry.total_events(),
        record.instret,
        trace_path.display()
    );

    // 2. Analyze: stream the file back through the episode state machine.
    let analysis = analyze_file(&trace_path)?;
    print!("{}", summarize(&analysis));

    // 3. Drill in: the library exposes what the summary prints.
    println!("\nconverged episodes in detail:");
    for episode in analysis.episodes() {
        if episode.outcome != EpisodeOutcome::Converged {
            continue;
        }
        println!(
            "  {:<16} {} trials over {} instructions -> ipc {:.3}",
            episode.scope.label(),
            episode.trials.len(),
            episode.span_instr(),
            episode.converged_ipc.unwrap_or(0.0),
        );
    }

    // 4. Export: a Chrome/Perfetto-loadable timeline.
    let chrome_path = dir.join("jess.chrome.json");
    std::fs::write(&chrome_path, chrome_trace(&analysis))?;
    println!(
        "\nwrote {} — load it in chrome://tracing or ui.perfetto.dev",
        chrome_path.display()
    );
    Ok(())
}
