//! Build a custom synthetic program with the workload builder API and let
//! the hotspot manager adapt the caches to it.
//!
//! The program models a little image pipeline: a `blur` kernel with a tiny
//! stencil working set, a `histogram` kernel with a mid-size table, and a
//! `sweep` stage streaming over the frame buffer — three different cache
//! appetites for the ACE to discover.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use ace::core::{Experiment, HotspotAceManager, HotspotManagerConfig};
use ace::energy::EnergyModel;
use ace::workloads::{MemPattern, ProgramBuilder, Stmt, Walk};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut b = ProgramBuilder::new("imagepipe", 0xBEEF);

    // A 4 KB stencil: fits even the smallest (8 KB) L1D configuration.
    let stencil_region = b.alloc_region(4 << 10);
    let stencil = b.add_pattern(MemPattern::skewed(stencil_region, 4 << 10));

    // A 24 KB histogram table: needs the 32 KB L1D.
    let table_region = b.alloc_region(24 << 10);
    let table = b.add_pattern(MemPattern {
        store_pct: 40,
        ..MemPattern::random(table_region, 24 << 10)
    });

    // A 200 KB frame buffer streamed each sweep: an L2-resident footprint.
    let frame_region = b.alloc_region(200 << 10);
    let frame = b.add_pattern(MemPattern {
        walk: Walk::Streaming { stride: 32 },
        reset_on_entry: false,
        ..MemPattern::streaming(frame_region, 200 << 10)
    });

    let blur = b.add_method(
        "blur",
        vec![Stmt::Compute {
            ninstr: 140_000,
            pattern: stencil,
        }],
    );
    b.own_pattern(blur, stencil);
    let histogram = b.add_method(
        "histogram",
        vec![Stmt::Compute {
            ninstr: 140_000,
            pattern: table,
        }],
    );
    b.own_pattern(histogram, table);
    let sweep = b.add_method(
        "sweep",
        vec![Stmt::Compute {
            ninstr: 120_000,
            pattern: frame,
        }],
    );

    // One frame: sweep the buffer, then alternate the kernels.
    let frame_m = b.add_method(
        "frame",
        vec![
            Stmt::Call {
                callee: sweep,
                count: 2,
            },
            Stmt::Loop {
                count: 3,
                body: vec![
                    Stmt::Call {
                        callee: blur,
                        count: 2,
                    },
                    Stmt::Call {
                        callee: histogram,
                        count: 2,
                    },
                ],
            },
        ],
    );
    let main = b.add_method(
        "main",
        vec![Stmt::Call {
            callee: frame_m,
            count: 40,
        }],
    );
    let program = b.entry(main).build()?;

    println!(
        "program {}: {} methods, ~{} instructions per frame",
        program.name(),
        program.method_count(),
        program.static_size(frame_m),
    );

    let baseline = Experiment::program(program.clone()).run()?;
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let adaptive = Experiment::program(program.clone()).run_with(&mut mgr)?;

    println!();
    for (method, class, tuner, mean_ipc, _cov, n) in mgr.hotspot_details() {
        println!(
            "{:<12} class {:<5} invocations {:>4}  mean IPC {:.3}  chosen {}",
            program.method(method).name,
            class.to_string(),
            n,
            mean_ipc,
            tuner
                .best()
                .map(|b| b.to_string())
                .unwrap_or_else(|| "(still tuning)".into()),
        );
    }
    println!();
    println!(
        "L1D saving {:.1}%, L2 saving {:.1}%, slowdown {:.2}%",
        100.0 * adaptive.l1d_saving_vs(&baseline),
        100.0 * adaptive.l2_saving_vs(&baseline),
        100.0 * adaptive.slowdown_vs(&baseline),
    );
    Ok(())
}
