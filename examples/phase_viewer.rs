//! Visualize a workload's phase behavior: the per-interval BBV phase id
//! timeline, the stable/transitional distribution (Figure 1), and the
//! hotspot nesting the DO system discovers for the same execution.
//!
//! ```text
//! cargo run --release --example phase_viewer [workload]
//! ```

use ace::phase::{BbvConfig, BbvDetector};
use ace::runtime::{DoConfig, DoSystem, HotspotClass};
use ace::sim::{Block, BlockSource, Machine, MachineConfig};
use ace::workloads::{Executor, Step};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_string());
    let program =
        ace::workloads::preset(&name).ok_or_else(|| format!("unknown workload {name:?}"))?;

    // Pass 1: pure phase detection over the block stream.
    let mut detector = BbvDetector::new(BbvConfig::default());
    let mut exec = Executor::new(&program);
    let mut buf = Block::default();
    let mut next_boundary = detector.config().interval_instr;
    let mut emitted = 0u64;
    while exec.next_block(&mut buf) {
        emitted += buf.ninstr as u64;
        if let Some(br) = buf.branch {
            detector.note_branch(br.pc, buf.ninstr);
        }
        if emitted >= next_boundary {
            detector.end_interval();
            next_boundary += detector.config().interval_instr;
        }
    }

    println!("== BBV phase timeline ({name}, one symbol per 1M-instruction interval)");
    let glyphs: Vec<char> = "ABCDEFGHIJKLMNOPQRSTUVWXYZ".chars().collect();
    let line: String = detector
        .history()
        .iter()
        .map(|p| glyphs.get(p.0 as usize).copied().unwrap_or('?'))
        .collect();
    for chunk in line.as_bytes().chunks(64) {
        println!("  {}", std::str::from_utf8(chunk).unwrap());
    }
    let s = detector.stability();
    println!(
        "  {} phases; {} intervals: {:.0}% stable / {:.0}% transitional (Figure 1)",
        detector.phase_count(),
        s.total_intervals,
        100.0 * s.stable_fraction(),
        100.0 * (1.0 - s.stable_fraction()),
    );

    // Pass 2: hotspot detection over the same program.
    let mut machine = Machine::new(MachineConfig::table2())?;
    let mut dos = DoSystem::new(&program, DoConfig::default());
    let mut exec = Executor::new(&program);
    loop {
        match exec.step(&mut buf) {
            Step::Block => machine.exec_block(&buf),
            Step::Enter(m) => {
                dos.on_enter(m, &mut machine);
            }
            Step::Exit(m) => {
                dos.on_exit(m, &mut machine);
            }
            Step::Done => break,
        }
    }

    println!();
    println!("== Hotspots the DO system found (positional phases)");
    let mut rows: Vec<_> = dos.database().hotspots().collect();
    rows.sort_by_key(|(_, e)| std::cmp::Reverse(e.avg_size));
    for (m, entry) in rows.iter().take(14) {
        let method = program.method(*m);
        println!(
            "  {:<24} {:>5}  {:>9} instr/invocation  {:>5} invocations",
            method.name,
            entry.class().map(|c| c.to_string()).unwrap_or_default(),
            entry.avg_size,
            entry.invocations,
        );
    }
    let t4 = dos.table4_summary(machine.instret());
    println!(
        "  …{} hotspots total ({} L1D, {} L2); {:.1}% of execution inside hotspots",
        t4.hotspots,
        dos.database().count_class(HotspotClass::L1d),
        dos.database().count_class(HotspotClass::L2),
        t4.pct_code_in_hotspots,
    );
    Ok(())
}
