//! Golden-counter equivalence tests for the data-oriented hot-path
//! rewrite of the simulator core.
//!
//! Every counter below was captured from the pre-rewrite implementation
//! (array-of-structs cache lines, u64-timestamp LRU, per-reference walk
//! dispatch) on three seeded preset workloads, with mid-run resizes of
//! all three configurable units to exercise the selective-sets
//! transition paths. The rewritten core must reproduce them **exactly**
//! — these runs pin the architectural behavior (hit/miss/writeback
//! sequences, LRU victim choices, stat attribution per size level, cycle
//! accounting), not just aggregate ratios. Any divergence here means the
//! optimization changed simulated behavior, which the whole bench
//! trajectory (content-addressed result caching, byte-identical summary
//! tests) depends on never happening.

use ace_sim::{Block, BlockSource, CuKind, Machine, MachineConfig, SizeLevel};
use ace_workloads::{preset, Executor};

/// Expected counters for one pinned run.
struct Golden {
    name: &'static str,
    blocks: u64,
    instret: u64,
    cycles: u64,
    l1i_acc: [u64; 4],
    l1i_miss: [u64; 4],
    l1d_acc: [u64; 4],
    l1d_miss: [u64; 4],
    l1d_stores: [u64; 4],
    l1d_wb: [u64; 4],
    l1d_flushwb: [u64; 4],
    l1d_resizes: [u64; 4],
    l2_acc: [u64; 4],
    l2_miss: [u64; 4],
    l2_stores: [u64; 4],
    l2_wb: [u64; 4],
    l2_flushwb: [u64; 4],
    l2_resizes: [u64; 4],
    dtlb_acc: u64,
    dtlb_miss: u64,
    branches: u64,
    mispredicts: u64,
    window_instr: [u64; 4],
    window_resizes: [u64; 4],
}

const GOLDEN: &[Golden] = &[
    Golden {
        name: "db",
        blocks: 63837,
        instret: 2000027,
        cycles: 574074,
        l1i_acc: [63837, 0, 0, 0],
        l1i_miss: [300, 0, 0, 0],
        l1d_acc: [461830, 0, 133958, 0],
        l1d_miss: [2121, 0, 97, 0],
        l1d_stores: [105732, 0, 32713, 0],
        l1d_wb: [487, 0, 97, 0],
        l1d_flushwb: [553, 0, 89, 0],
        l1d_resizes: [1, 0, 1, 0],
        l2_acc: [1542, 331, 0, 1871],
        l2_miss: [1024, 64, 0, 686],
        l2_stores: [606, 186, 0, 434],
        l2_wb: [0, 0, 0, 58],
        l2_flushwb: [0, 366, 0, 0],
        l2_resizes: [1, 1, 0, 0],
        dtlb_acc: 595788,
        dtlb_miss: 38,
        branches: 63837,
        mispredicts: 8828,
        window_instr: [165633, 1834394, 0, 0],
        window_resizes: [1, 0, 0, 0],
    },
    Golden {
        name: "compress",
        blocks: 58418,
        instret: 2000005,
        cycles: 633111,
        l1i_acc: [58418, 0, 0, 0],
        l1i_miss: [252, 0, 0, 0],
        l1d_acc: [450049, 0, 143032, 0],
        l1d_miss: [37158, 0, 215, 0],
        l1d_stores: [102082, 0, 32685, 0],
        l1d_wb: [15884, 0, 121, 0],
        l1d_flushwb: [396, 0, 172, 0],
        l1d_resizes: [1, 0, 1, 0],
        l2_acc: [14924, 580, 0, 38694],
        l2_miss: [1452, 107, 0, 1403],
        l2_stores: [4468, 293, 0, 11812],
        l2_wb: [0, 0, 0, 613],
        l2_flushwb: [148, 920, 0, 0],
        l2_resizes: [1, 1, 0, 0],
        dtlb_acc: 593081,
        dtlb_miss: 55,
        branches: 58418,
        mispredicts: 4796,
        window_instr: [205207, 1794798, 0, 0],
        window_resizes: [1, 0, 0, 0],
    },
    Golden {
        name: "mpeg",
        blocks: 62823,
        instret: 2000013,
        cycles: 608748,
        l1i_acc: [62823, 0, 0, 0],
        l1i_miss: [252, 0, 0, 0],
        l1d_acc: [460727, 0, 133662, 0],
        l1d_miss: [29901, 0, 104, 0],
        l1d_stores: [100049, 0, 30960, 0],
        l1d_wb: [12588, 0, 60, 0],
        l1d_flushwb: [370, 0, 93, 0],
        l1d_resizes: [1, 0, 1, 0],
        l2_acc: [11797, 329, 0, 31242],
        l2_miss: [1393, 77, 0, 1162],
        l2_stores: [3589, 153, 0, 9369],
        l2_wb: [0, 0, 0, 608],
        l2_flushwb: [60, 750, 0, 0],
        l2_resizes: [1, 1, 0, 0],
        dtlb_acc: 594389,
        dtlb_miss: 50,
        branches: 62823,
        mispredicts: 2236,
        window_instr: [181122, 1818891, 0, 0],
        window_resizes: [1, 0, 0, 0],
    },
];

/// Runs `name` for 2 M instructions on the Table 2 machine, resizing all
/// three CUs at two fixed block counts (shrink at 5 K blocks, partial
/// grow-back at 20 K) so the transition accounting is exercised mid-run.
fn run_pinned(name: &str) -> (u64, Machine) {
    let p = preset(name).expect("preset exists");
    let mut exec = Executor::new(&p);
    exec.set_instruction_limit(2_000_000);
    let mut m = Machine::new(MachineConfig::table2()).unwrap();
    let mut buf = Block::with_capacity(64);
    let mut nb = 0u64;
    while exec.next_block(&mut buf) {
        m.exec_block(&buf);
        nb += 1;
        if nb == 5_000 {
            m.apply_resize(CuKind::L1d, SizeLevel::new(2).unwrap());
            m.apply_resize(CuKind::L2, SizeLevel::new(1).unwrap());
            m.apply_resize(CuKind::Window, SizeLevel::new(1).unwrap());
        }
        if nb == 20_000 {
            m.apply_resize(CuKind::L1d, SizeLevel::LARGEST);
            m.apply_resize(CuKind::L2, SizeLevel::new(3).unwrap());
        }
    }
    (nb, m)
}

#[test]
fn counters_match_pre_rewrite_golden_values() {
    for g in GOLDEN {
        let (blocks, mut m) = run_pinned(g.name);
        let c = m.counters().clone();
        assert_eq!(blocks, g.blocks, "{}: block count", g.name);
        assert_eq!(c.instret, g.instret, "{}: instret", g.name);
        assert_eq!(c.cycles, g.cycles, "{}: cycles", g.name);
        assert_eq!(c.l1i.accesses, g.l1i_acc, "{}: l1i accesses", g.name);
        assert_eq!(c.l1i.misses, g.l1i_miss, "{}: l1i misses", g.name);
        assert_eq!(c.l1d.accesses, g.l1d_acc, "{}: l1d accesses", g.name);
        assert_eq!(c.l1d.misses, g.l1d_miss, "{}: l1d misses", g.name);
        assert_eq!(c.l1d.stores, g.l1d_stores, "{}: l1d stores", g.name);
        assert_eq!(c.l1d.writebacks, g.l1d_wb, "{}: l1d writebacks", g.name);
        assert_eq!(
            c.l1d.flush_writebacks, g.l1d_flushwb,
            "{}: l1d flush writebacks",
            g.name
        );
        assert_eq!(c.l1d.resizes, g.l1d_resizes, "{}: l1d resizes", g.name);
        assert_eq!(c.l2.accesses, g.l2_acc, "{}: l2 accesses", g.name);
        assert_eq!(c.l2.misses, g.l2_miss, "{}: l2 misses", g.name);
        assert_eq!(c.l2.stores, g.l2_stores, "{}: l2 stores", g.name);
        assert_eq!(c.l2.writebacks, g.l2_wb, "{}: l2 writebacks", g.name);
        assert_eq!(
            c.l2.flush_writebacks, g.l2_flushwb,
            "{}: l2 flush writebacks",
            g.name
        );
        assert_eq!(c.l2.resizes, g.l2_resizes, "{}: l2 resizes", g.name);
        assert_eq!(c.dtlb.accesses, g.dtlb_acc, "{}: dtlb accesses", g.name);
        assert_eq!(c.dtlb.misses, g.dtlb_miss, "{}: dtlb misses", g.name);
        assert_eq!(c.branch.branches, g.branches, "{}: branches", g.name);
        assert_eq!(
            c.branch.mispredicts, g.mispredicts,
            "{}: mispredicts",
            g.name
        );
        assert_eq!(c.window_instr, g.window_instr, "{}: window instr", g.name);
        assert_eq!(
            c.window_resizes, g.window_resizes,
            "{}: window resizes",
            g.name
        );
    }
}

#[test]
fn pinned_runs_are_reproducible() {
    let (_, mut a) = run_pinned("db");
    let (_, mut b) = run_pinned("db");
    assert_eq!(a.counters(), b.counters());
}
