//! Characterization tests for the seven preset workloads: the structural
//! properties the reproduction's calibration depends on. If a preset edit
//! breaks one of these, the paper's tables will quietly drift — fail loudly
//! here instead.

use ace_sim::{Block, BlockSource};
use ace_workloads::{
    all_presets, preset, preset_spec, Executor, Program, Step, Walk, PRESET_NAMES,
};
use std::collections::HashMap;

/// Measures per-method inclusive invocation sizes over a prefix.
fn invocation_sizes(program: &Program, limit: u64) -> HashMap<String, Vec<u64>> {
    let mut exec = Executor::new(program);
    exec.set_instruction_limit(limit);
    let mut buf = Block::default();
    let mut stack: Vec<(String, u64)> = Vec::new();
    let mut emitted = 0u64;
    let mut sizes: HashMap<String, Vec<u64>> = HashMap::new();
    loop {
        match exec.step(&mut buf) {
            Step::Block => emitted += buf.ninstr as u64,
            Step::Enter(m) => stack.push((program.method(m).name.clone(), emitted)),
            Step::Exit(_) => {
                let (name, start) = stack.pop().unwrap();
                sizes.entry(name).or_default().push(emitted - start);
            }
            Step::Done => break,
        }
    }
    sizes
}

#[test]
fn spec_roundtrips_through_serde() {
    for name in PRESET_NAMES {
        let spec = preset_spec(name).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ace_workloads::WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back, "{name} spec must survive serialization");
        assert_eq!(spec.build().unwrap(), back.build().unwrap());
    }
}

#[test]
fn stage_methods_are_l2_hotspot_sized() {
    for program in all_presets() {
        let sizes = invocation_sizes(&program, 15_000_000);
        for (name, invs) in &sizes {
            if name.starts_with("stage::") {
                let avg = invs.iter().sum::<u64>() / invs.len() as u64;
                assert!(
                    avg > 500_000,
                    "{}/{name}: stage size {avg} below the L2 hotspot bound",
                    program.name()
                );
            }
        }
    }
}

#[test]
fn kernels_are_l1d_hotspot_sized() {
    for program in all_presets() {
        let sizes = invocation_sizes(&program, 15_000_000);
        let mut kernels = 0;
        for (name, invs) in &sizes {
            if name.contains("::child") && !name.contains("work") {
                let avg = invs.iter().sum::<u64>() / invs.len() as u64;
                assert!(
                    (50_000..500_000).contains(&avg),
                    "{}/{name}: kernel size {avg} outside the L1D class",
                    program.name()
                );
                kernels += 1;
            }
        }
        assert!(
            kernels >= 6,
            "{}: only {kernels} kernels observed",
            program.name()
        );
    }
}

#[test]
fn kernels_recur_in_pairs() {
    // The tuning protocol measures a configuration on the invocation after
    // the one that applied it; that only works because hotspots here are
    // invoked in back-to-back pairs.
    let program = preset("jess").unwrap();
    let mut exec = Executor::new(&program);
    exec.set_instruction_limit(10_000_000);
    let mut buf = Block::default();
    let mut last_kernel: Option<(u32, bool)> = None; // (method, saw_pair)
    let mut pairs = 0;
    let mut singles = 0;
    loop {
        match exec.step(&mut buf) {
            Step::Enter(m)
                if program.method(m).name.contains("::child")
                    && !program.method(m).name.contains("work")
                    && !program.method(m).name.contains("leaf") =>
            {
                match last_kernel {
                    Some((prev, false)) if prev == m.0 => {
                        last_kernel = Some((m.0, true));
                        pairs += 1;
                    }
                    _ => {
                        if matches!(last_kernel, Some((_, false))) {
                            singles += 1;
                        }
                        last_kernel = Some((m.0, false));
                    }
                }
            }
            Step::Done => break,
            _ => {}
        }
    }
    assert!(pairs > 20, "kernel pairs: {pairs}");
    assert!(
        singles <= pairs / 10,
        "unpaired kernels: {singles} vs {pairs} pairs"
    );
}

#[test]
fn working_set_classes_fit_their_levels() {
    // Small-class kernels fit 16 KB with margin; the large class fits
    // 32 KB. (Stream patterns are exempt: they are streaming by design.)
    for program in all_presets() {
        for pat in program.patterns().iter().filter(|p| p.reset_on_entry) {
            assert!(
                pat.working_set <= 30 << 10,
                "{}: resident working set {} too large for any reduced L1D",
                program.name(),
                pat.working_set
            );
        }
    }
}

#[test]
fn streams_wrap_their_regions() {
    // Stage streams must exceed their regions per invocation so the region
    // size (not the stream length) determines the L2 footprint.
    for name in PRESET_NAMES {
        let spec = preset_spec(name).unwrap();
        for stage in &spec.stages {
            let span = stage.stream_instr * 28 / 100 * 24; // refs * stride
            assert!(
                span > stage.region_bytes,
                "{name}/{}: stream span {span} does not wrap region {}",
                stage.name,
                stage.region_bytes
            );
        }
    }
}

#[test]
fn per_benchmark_flavor_holds() {
    // db: tiniest working sets of the suite.
    let db = preset("db").unwrap();
    let db_max = db
        .patterns()
        .iter()
        .filter(|p| p.reset_on_entry)
        .map(|p| p.working_set)
        .max()
        .unwrap();
    for name in ["jess", "mtrt"] {
        let other = preset(name).unwrap();
        let other_max = other
            .patterns()
            .iter()
            .filter(|p| p.reset_on_entry)
            .map(|p| p.working_set)
            .max()
            .unwrap();
        assert!(
            db_max < other_max,
            "db ({db_max}) must be smaller than {name} ({other_max})"
        );
    }

    // mpeg: the most predictable branches.
    let mpeg = preset("mpeg").unwrap();
    let min_taken = mpeg.patterns().iter().map(|p| p.taken_pct).min().unwrap();
    assert!(min_taken >= 90, "mpeg branch bias {min_taken}");

    // mtrt: shares one scene region between its two render stages.
    let spec = preset_spec("mtrt").unwrap();
    assert!(spec.stages.iter().skip(1).all(|s| s.shared_region));

    // jack and mtrt: a flat stage starves L2 hotspots.
    for name in ["jack", "mtrt"] {
        let spec = preset_spec(name).unwrap();
        assert!(
            spec.stages.iter().any(|s| s.flat),
            "{name} must have a flat stage"
        );
    }
}

#[test]
fn block_stream_is_plausible() {
    let program = preset("compress").unwrap();
    let mut exec = Executor::new(&program);
    exec.set_instruction_limit(2_000_000);
    let mut buf = Block::default();
    let mut instr = 0u64;
    let mut refs = 0u64;
    let mut stores = 0u64;
    let mut branches = 0u64;
    while exec.next_block(&mut buf) {
        instr += buf.ninstr as u64;
        refs += buf.accesses.len() as u64;
        stores += buf.accesses.iter().filter(|a| a.is_store).count() as u64;
        branches += buf.branch.is_some() as u64;
        assert!(buf.ninstr > 0 && buf.ninstr < 200);
    }
    let ref_rate = refs as f64 / instr as f64;
    assert!((0.2..0.4).contains(&ref_rate), "memory ref rate {ref_rate}");
    let store_rate = stores as f64 / refs as f64;
    assert!((0.1..0.4).contains(&store_rate), "store rate {store_rate}");
    assert!(branches > 0);
}

#[test]
fn walks_cover_every_variant() {
    // The presets exercise all four walk kinds.
    let mut kinds = [false; 4];
    for program in all_presets() {
        for p in program.patterns() {
            match p.walk {
                Walk::Strided { .. } => kinds[0] = true,
                Walk::Random => kinds[1] = true,
                Walk::Streaming { .. } => kinds[2] = true,
                Walk::Skewed { .. } => kinds[3] = true,
            }
        }
    }
    assert!(kinds[1] && kinds[2] && kinds[3], "walk coverage {kinds:?}");
}
