//! Property tests over the workload-spec layer, plus replay of committed
//! regression fixtures.
//!
//! The corpus/stress tier leans on two properties proven here for the
//! whole generated space, not just the presets: (1) specs survive a serde
//! round trip unchanged, so a failing spec written to disk reproduces the
//! failure when read back; (2) any spec — generated, mutated, or
//! hand-written — either builds or returns a typed `BuildError`, never
//! panics, so the corpus oracles can treat "panic" as impossible and
//! classify every outcome.

use ace_workloads::{gen, minimize, preset_spec, GenParams, WorkloadSpec};
use proptest::prelude::*;

fn fuzz_params(raw: [u64; 12]) -> GenParams {
    // Windows straight from raw fuzz values: frequently reversed, zero, or
    // out of percentage range — gen's sanitization contract under test.
    GenParams {
        stages: (raw[0] as u32 % 40, raw[1] as u32 % 40),
        flat_pct: raw[2] as u32 % 300,
        shared_region_pct: raw[3] as u32 % 300,
        children: (raw[4] as u32 % 100, raw[5] as u32 % 100),
        large_children: (raw[6] as u32 % 20, raw[7] as u32 % 20),
        child_instr: (raw[8] % (1 << 44), raw[9] % (1 << 44)),
        ws_bytes: (raw[10] % (1 << 36), raw[11] % (1 << 36)),
        drift_pct: raw[0] as u32 % 200,
        target_total: (raw[1] % (1 << 45), raw[2] % (1 << 45)),
        ..GenParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_specs_round_trip_through_serde(seed in any::<u64>()) {
        let spec = gen(seed, &GenParams::default());
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let back: WorkloadSpec = serde_json::from_str(&json).expect("spec parses");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn generated_specs_always_validate_and_build(
        seed in any::<u64>(),
        raw in (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(a, b)| {
            let mut r = [0u64; 12];
            for (i, slot) in r.iter_mut().enumerate() {
                *slot = a.rotate_left(5 * i as u32) ^ b.rotate_right(7 * i as u32);
            }
            r
        }),
    ) {
        // Arbitrary degenerate windows: gen must sanitize to a spec that
        // validates and builds — never an error, never a panic.
        let spec = gen(seed, &fuzz_params(raw));
        prop_assert!(spec.validate().is_ok(), "gen produced invalid spec for seed {}", seed);
        let program = spec.build().expect("sanitized specs always build");
        prop_assert!(program.validate().is_ok());
    }

    #[test]
    fn mutated_specs_build_or_fail_typed_never_panic(
        seed in any::<u64>(),
        field in 0u32..12,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        // Clobber one field of a valid generated spec with arbitrary
        // values (reversed ranges, absurd magnitudes, zero counts): build
        // must return Ok or a typed BuildError — a panic fails this test.
        let mut spec = gen(seed, &GenParams::default());
        let stage = &mut spec.stages[0];
        match field {
            0 => spec.outer_iters = a as u32,
            1 => stage.calls_per_outer = a as u32,
            2 => stage.inner_iters = a as u32,
            3 => stage.child_calls = a as u32,
            4 => stage.stream_instr = a,
            5 => stage.region_bytes = a,
            6 => stage.children.instr = (a, b),
            7 => stage.children.ws_bytes = (a, b),
            8 => stage.children.large_ws_bytes = (a, b),
            9 => stage.children.leaf_instr = (a, b),
            10 => stage.children.leaves = (a as u32, b as u32),
            _ => {
                stage.children.random_pct = a as u32;
                stage.children.taken_pct = b as u32;
            }
        }
        match spec.build() {
            Ok(program) => prop_assert!(program.validate().is_ok()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    #[test]
    fn preset_specs_round_trip_through_serde(pick in 0usize..8) {
        let name = ["check", "compress", "db", "jack", "javac", "jess", "mpeg", "mtrt"][pick];
        let spec = preset_spec(name).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, spec);
    }
}

// ---------------------------------------------------------------------------
// Committed regression fixtures.
// ---------------------------------------------------------------------------

fn fixtures_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/regressions")
}

/// The seeded failure behind `reversed-leaf-instr.json`: a corpus workload
/// whose `leaf_instr` window came out reversed (the class of bug
/// `WorkloadSpec::validate` exists for — before it, `DetRng::range`
/// panicked with "empty range" deep inside `build_spec`). The minimizer
/// shrinks the multi-stage original to a single-stage, single-iteration
/// reproducer.
fn seeded_failure() -> WorkloadSpec {
    let mut spec = gen(0x5EED, &GenParams::default());
    spec.stages[0].children.leaf_instr = (12_000, 3_000);
    spec
}

fn leaf_instr_oracle(spec: &WorkloadSpec) -> bool {
    matches!(spec.build(), Err(e) if e.to_string().contains("leaf_instr"))
}

#[test]
fn minimizer_shrinks_the_seeded_failure_to_the_committed_fixture() {
    let original = seeded_failure();
    assert!(
        leaf_instr_oracle(&original),
        "seeded spec fails as intended"
    );
    let out = minimize(&original, &mut leaf_instr_oracle);
    assert!(out.accepted > 0, "minimizer made progress");
    assert_eq!(out.spec.outer_iters, 1);
    assert_eq!(out.spec.stages.len(), 1);
    assert!(
        out.spec.expected_total() * 10 < original.expected_total(),
        "minimal reproducer is much smaller: {} vs {}",
        out.spec.expected_total(),
        original.expected_total()
    );

    let path = fixtures_dir().join("reversed-leaf-instr.json");
    if std::env::var("ACE_BLESS_REGRESSIONS").is_ok() {
        std::fs::create_dir_all(fixtures_dir()).unwrap();
        let json = serde_json::to_string(&out.spec).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
    }
    let committed: WorkloadSpec = serde_json::from_str(
        &std::fs::read_to_string(&path)
            .expect("committed fixture exists (regenerate with ACE_BLESS_REGRESSIONS=1)"),
    )
    .expect("fixture parses");
    assert_eq!(
        committed, out.spec,
        "committed fixture is exactly the minimizer's output"
    );
}

#[test]
fn regression_fixtures_replay_as_typed_errors() {
    // Every committed fixture is a minimal failing spec: it must parse,
    // and building it must return a typed error — not succeed (the bug
    // would be fixed and the fixture stale) and not panic (the regression
    // the fixture pins).
    let dir = fixtures_dir();
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let spec: WorkloadSpec = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: fixture must parse: {e}", path.display()));
        let err = spec
            .build()
            .expect_err(&format!("{}: fixture must still fail", path.display()));
        assert!(!err.to_string().is_empty());
        replayed += 1;
    }
    assert!(replayed >= 1, "at least one committed regression fixture");
}

#[test]
fn reversed_leaf_instr_fixture_names_the_field() {
    let path = fixtures_dir().join("reversed-leaf-instr.json");
    let spec: WorkloadSpec = serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
    let err = spec.build().unwrap_err();
    assert!(err.to_string().contains("leaf_instr"), "{err}");
}
