//! Program representation.
//!
//! A synthetic program is a set of *methods* whose bodies are trees of
//! statements: straight-line computation (with a memory pattern), loops,
//! and calls. Method bodies are compiled to a small flat opcode form that
//! the executor interprets without allocation.
//!
//! Methods are the hotspot candidates of the DO system: the runtime counts
//! their invocations, promotes frequently invoked ones, and instruments
//! their entry/exit — exactly how Jikes RVM treats Java methods.

use crate::pattern::{MemPattern, PatternId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a method within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MethodId(pub u32);

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A statement in a method body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Execute `ninstr` instructions following `pattern`.
    Compute {
        /// Dynamic instruction count of this computation.
        ninstr: u64,
        /// The memory/branch behavior to follow.
        pattern: PatternId,
    },
    /// Invoke `callee` `count` times in a row.
    Call {
        /// The method to invoke.
        callee: MethodId,
        /// Number of back-to-back invocations.
        count: u32,
    },
    /// Repeat `body` `count` times.
    Loop {
        /// Iteration count.
        count: u32,
        /// Statements repeated each iteration.
        body: Vec<Stmt>,
    },
}

/// Flat opcode form of a method body (executor-internal, but public for
/// inspection and testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Run `ninstr` instructions with `pattern`.
    Compute {
        /// Dynamic instruction count.
        ninstr: u64,
        /// Behavior pattern index.
        pattern: PatternId,
    },
    /// Push a frame for `callee`.
    Call {
        /// Target method.
        callee: MethodId,
    },
    /// Begin a loop of `iters` iterations; `end` is the index just past the
    /// matching [`Op::LoopEnd`].
    LoopStart {
        /// Iteration count (0 skips the body entirely).
        iters: u32,
        /// Opcode index just past the matching `LoopEnd`.
        end: u32,
    },
    /// End of a loop body; `start` is the index of the matching
    /// [`Op::LoopStart`].
    LoopEnd {
        /// Opcode index of the matching `LoopStart`.
        start: u32,
    },
    /// Return from the method.
    Return,
}

/// A method: a named body plus its static code footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Method {
    /// Human-readable name (diagnostics and reports).
    pub name: String,
    /// Base PC of the method's code; blocks cycle through
    /// `code_blocks` distinct line-aligned addresses from here.
    pub code_pc: u64,
    /// Number of distinct static blocks (drives L1I footprint and BBV
    /// signature richness).
    pub code_blocks: u32,
    /// Compiled body.
    pub ops: Vec<Op>,
}

/// A complete program: methods, patterns, and an entry point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    methods: Vec<Method>,
    patterns: Vec<MemPattern>,
    /// Patterns owned by each method (reset on entry when flagged).
    owned_patterns: Vec<Vec<PatternId>>,
    entry: MethodId,
    seed: u64,
}

impl Program {
    /// Assembles a program; use [`crate::ProgramBuilder`] rather than
    /// calling this directly.
    pub(crate) fn from_parts(
        name: String,
        methods: Vec<Method>,
        patterns: Vec<MemPattern>,
        owned_patterns: Vec<Vec<PatternId>>,
        entry: MethodId,
        seed: u64,
    ) -> Program {
        Program {
            name,
            methods,
            patterns,
            owned_patterns,
            entry,
            seed,
        }
    }

    /// The program's name (e.g. `"db"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry method.
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// RNG seed used by the executor for jitter and address draws.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Looks up a method.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (method ids come from the same
    /// program, so this indicates a logic error).
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// All methods, in id order.
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// Looks up a pattern.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pattern(&self, id: PatternId) -> &MemPattern {
        &self.patterns[id.0 as usize]
    }

    /// All patterns, in id order.
    pub fn patterns(&self) -> &[MemPattern] {
        &self.patterns
    }

    /// Patterns owned by `method` (their cursors reset when it is entered,
    /// if flagged `reset_on_entry`).
    pub fn owned_patterns(&self, method: MethodId) -> &[PatternId] {
        &self.owned_patterns[method.0 as usize]
    }

    /// Static sanity check: every call target, pattern reference, and loop
    /// bracket must be well-formed.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed item found.
    pub fn validate(&self) -> Result<(), String> {
        if self.methods.is_empty() {
            return Err("program has no methods".into());
        }
        if self.entry.0 as usize >= self.methods.len() {
            return Err("entry method out of range".into());
        }
        for (pid, p) in self.patterns.iter().enumerate() {
            p.validate().map_err(|e| format!("pattern {pid}: {e}"))?;
        }
        for (mid, m) in self.methods.iter().enumerate() {
            if m.ops.last() != Some(&Op::Return) {
                return Err(format!("method {mid} ({}) does not end in Return", m.name));
            }
            if m.code_blocks == 0 {
                return Err(format!("method {mid} has zero code blocks"));
            }
            let mut depth = 0i32;
            for (i, op) in m.ops.iter().enumerate() {
                match *op {
                    Op::Compute { ninstr, pattern } => {
                        if ninstr == 0 {
                            return Err(format!("method {mid} op {i}: empty compute"));
                        }
                        if pattern.0 as usize >= self.patterns.len() {
                            return Err(format!("method {mid} op {i}: bad pattern"));
                        }
                    }
                    Op::Call { callee } => {
                        if callee.0 as usize >= self.methods.len() {
                            return Err(format!("method {mid} op {i}: bad callee"));
                        }
                    }
                    Op::LoopStart { end, .. } => {
                        depth += 1;
                        let end = end as usize;
                        if end > m.ops.len() || !matches!(m.ops[end - 1], Op::LoopEnd { .. }) {
                            return Err(format!("method {mid} op {i}: bad loop end"));
                        }
                    }
                    Op::LoopEnd { start } => {
                        depth -= 1;
                        if !matches!(m.ops[start as usize], Op::LoopStart { .. }) {
                            return Err(format!("method {mid} op {i}: bad loop start"));
                        }
                    }
                    Op::Return => {}
                }
            }
            if depth != 0 {
                return Err(format!("method {mid}: unbalanced loops"));
            }
        }
        Ok(())
    }

    /// Statically estimates the dynamic instruction count of one invocation
    /// of `method`, following calls and loops. Used by presets to hit size
    /// targets; runtime jitter makes actual sizes vary around this.
    ///
    /// Recursion is not supported by the estimator (or the executor) and
    /// yields a saturating result guarded by a depth limit.
    pub fn static_size(&self, method: MethodId) -> u64 {
        self.static_size_depth(method, 0)
    }

    fn static_size_depth(&self, method: MethodId, depth: u32) -> u64 {
        if depth > 64 {
            return u64::MAX / 4;
        }
        let m = self.method(method);
        let mut ip = 0usize;
        let mut total = 0u64;
        // Stack of (loop start ip, multiplier entering that loop).
        let mut mult: u64 = 1;
        let mut stack: Vec<u64> = Vec::new();
        while ip < m.ops.len() {
            match m.ops[ip] {
                Op::Compute { ninstr, .. } => {
                    total = total.saturating_add(ninstr.saturating_mul(mult))
                }
                Op::Call { callee } => {
                    let inner = self.static_size_depth(callee, depth + 1);
                    total = total.saturating_add(inner.saturating_mul(mult));
                }
                Op::LoopStart { iters, end } => {
                    if iters == 0 {
                        ip = end as usize;
                        continue;
                    }
                    stack.push(mult);
                    mult = mult.saturating_mul(iters as u64);
                }
                Op::LoopEnd { .. } => {
                    mult = stack.pop().unwrap_or(1);
                }
                Op::Return => break,
            }
            ip += 1;
        }
        total
    }
}

/// Compiles a statement tree into flat opcodes (appending to `ops`).
pub(crate) fn compile_body(stmts: &[Stmt], ops: &mut Vec<Op>) {
    for stmt in stmts {
        match stmt {
            Stmt::Compute { ninstr, pattern } => {
                ops.push(Op::Compute {
                    ninstr: *ninstr,
                    pattern: *pattern,
                });
            }
            Stmt::Call { callee, count } => {
                if *count == 1 {
                    ops.push(Op::Call { callee: *callee });
                } else if *count > 1 {
                    let start = ops.len() as u32;
                    ops.push(Op::LoopStart {
                        iters: *count,
                        end: 0,
                    });
                    ops.push(Op::Call { callee: *callee });
                    let end = ops.len() as u32 + 1;
                    ops.push(Op::LoopEnd { start });
                    if let Op::LoopStart { end: e, .. } = &mut ops[start as usize] {
                        *e = end;
                    }
                }
            }
            Stmt::Loop { count, body } => {
                let start = ops.len() as u32;
                ops.push(Op::LoopStart {
                    iters: *count,
                    end: 0,
                });
                compile_body(body, ops);
                let end = ops.len() as u32 + 1;
                ops.push(Op::LoopEnd { start });
                if let Op::LoopStart { end: e, .. } = &mut ops[start as usize] {
                    *e = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn compile_loop_brackets() {
        let mut ops = Vec::new();
        compile_body(
            &[Stmt::Loop {
                count: 3,
                body: vec![Stmt::Compute {
                    ninstr: 10,
                    pattern: PatternId(0),
                }],
            }],
            &mut ops,
        );
        assert_eq!(
            ops,
            vec![
                Op::LoopStart { iters: 3, end: 3 },
                Op::Compute {
                    ninstr: 10,
                    pattern: PatternId(0)
                },
                Op::LoopEnd { start: 0 },
            ]
        );
    }

    #[test]
    fn compile_multi_call_becomes_loop() {
        let mut ops = Vec::new();
        compile_body(
            &[Stmt::Call {
                callee: MethodId(5),
                count: 4,
            }],
            &mut ops,
        );
        assert!(matches!(ops[0], Op::LoopStart { iters: 4, .. }));
        assert!(matches!(
            ops[1],
            Op::Call {
                callee: MethodId(5)
            }
        ));
        let mut ops1 = Vec::new();
        compile_body(
            &[Stmt::Call {
                callee: MethodId(5),
                count: 1,
            }],
            &mut ops1,
        );
        assert_eq!(
            ops1,
            vec![Op::Call {
                callee: MethodId(5)
            }]
        );
        let mut ops0 = Vec::new();
        compile_body(
            &[Stmt::Call {
                callee: MethodId(5),
                count: 0,
            }],
            &mut ops0,
        );
        assert!(ops0.is_empty(), "zero-count call compiles away");
    }

    #[test]
    fn static_size_follows_calls_and_loops() {
        let mut b = ProgramBuilder::new("t", 1);
        let pat = b.add_pattern(crate::MemPattern::resident(0x1000, 4096));
        let leaf = b.add_method(
            "leaf",
            vec![Stmt::Compute {
                ninstr: 100,
                pattern: pat,
            }],
        );
        let mid = b.add_method(
            "mid",
            vec![
                Stmt::Compute {
                    ninstr: 50,
                    pattern: pat,
                },
                Stmt::Loop {
                    count: 3,
                    body: vec![Stmt::Call {
                        callee: leaf,
                        count: 2,
                    }],
                },
            ],
        );
        let main = b.add_method(
            "main",
            vec![Stmt::Call {
                callee: mid,
                count: 1,
            }],
        );
        let p = b.entry(main).build().unwrap();
        assert_eq!(p.static_size(leaf), 100);
        assert_eq!(p.static_size(mid), 50 + 3 * 2 * 100);
        assert_eq!(p.static_size(main), 650);
    }

    #[test]
    fn validate_catches_missing_return() {
        let mut b = ProgramBuilder::new("t", 1);
        let pat = b.add_pattern(crate::MemPattern::resident(0, 64));
        let m = b.add_method(
            "m",
            vec![Stmt::Compute {
                ninstr: 1,
                pattern: pat,
            }],
        );
        let mut p = b.entry(m).build().unwrap();
        // Corrupt it.
        p = {
            let mut methods = p.methods().to_vec();
            methods[0].ops.pop();
            Program::from_parts(
                "t".into(),
                methods,
                p.patterns().to_vec(),
                vec![vec![]],
                MethodId(0),
                1,
            )
        };
        assert!(p.validate().unwrap_err().contains("Return"));
    }

    #[test]
    fn zero_iteration_loop_contributes_nothing() {
        let mut b = ProgramBuilder::new("t", 1);
        let pat = b.add_pattern(crate::MemPattern::resident(0, 64));
        let m = b.add_method(
            "m",
            vec![Stmt::Loop {
                count: 0,
                body: vec![Stmt::Compute {
                    ninstr: 1000,
                    pattern: pat,
                }],
            }],
        );
        // Needs at least one real instruction to be valid work; add one.
        let m2 = b.add_method(
            "m2",
            vec![
                Stmt::Call {
                    callee: m,
                    count: 1,
                },
                Stmt::Compute {
                    ninstr: 7,
                    pattern: pat,
                },
            ],
        );
        let p = b.entry(m2).build().unwrap();
        assert_eq!(p.static_size(m2), 7);
    }
}
