//! Name-or-file workload resolution.
//!
//! [`WorkloadRegistry`] is the single lookup path for workloads: the
//! built-in presets are pre-registered, callers may register additional
//! [`WorkloadSpec`]s (e.g. generated ones), and [`WorkloadRegistry::resolve`]
//! also accepts a *path* to a spec JSON file — so experiments, bench, and
//! fleet all take "a workload" as either a known name (`"db"`) or a file
//! (`"specs/gen-1f2e3d4c.json"`) without string-matching preset names
//! themselves.

use crate::builder::BuildError;
use crate::ir::Program;
use crate::presets::{preset_spec, PRESET_NAMES};
use crate::spec::WorkloadSpec;
use std::fmt;

/// Error from workload resolution.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The name matched no registered workload (and did not look like a
    /// spec-file path). Carries the registered names for the message.
    Unknown {
        /// The name that failed to resolve.
        name: String,
        /// Names registered at the time of the lookup.
        known: Vec<String>,
    },
    /// A spec file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The I/O error text.
        msg: String,
    },
    /// A spec file was not valid `WorkloadSpec` JSON.
    Parse {
        /// The path that failed to parse.
        path: String,
        /// The parse error text.
        msg: String,
    },
    /// The spec resolved but failed to build a program.
    Build {
        /// The workload name.
        name: String,
        /// The underlying build error.
        source: BuildError,
    },
    /// A spec was registered under a name that is already taken.
    Duplicate(
        /// The contested name.
        String,
    ),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Unknown { name, known } => {
                write!(f, "unknown workload '{name}' (known: {})", known.join(", "))
            }
            WorkloadError::Io { path, msg } => write!(f, "reading spec file '{path}': {msg}"),
            WorkloadError::Parse { path, msg } => write!(f, "parsing spec file '{path}': {msg}"),
            WorkloadError::Build { name, source } => write!(f, "building '{name}': {source}"),
            WorkloadError::Duplicate(name) => write!(f, "workload '{name}' already registered"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Build { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A registry of named [`WorkloadSpec`]s.
///
/// # Examples
///
/// ```
/// use ace_workloads::WorkloadRegistry;
///
/// let reg = WorkloadRegistry::builtin();
/// assert!(reg.names().iter().any(|n| *n == "db"));
/// let spec = reg.resolve("db").unwrap();
/// assert_eq!(spec.name, "db");
/// assert!(reg.resolve("fortran").is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkloadRegistry {
    specs: Vec<WorkloadSpec>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn new() -> WorkloadRegistry {
        WorkloadRegistry::default()
    }

    /// The built-in registry: `check` plus the seven presets.
    pub fn builtin() -> WorkloadRegistry {
        let mut reg = WorkloadRegistry::new();
        for name in ["check"].into_iter().chain(PRESET_NAMES) {
            let spec = preset_spec(name).expect("builtin preset exists");
            reg.register(spec).expect("builtin names are unique");
        }
        reg
    }

    /// Registered workload names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name.as_str()).collect()
    }

    /// The spec registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&WorkloadSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Registers `spec` under its own name.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Duplicate`] if the name is taken.
    pub fn register(&mut self, spec: WorkloadSpec) -> Result<(), WorkloadError> {
        if self.get(&spec.name).is_some() {
            return Err(WorkloadError::Duplicate(spec.name));
        }
        self.specs.push(spec);
        Ok(())
    }

    /// Resolves `name_or_path` to a spec: a registered name wins; anything
    /// that looks like a path (contains a separator or ends in `.json`) is
    /// read and parsed as a spec file; everything else is
    /// [`WorkloadError::Unknown`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for unknown names and unreadable or
    /// unparsable spec files.
    pub fn resolve(&self, name_or_path: &str) -> Result<WorkloadSpec, WorkloadError> {
        if let Some(spec) = self.get(name_or_path) {
            return Ok(spec.clone());
        }
        if looks_like_path(name_or_path) {
            return load_spec_file(name_or_path);
        }
        Err(WorkloadError::Unknown {
            name: name_or_path.to_string(),
            known: self.specs.iter().map(|s| s.name.clone()).collect(),
        })
    }

    /// Resolves and builds in one step.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if resolution fails or the spec does not
    /// build.
    pub fn resolve_program(&self, name_or_path: &str) -> Result<Program, WorkloadError> {
        let spec = self.resolve(name_or_path)?;
        spec.build().map_err(|source| WorkloadError::Build {
            name: spec.name.clone(),
            source,
        })
    }
}

/// Whether `s` is meant as a spec-file path rather than a workload name.
fn looks_like_path(s: &str) -> bool {
    s.contains('/') || s.contains('\\') || s.ends_with(".json")
}

/// Reads and parses a spec JSON file.
///
/// # Errors
///
/// Returns [`WorkloadError::Io`] or [`WorkloadError::Parse`].
pub fn load_spec_file(path: &str) -> Result<WorkloadSpec, WorkloadError> {
    let text = std::fs::read_to_string(path).map_err(|e| WorkloadError::Io {
        path: path.to_string(),
        msg: e.to_string(),
    })?;
    serde_json::from_str(&text).map_err(|e| WorkloadError::Parse {
        path: path.to_string(),
        msg: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_check_and_the_seven() {
        let reg = WorkloadRegistry::builtin();
        assert_eq!(reg.names().len(), 8);
        assert_eq!(reg.names()[0], "check");
        for name in PRESET_NAMES {
            assert!(reg.get(name).is_some(), "{name}");
        }
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut reg = WorkloadRegistry::builtin();
        let db = reg.resolve("db").unwrap();
        assert!(matches!(
            reg.register(db),
            Err(WorkloadError::Duplicate(n)) if n == "db"
        ));
    }

    #[test]
    fn unknown_name_lists_known() {
        let reg = WorkloadRegistry::builtin();
        let err = reg.resolve("fortran").unwrap_err();
        assert!(err.to_string().contains("db"), "{err}");
    }

    #[test]
    fn resolve_reads_spec_files() {
        let reg = WorkloadRegistry::builtin();
        let spec = reg.resolve("db").unwrap();
        let dir = std::env::temp_dir().join("ace-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("custom.json");
        let mut custom = spec.clone();
        custom.name = "custom-db".into();
        std::fs::write(&path, serde_json::to_string(&custom).unwrap()).unwrap();
        let loaded = reg.resolve(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, custom);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_spec_file_is_io_error() {
        let reg = WorkloadRegistry::builtin();
        assert!(matches!(
            reg.resolve("no/such/dir/spec.json"),
            Err(WorkloadError::Io { .. })
        ));
    }

    #[test]
    fn resolve_program_builds() {
        let reg = WorkloadRegistry::builtin();
        let p = reg.resolve_program("check").unwrap();
        assert_eq!(p.name(), "check");
    }
}
