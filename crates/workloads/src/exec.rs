//! Program execution: turns a [`Program`] into a dynamic block stream.
//!
//! The executor is an explicit-stack interpreter over the compiled opcode
//! form. Besides blocks, it surfaces **method enter/exit events** — the
//! hooks the dynamic optimization system instruments (invocation counting,
//! tuning code at hotspot entries, profiling code at exits). Iteration
//! counts and compute lengths are jittered deterministically so different
//! invocations of the same method vary the way real hotspot invocations do
//! (the per-hotspot IPC CoV of Table 5).

use crate::ir::{MethodId, Op, Program};
use crate::pattern::{PatternCursor, PatternId, Walk};
use crate::rng::DetRng;
use ace_sim::{Block, BlockSource, BranchEvent, MemAccess};

/// Maximum loop nesting depth within a single method body.
pub const MAX_LOOP_DEPTH: usize = 8;

/// Maximum call depth.
pub const MAX_CALL_DEPTH: usize = 128;

/// Percent jitter applied to compute lengths and loop iteration counts.
const SIZE_JITTER_PCT: u32 = 5;

/// One step of execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// A method was entered (its first block has not run yet).
    Enter(MethodId),
    /// A method was exited.
    Exit(MethodId),
    /// A dynamic block was produced into the caller's buffer.
    Block,
    /// The program (or the instruction limit) has finished; no more events.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct LoopState {
    start_ip: u32,
    remaining: u32,
}

#[derive(Debug, Clone)]
struct Frame {
    method: MethodId,
    ip: u32,
    loops: [LoopState; MAX_LOOP_DEPTH],
    loop_depth: u8,
    compute_left: u64,
    pattern: PatternId,
    blk: u32,
}

impl Frame {
    fn new(method: MethodId) -> Frame {
        Frame {
            method,
            ip: 0,
            loops: [LoopState {
                start_ip: 0,
                remaining: 0,
            }; MAX_LOOP_DEPTH],
            loop_depth: 0,
            compute_left: 0,
            pattern: PatternId(0),
            blk: 0,
        }
    }
}

/// Interprets a program, producing blocks and method boundary events.
///
/// # Examples
///
/// ```
/// use ace_workloads::{ProgramBuilder, MemPattern, Stmt, Executor, Step};
/// use ace_sim::Block;
///
/// let mut b = ProgramBuilder::new("demo", 7);
/// let pat = b.add_pattern(MemPattern::resident(0x10000, 4096));
/// let m = b.add_method("main", vec![Stmt::Compute { ninstr: 200, pattern: pat }]);
/// let p = b.entry(m).build().unwrap();
///
/// let mut exec = Executor::new(&p);
/// let mut buf = Block::default();
/// assert_eq!(exec.step(&mut buf), Step::Enter(m));
/// assert_eq!(exec.step(&mut buf), Step::Block);
/// assert!(buf.ninstr > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    rng: DetRng,
    frames: Vec<Frame>,
    cursors: Vec<PatternCursor>,
    started: bool,
    finished: bool,
    unwinding: bool,
    emitted_instr: u64,
    limit: Option<u64>,
    entry: MethodId,
    /// Blocks emitted per walk kind (indexed like [`WALK_KIND_NAMES`]) —
    /// the frequency profile behind the hot-first dispatch order in
    /// [`Executor::emit_block`].
    walk_blocks: [u64; 4],
}

/// Names for the walk-kind indices of [`Executor::walk_profile`].
pub const WALK_KIND_NAMES: [&str; 4] = ["strided", "streaming", "random", "skewed"];

/// Index of a walk kind in [`Executor::walk_profile`] / [`WALK_KIND_NAMES`].
#[inline]
fn walk_index(walk: &Walk) -> usize {
    match walk {
        Walk::Strided { .. } => 0,
        Walk::Streaming { .. } => 1,
        Walk::Random => 2,
        Walk::Skewed { .. } => 3,
    }
}

impl<'p> Executor<'p> {
    /// Creates an executor over `program` using the program's own seed.
    pub fn new(program: &'p Program) -> Executor<'p> {
        Executor::with_seed(program, program.seed())
    }

    /// Creates an executor with an explicit seed (for perturbation studies).
    pub fn with_seed(program: &'p Program, seed: u64) -> Executor<'p> {
        Executor::with_entry(program, program.entry(), seed)
    }

    /// Creates an executor starting at `entry` instead of the program's
    /// default entry — one logical thread of a multithreaded program.
    pub fn with_entry(program: &'p Program, entry: MethodId, seed: u64) -> Executor<'p> {
        Executor {
            program,
            rng: DetRng::new(seed),
            frames: Vec::with_capacity(MAX_CALL_DEPTH),
            cursors: vec![PatternCursor::default(); program.patterns().len()],
            started: false,
            finished: false,
            unwinding: false,
            emitted_instr: 0,
            limit: None,
            entry,
            walk_blocks: [0; 4],
        }
    }

    /// Blocks emitted per walk kind, indexed like [`WALK_KIND_NAMES`].
    /// This is the measured dispatch-frequency profile: across the seven
    /// headline presets strided/streaming walks dominate (they are the
    /// default for resident and streaming patterns), which is why
    /// the block-emission dispatch tests them first and gives them the
    /// fused no-store fast path.
    pub fn walk_profile(&self) -> [u64; 4] {
        self.walk_blocks
    }

    /// Stops execution (unwinding cleanly through exits) once `limit`
    /// instructions have been emitted.
    pub fn set_instruction_limit(&mut self, limit: u64) -> &mut Self {
        self.limit = Some(limit);
        self
    }

    /// Instructions emitted so far.
    pub fn emitted_instructions(&self) -> u64 {
        self.emitted_instr
    }

    /// Current call depth (0 when not running).
    pub fn call_depth(&self) -> usize {
        self.frames.len()
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    fn enter(&mut self, method: MethodId) -> Step {
        assert!(
            self.frames.len() < MAX_CALL_DEPTH,
            "call depth exceeded: recursive program?"
        );
        for &pid in self.program.owned_patterns(method) {
            if self.program.pattern(pid).reset_on_entry {
                self.cursors[pid.0 as usize].reset();
            }
        }
        self.frames.push(Frame::new(method));
        Step::Enter(method)
    }

    /// Produces the next event. `out` is only meaningful when the result is
    /// [`Step::Block`].
    pub fn step(&mut self, out: &mut Block) -> Step {
        if self.finished {
            return Step::Done;
        }
        if !self.started {
            self.started = true;
            return self.enter(self.entry);
        }
        if self.unwinding || self.limit.is_some_and(|l| self.emitted_instr >= l) {
            self.unwinding = true;
            return match self.frames.pop() {
                Some(f) => Step::Exit(f.method),
                None => {
                    self.finished = true;
                    Step::Done
                }
            };
        }

        loop {
            let Some(frame) = self.frames.last_mut() else {
                self.finished = true;
                return Step::Done;
            };
            if frame.compute_left > 0 {
                return self.emit_block(out);
            }
            let method = self.program.method(frame.method);
            let op = method.ops[frame.ip as usize];
            match op {
                Op::Compute { ninstr, pattern } => {
                    frame.compute_left = self.rng.jitter(ninstr, SIZE_JITTER_PCT);
                    frame.pattern = pattern;
                    frame.ip += 1;
                }
                Op::Call { callee } => {
                    frame.ip += 1;
                    return self.enter(callee);
                }
                Op::LoopStart { iters, end } => {
                    let iters = if iters >= 4 {
                        self.rng.jitter(iters as u64, SIZE_JITTER_PCT) as u32
                    } else {
                        iters
                    };
                    if iters == 0 {
                        frame.ip = end;
                    } else {
                        assert!(
                            (frame.loop_depth as usize) < MAX_LOOP_DEPTH,
                            "loop nesting exceeded"
                        );
                        frame.loops[frame.loop_depth as usize] = LoopState {
                            start_ip: frame.ip,
                            remaining: iters,
                        };
                        frame.loop_depth += 1;
                        frame.ip += 1;
                    }
                }
                Op::LoopEnd { .. } => {
                    let depth = frame.loop_depth as usize - 1;
                    let state = &mut frame.loops[depth];
                    if state.remaining > 1 {
                        state.remaining -= 1;
                        frame.ip = state.start_ip + 1;
                    } else {
                        frame.loop_depth -= 1;
                        frame.ip += 1;
                    }
                }
                Op::Return => {
                    let f = self.frames.pop().expect("frame exists");
                    return Step::Exit(f.method);
                }
            }
        }
    }

    /// Fills `out` with the next block of the current compute run.
    fn emit_block(&mut self, out: &mut Block) -> Step {
        let frame = self.frames.last_mut().expect("in compute");
        let method = self.program.method(frame.method);
        let pat = self.program.pattern(frame.pattern);

        out.reset();
        let want = self.rng.jitter(pat.block_len as u64, 50).max(1);
        let ninstr = want.min(frame.compute_left).min(u32::MAX as u64) as u32;
        out.ninstr = ninstr;
        // Real code concentrates execution in a few hot blocks (inner-loop
        // back edges); give ~70% of the weight to the first two static
        // blocks so BBV signatures look like compiled code, not noise.
        let nblocks = method.code_blocks;
        let slot = if nblocks <= 2 || self.rng.chance(70) {
            frame.blk % nblocks.min(2)
        } else {
            2 + frame.blk % (nblocks - 2)
        };
        out.pc = method.code_pc + slot as u64 * 64;
        frame.blk = frame.blk.wrapping_add(1);

        // Memory references: refs_per_kinstr with milli-ref residue.
        let cursor = &mut self.cursors[frame.pattern.0 as usize];
        let milli = ninstr as u64 * pat.refs_per_kinstr as u64 + cursor.ref_residue;
        let nrefs = milli / 1000;
        cursor.ref_residue = milli % 1000;
        // The walk kind is per-pattern, so dispatch once per block, not
        // once per reference, with the arms ordered by the measured block
        // frequency ([`Executor::walk_profile`]: strided/streaming walks
        // dominate every headline preset). Each arm fills the buffer via
        // `extend` over an exact-size iterator (one capacity reservation,
        // no per-push growth check) and draws from the RNG in exactly the
        // order the unspecialized per-reference match did.
        self.walk_blocks[walk_index(&pat.walk)] += 1;
        let base = pat.base;
        let store_pct = pat.store_pct;
        let ws = pat.working_set;
        let rng = &mut self.rng;
        match pat.walk {
            // The cursor is kept reduced (`pos < working_set`, see the
            // reduction after the advance), so the per-reference modulo
            // of the naive `pos % working_set` walk becomes a
            // rarely-taken wrap branch. The emitted offset sequence is
            // identical: `pos` always equals the old unreduced cursor
            // mod `working_set`.
            Walk::Strided { stride } | Walk::Streaming { stride } => {
                let mut pos = cursor.pos;
                if store_pct == 0 {
                    // Fused store-free handler: `chance(0)` is always
                    // false but must still draw; advance the stream
                    // without the wide multiply and compare.
                    out.accesses.extend((0..nrefs).map(|_| {
                        let offset = pos;
                        pos += stride as u64;
                        if pos >= ws {
                            pos %= ws;
                        }
                        let _ = rng.next_u64();
                        MemAccess {
                            addr: base + (offset & !7),
                            is_store: false,
                        }
                    }));
                } else {
                    out.accesses.extend((0..nrefs).map(|_| {
                        let offset = pos;
                        pos += stride as u64;
                        if pos >= ws {
                            pos %= ws;
                        }
                        MemAccess {
                            addr: base + (offset & !7),
                            is_store: rng.chance(store_pct),
                        }
                    }));
                }
                cursor.pos = pos;
            }
            Walk::Skewed {
                hot_bytes_pct,
                hot_refs_pct,
            } => {
                let hot_bytes = (ws * hot_bytes_pct as u64 / 100).max(64);
                out.accesses.extend((0..nrefs).map(|_| {
                    let offset = if rng.chance(hot_refs_pct) {
                        rng.below(hot_bytes)
                    } else {
                        rng.below(ws)
                    };
                    MemAccess {
                        addr: base + (offset & !7),
                        is_store: rng.chance(store_pct),
                    }
                }));
            }
            Walk::Random => {
                out.accesses.extend((0..nrefs).map(|_| {
                    let offset = rng.below(ws);
                    MemAccess {
                        addr: base + (offset & !7),
                        is_store: rng.chance(store_pct),
                    }
                }));
            }
        }

        // Terminating branch.
        out.branch = Some(BranchEvent {
            pc: out.pc + 56,
            taken: self.rng.chance(pat.taken_pct),
        });

        frame.compute_left -= ninstr as u64;
        self.emitted_instr += ninstr as u64;
        Step::Block
    }

    /// Runs to completion, discarding blocks; returns total instructions.
    /// Useful for sizing programs in tests and presets.
    pub fn measure(mut self) -> u64 {
        let mut buf = Block::with_capacity(64);
        loop {
            match self.step(&mut buf) {
                Step::Done => return self.emitted_instr,
                _ => continue,
            }
        }
    }
}

impl BlockSource for Executor<'_> {
    /// Streams blocks only, skipping method boundary events — the view a
    /// phase detector or a non-adaptive baseline run needs.
    fn next_block(&mut self, out: &mut Block) -> bool {
        loop {
            match self.step(out) {
                Step::Block => return true,
                Step::Done => {
                    out.reset();
                    return false;
                }
                Step::Enter(_) | Step::Exit(_) => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::Stmt;
    use crate::pattern::MemPattern;

    fn simple_program() -> crate::ir::Program {
        let mut b = ProgramBuilder::new("t", 3);
        let pat = b.add_pattern(MemPattern::resident(0x1_0000, 4096));
        let leaf = b.add_method(
            "leaf",
            vec![Stmt::Compute {
                ninstr: 1_000,
                pattern: pat,
            }],
        );
        let main = b.add_method(
            "main",
            vec![
                Stmt::Compute {
                    ninstr: 500,
                    pattern: pat,
                },
                Stmt::Call {
                    callee: leaf,
                    count: 3,
                },
            ],
        );
        b.own_pattern(leaf, pat);
        b.entry(main).build().unwrap()
    }

    #[test]
    fn event_sequence_is_well_nested() {
        let p = simple_program();
        let mut exec = Executor::new(&p);
        let mut buf = Block::default();
        let mut depth = 0i32;
        let mut enters = 0;
        let mut exits = 0;
        loop {
            match exec.step(&mut buf) {
                Step::Enter(_) => {
                    depth += 1;
                    enters += 1;
                }
                Step::Exit(_) => {
                    depth -= 1;
                    exits += 1;
                    assert!(depth >= 0);
                }
                Step::Block => assert!(depth > 0, "blocks only inside methods"),
                Step::Done => break,
            }
        }
        assert_eq!(depth, 0);
        assert_eq!(enters, exits);
        assert_eq!(enters, 1 + 3, "main + 3 leaf invocations");
    }

    #[test]
    fn emitted_instructions_near_static_size() {
        let p = simple_program();
        let total = Executor::new(&p).measure();
        let expect = p.static_size(p.entry());
        let lo = expect * 85 / 100;
        let hi = expect * 115 / 100;
        assert!(
            (lo..=hi).contains(&total),
            "jittered total {total} should be near {expect}"
        );
    }

    #[test]
    fn deterministic_streams() {
        let p = simple_program();
        let mut a = Executor::new(&p);
        let mut b = Executor::new(&p);
        let mut ba = Block::default();
        let mut bb = Block::default();
        loop {
            let sa = a.step(&mut ba);
            let sb = b.step(&mut bb);
            assert_eq!(sa, sb);
            if sa == Step::Block {
                assert_eq!(ba, bb);
            }
            if sa == Step::Done {
                break;
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = simple_program();
        let t1 = Executor::with_seed(&p, 1).measure();
        let t2 = Executor::with_seed(&p, 2).measure();
        assert_ne!(t1, t2, "jitter depends on seed");
    }

    #[test]
    fn instruction_limit_unwinds_cleanly() {
        let mut b = ProgramBuilder::new("t", 3);
        let pat = b.add_pattern(MemPattern::resident(0x1_0000, 4096));
        let leaf = b.add_method(
            "leaf",
            vec![Stmt::Compute {
                ninstr: 10_000,
                pattern: pat,
            }],
        );
        let main = b.add_method(
            "main",
            vec![Stmt::Call {
                callee: leaf,
                count: 1000,
            }],
        );
        let p = b.entry(main).build().unwrap();
        let mut exec = Executor::new(&p);
        exec.set_instruction_limit(50_000);
        let mut buf = Block::default();
        let mut depth = 0i32;
        loop {
            match exec.step(&mut buf) {
                Step::Enter(_) => depth += 1,
                Step::Exit(_) => depth -= 1,
                Step::Block => {}
                Step::Done => break,
            }
        }
        assert_eq!(depth, 0, "every enter matched by an exit");
        assert!(exec.emitted_instructions() >= 50_000);
        assert!(exec.emitted_instructions() < 80_000, "stops promptly");
    }

    #[test]
    fn addresses_stay_in_region() {
        let base = 0x5_0000;
        let ws = 8192;
        let mut b = ProgramBuilder::new("t", 9);
        let pat = b.add_pattern(MemPattern::random(base, ws));
        let m = b.add_method(
            "m",
            vec![Stmt::Compute {
                ninstr: 50_000,
                pattern: pat,
            }],
        );
        let p = b.entry(m).build().unwrap();
        let mut exec = Executor::new(&p);
        let mut buf = Block::default();
        let mut seen = 0;
        while exec.next_block(&mut buf) {
            for a in &buf.accesses {
                assert!(a.addr >= base && a.addr < base + ws, "addr {:#x}", a.addr);
                seen += 1;
            }
        }
        assert!(seen > 10_000, "expected plenty of accesses, got {seen}");
    }

    #[test]
    fn reset_on_entry_reuses_addresses() {
        // Strided pattern with reset: every invocation touches the same
        // leading bytes; without reset the cursor would keep advancing.
        let mut b = ProgramBuilder::new("t", 5);
        let base = 0x9_0000;
        let mut pat = MemPattern::resident(base, 1 << 20);
        pat.reset_on_entry = true;
        let pid = b.add_pattern(pat);
        let leaf = b.add_method(
            "leaf",
            vec![Stmt::Compute {
                ninstr: 1_000,
                pattern: pid,
            }],
        );
        b.own_pattern(leaf, pid);
        let main = b.add_method(
            "main",
            vec![Stmt::Call {
                callee: leaf,
                count: 5,
            }],
        );
        let p = b.entry(main).build().unwrap();
        let mut exec = Executor::new(&p);
        let mut buf = Block::default();
        let mut max_addr = 0;
        while exec.next_block(&mut buf) {
            for a in &buf.accesses {
                max_addr = max_addr.max(a.addr);
            }
        }
        // ~300 refs/invocation * 24B stride ~ 7.2 KB per invocation; with
        // resets the max offset stays near one invocation's span.
        assert!(
            max_addr - base < 16 * 1024,
            "cursor reset keeps footprint small, max offset {}",
            max_addr - base
        );
    }

    #[test]
    fn block_source_skips_events() {
        let p = simple_program();
        let mut exec = Executor::new(&p);
        let mut buf = Block::default();
        let mut blocks = 0;
        while exec.next_block(&mut buf) {
            assert!(buf.ninstr > 0);
            blocks += 1;
        }
        assert!(blocks > 10);
    }
}
