//! The seven SPECjvm98-like preset workloads.
//!
//! SPECjvm98 itself (and the Jikes RVM + Dynamic SimpleScalar stack that ran
//! it) is not reproducible here, so each benchmark is replaced by a
//! synthetic program whose *hotspot structure* is calibrated to the paper's
//! Table 4/5 characteristics and whose memory behavior follows the
//! benchmark's published character (e.g. for `db`, fewer than 10 procedures
//! cause >95 % of data-cache misses, with small working sets — which is why
//! the paper sees its largest L1D saving there).
//!
//! All presets share a three-level template mirroring how JVM workloads
//! nest:
//!
//! * **stages** — top-level program phases (0.7–5 M instructions per
//!   invocation): the *L2 hotspots*;
//! * **children** — kernels inside a stage (60–400 K instructions): the
//!   *L1D hotspots*;
//! * **leaves** — small helpers (2–15 K instructions): hotspots too small
//!   to adapt any configurable unit, but which dominate the hotspot count
//!   as in Table 4.
//!
//! A stage may be *flat*: its children are invoked directly from `main`
//! with no enclosing stage method, so that part of execution has no L2
//! hotspot — this models the benchmarks (jack, mtrt) where the paper's L2
//! coverage trails the BBV scheme's.
//!
//! Dynamic instruction totals are scaled ~100× below the paper's 5–11 G
//! (see DESIGN.md §5); structural statistics (sizes, nesting, working-set
//! diversity) are preserved.

use crate::builder::{BuildError, ProgramBuilder};
use crate::ir::{MethodId, Program, Stmt};
use crate::pattern::{MemPattern, Walk};
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};

/// Names of the seven presets, in the paper's order.
pub const PRESET_NAMES: [&str; 7] = ["compress", "db", "jack", "javac", "jess", "mpeg", "mtrt"];

/// Specification of one child kernel population within a stage.
///
/// Children come in two working-set *classes*: a `count`-strong small
/// class drawn from `ws_bytes`, plus `count_large` children drawn from
/// `large_ws_bytes`. Mixing classes inside one stage is what separates the
/// schemes: the hotspot manager tunes each kernel's L1D individually, while
/// a 1 M-instruction sampling interval blends the classes and forces the
/// BBV scheme into one compromise configuration per phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChildSpec {
    /// Number of small-class child methods.
    pub count: u32,
    /// Number of large-class child methods.
    pub count_large: u32,
    /// Per-invocation dynamic size range (instructions), both classes.
    pub instr: (u64, u64),
    /// Small-class working-set range in bytes (log-uniform draw).
    pub ws_bytes: (u64, u64),
    /// Large-class working-set range in bytes.
    pub large_ws_bytes: (u64, u64),
    /// Percent of children walking their set uniformly at random instead
    /// of with a skewed hot core.
    pub random_pct: u32,
    /// Leaves per child.
    pub leaves: (u32, u32),
    /// Leaf per-invocation size range (instructions).
    pub leaf_instr: (u64, u64),
    /// Leaf working-set range in bytes.
    pub leaf_ws_bytes: (u64, u64),
    /// Branch taken probability (percent) for this population.
    pub taken_pct: u32,
    /// Memory references per 1000 instructions.
    pub refs_per_kinstr: u32,
}

impl Default for ChildSpec {
    fn default() -> Self {
        ChildSpec {
            count: 4,
            count_large: 1,
            instr: (120_000, 180_000),
            ws_bytes: (4 << 10, 6 << 10),
            large_ws_bytes: (16 << 10, 20 << 10),
            random_pct: 20,
            leaves: (2, 3),
            leaf_instr: (6_000, 14_000),
            leaf_ws_bytes: (512, 1536),
            taken_pct: 90,
            refs_per_kinstr: 300,
        }
    }
}

impl ChildSpec {
    /// Total children (both classes).
    pub fn total(&self) -> u32 {
        self.count + self.count_large
    }
}

/// Specification of one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage name (diagnostics).
    pub name: String,
    /// Consecutive invocations per outer iteration. Values ≥ 2 make the
    /// stage span several BBV sampling intervals back-to-back, producing
    /// stable phases.
    pub calls_per_outer: u32,
    /// Rounds over the child population per stage invocation.
    pub inner_iters: u32,
    /// Back-to-back calls of each child per round.
    pub child_calls: u32,
    /// The stage's own streaming computation per invocation (instructions).
    pub stream_instr: u64,
    /// Bytes of the region the stage streams over (drives the L2 footprint).
    pub region_bytes: u64,
    /// `true` to inline the stage into `main` (no L2 hotspot).
    pub flat: bool,
    /// `true` to stream over the *first* stage's region instead of a fresh
    /// one — stages of one program usually share its central data
    /// structures, and sharing keeps the program's total L2 footprint at
    /// one region instead of one per stage.
    pub shared_region: bool,
    /// Child population.
    pub children: ChildSpec,
}

impl StageSpec {
    /// A stage with sensible defaults.
    pub fn new(name: impl Into<String>) -> StageSpec {
        StageSpec {
            name: name.into(),
            calls_per_outer: 2,
            inner_iters: 3,
            child_calls: 2,
            stream_instr: 250_000,
            region_bytes: 512 << 10,
            flat: false,
            shared_region: false,
            children: ChildSpec::default(),
        }
    }

    /// Expected per-invocation dynamic size (mean of ranges).
    pub fn expected_size(&self) -> u64 {
        let c = &self.children;
        let child_mean = (c.instr.0 + c.instr.1) / 2;
        self.stream_instr
            + self.inner_iters as u64 * c.total() as u64 * self.child_calls as u64 * child_mean
    }
}

/// Full specification of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name.
    pub name: String,
    /// Deterministic seed for parameter draws and executor jitter.
    pub seed: u64,
    /// Outer iterations of the whole stage sequence (phase recurrences).
    pub outer_iters: u32,
    /// The stage sequence.
    pub stages: Vec<StageSpec>,
}

impl WorkloadSpec {
    /// Expected total dynamic instructions (mean estimate).
    pub fn expected_total(&self) -> u64 {
        self.outer_iters as u64
            * self
                .stages
                .iter()
                .map(|s| s.calls_per_outer as u64 * s.expected_size())
                .sum::<u64>()
    }

    /// Builds the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the generated program fails validation
    /// (which would indicate an internal bug or a degenerate spec, e.g. a
    /// stage with zero children and zero stream instructions).
    pub fn build(&self) -> Result<Program, BuildError> {
        build_spec(self)
    }
}

/// Draws log-uniformly from `[lo, hi]`.
fn log_uniform(rng: &mut DetRng, lo: u64, hi: u64) -> u64 {
    if lo >= hi {
        return lo;
    }
    let llo = (lo as f64).ln();
    let lhi = (hi as f64).ln();
    let u = rng.below(1 << 24) as f64 / (1u64 << 24) as f64;
    (llo + u * (lhi - llo)).exp() as u64
}

/// Builds a [`Program`] from a [`WorkloadSpec`].
///
/// # Errors
///
/// Returns [`BuildError`] on validation failure; well-formed specs always
/// build.
pub fn build_spec(spec: &WorkloadSpec) -> Result<Program, BuildError> {
    let mut b = ProgramBuilder::new(spec.name.clone(), spec.seed);
    let rng = DetRng::new(spec.seed ^ 0xACE0_ACE0);
    let mut main_body: Vec<Stmt> = Vec::new();
    let mut shared_region: Option<(u64, u64)> = None;

    for (si, stage) in spec.stages.iter().enumerate() {
        let srng = &mut rng.fork(si as u64 + 1);
        let cspec = &stage.children;

        // Build the child (and leaf) methods of this stage.
        let mut child_ids: Vec<MethodId> = Vec::new();
        for ci in 0..cspec.total() {
            let crng = &mut srng.fork(100 + ci as u64);
            let child_size = crng.range(cspec.instr.0, cspec.instr.1);
            let ws_range = if ci < cspec.count {
                cspec.ws_bytes
            } else {
                cspec.large_ws_bytes
            };
            let ws = log_uniform(crng, ws_range.0, ws_range.1).max(256);
            let region = b.alloc_region(ws);
            let walk = if crng.chance(cspec.random_pct) {
                Walk::Random
            } else {
                Walk::Skewed {
                    hot_bytes_pct: 25,
                    hot_refs_pct: 75,
                }
            };
            let child_pat = b.add_pattern(MemPattern {
                base: region,
                working_set: ws,
                walk,
                refs_per_kinstr: cspec.refs_per_kinstr,
                store_pct: 15 + crng.below(20) as u32,
                taken_pct: cspec.taken_pct,
                block_len: 32 + 16 * crng.below(3) as u32,
                reset_on_entry: true,
            });

            // Leaves: ~70% of the child's work.
            let nleaves = crng.range(cspec.leaves.0 as u64, cspec.leaves.1 as u64) as u32;
            let mut leaf_ids = Vec::new();
            let mut leaf_total = 0u64;
            for li in 0..nleaves {
                let lrng = &mut crng.fork(200 + li as u64);
                let leaf_size = lrng.range(cspec.leaf_instr.0, cspec.leaf_instr.1);
                let lws = log_uniform(lrng, cspec.leaf_ws_bytes.0, cspec.leaf_ws_bytes.1).max(128);
                let lbase = b.alloc_region(lws);
                let leaf_pat = b.add_pattern(MemPattern {
                    base: lbase,
                    working_set: lws,
                    walk: Walk::Strided { stride: 8 },
                    refs_per_kinstr: cspec.refs_per_kinstr,
                    store_pct: 20,
                    taken_pct: cspec.taken_pct.min(97),
                    block_len: 24,
                    reset_on_entry: true,
                });
                let leaf = b.add_method(
                    format!("{}::c{}::leaf{}", stage.name, ci, li),
                    vec![Stmt::Compute {
                        ninstr: leaf_size,
                        pattern: leaf_pat,
                    }],
                );
                b.own_pattern(leaf, leaf_pat);
                leaf_ids.push(leaf);
                leaf_total += leaf_size;
            }

            // Leaves are invoked in back-to-back pairs (like every hotspot
            // here) so their tuning trials can measure steady behavior.
            let leaf_share = child_size * 7 / 10;
            let rounds = if leaf_total > 0 {
                (leaf_share / (2 * leaf_total)).max(1) as u32
            } else {
                0
            };
            let own = child_size
                .saturating_sub(rounds as u64 * 2 * leaf_total)
                .max(8);
            // The kernel's own computation lives in `work` sub-methods —
            // one more level of hotspot nesting, sized for the instruction
            // window's class when the three-CU extension is enabled.
            let quarter = (own / 4).max(2);
            let work_in = b.add_method(
                format!("{}::child{}::work_in", stage.name, ci),
                vec![Stmt::Compute {
                    ninstr: quarter,
                    pattern: child_pat,
                }],
            );
            let work_out = b.add_method(
                format!("{}::child{}::work_out", stage.name, ci),
                vec![Stmt::Compute {
                    ninstr: (own - 2 * quarter).max(2) / 2,
                    pattern: child_pat,
                }],
            );

            let mut body = vec![Stmt::Call {
                callee: work_in,
                count: 2,
            }];
            if rounds > 0 && !leaf_ids.is_empty() {
                body.push(Stmt::Loop {
                    count: rounds,
                    body: leaf_ids
                        .iter()
                        .map(|&l| Stmt::Call {
                            callee: l,
                            count: 2,
                        })
                        .collect(),
                });
            }
            body.push(Stmt::Call {
                callee: work_out,
                count: 2,
            });
            let child = b.add_method(format!("{}::child{}", stage.name, ci), body);
            b.own_pattern(child, child_pat);
            child_ids.push(child);
        }

        // The stage's own streaming pattern (possibly over a shared region).
        let (region, region_bytes) = if stage.shared_region {
            match shared_region {
                Some(r) => r,
                None => {
                    let r = (b.alloc_region(stage.region_bytes), stage.region_bytes);
                    shared_region = Some(r);
                    r
                }
            }
        } else {
            let r = (b.alloc_region(stage.region_bytes), stage.region_bytes);
            shared_region = Some(r);
            r
        };
        let stream_pat = b.add_pattern(MemPattern {
            base: region,
            working_set: region_bytes,
            walk: Walk::Streaming { stride: 24 },
            refs_per_kinstr: 280,
            store_pct: 20,
            taken_pct: cspec.taken_pct,
            block_len: 56,
            reset_on_entry: false,
        });

        let inner_body: Vec<Stmt> = child_ids
            .iter()
            .map(|&c| Stmt::Call {
                callee: c,
                count: stage.child_calls,
            })
            .collect();

        // The stage's streaming work lives in its own methods, sized like
        // the kernels: they are L1D hotspots too, so the L1D is adapted
        // for the stream (which usually wants it large or does not care)
        // rather than inheriting whatever the last kernel selected.
        // Like the kernels, the scans are invoked in back-to-back pairs so
        // their tuning trials can apply a configuration on one invocation
        // and measure its steady behavior on the next.
        let pre = (stage.stream_instr / 5).max(1);
        let post = (stage.stream_instr * 3 / 10).max(1);
        let scan_in = b.add_method(
            format!("{}::scan_in", stage.name),
            vec![Stmt::Compute {
                ninstr: pre,
                pattern: stream_pat,
            }],
        );
        let scan_out = b.add_method(
            format!("{}::scan_out", stage.name),
            vec![Stmt::Compute {
                ninstr: post,
                pattern: stream_pat,
            }],
        );

        if stage.flat {
            // Inline into main: kernels and scans adapt the L1D, but no
            // method wraps the stage, so there is no L2 hotspot here.
            main_body.push(Stmt::Call {
                callee: scan_in,
                count: 2,
            });
            main_body.push(Stmt::Loop {
                count: stage.calls_per_outer * stage.inner_iters,
                body: inner_body,
            });
            main_body.push(Stmt::Call {
                callee: scan_out,
                count: 2,
            });
        } else {
            let body = vec![
                Stmt::Call {
                    callee: scan_in,
                    count: 2,
                },
                Stmt::Loop {
                    count: stage.inner_iters,
                    body: inner_body,
                },
                Stmt::Call {
                    callee: scan_out,
                    count: 2,
                },
            ];
            let stage_m = b.add_method(format!("stage::{}", stage.name), body);
            main_body.push(Stmt::Call {
                callee: stage_m,
                count: stage.calls_per_outer,
            });
        }
    }

    let main = b.add_method(
        "main",
        vec![Stmt::Loop {
            count: spec.outer_iters,
            body: main_body,
        }],
    );
    b.entry(main);
    b.build()
}

/// The spec for a named preset, or `None` for an unknown name.
///
/// Besides the seven evaluated benchmarks, `"check"` builds a miniature
/// program in the spirit of SPECjvm98's `200_check` — the suite's JVM
/// functionality test, which the paper excludes from its evaluation
/// ("its only purpose is to check the functionality of a JVM"). It
/// exercises every workload feature at small scale and is used the same
/// way here: for validating the pipeline, never for results.
pub fn preset_spec(name: &str) -> Option<WorkloadSpec> {
    match name {
        "check" => Some(check_spec()),
        "compress" => Some(compress_spec()),
        "db" => Some(db_spec()),
        "jack" => Some(jack_spec()),
        "javac" => Some(javac_spec()),
        "jess" => Some(jess_spec()),
        "mpeg" => Some(mpeg_spec()),
        "mtrt" => Some(mtrt_spec()),
        _ => None,
    }
}

/// Builds the genuinely dual-threaded mtrt variant: one program holding
/// two disjoint render-worker subtrees that share the scene region, with
/// one entry method per thread. Run it with
/// [`crate::ThreadedExecutor`] / `ace_core::run_threaded`.
///
/// Returns the program and the two thread entries.
pub fn mtrt_threaded() -> (Program, [MethodId; 2]) {
    let spec = mtrt_spec();
    let mut b = ProgramBuilder::new("mtrt-mt", spec.seed ^ 0x7117);
    let rng = DetRng::new(spec.seed ^ 0xACE0_ACE0);
    let mut shared_region: Option<(u64, u64)> = None;
    let mut entries = Vec::new();

    for (ti, stage) in spec.stages.iter().enumerate() {
        // Reuse the single-threaded generator's stage construction by
        // emitting each render task set as its own thread main. The stage
        // spec's `calls_per_outer` becomes per-thread repetition.
        let mut thread_body: Vec<Stmt> = Vec::new();
        let srng = &mut rng.fork(ti as u64 + 1);
        let cspec = &stage.children;
        let mut child_ids = Vec::new();
        for ci in 0..cspec.total() {
            let crng = &mut srng.fork(100 + ci as u64);
            let child_size = crng.range(cspec.instr.0, cspec.instr.1);
            let ws_range = if ci < cspec.count {
                cspec.ws_bytes
            } else {
                cspec.large_ws_bytes
            };
            let ws = log_uniform(crng, ws_range.0, ws_range.1).max(256);
            let region = b.alloc_region(ws);
            let child_pat = b.add_pattern(MemPattern {
                base: region,
                working_set: ws,
                walk: Walk::Skewed {
                    hot_bytes_pct: 25,
                    hot_refs_pct: 75,
                },
                refs_per_kinstr: cspec.refs_per_kinstr,
                store_pct: 20,
                taken_pct: cspec.taken_pct,
                block_len: 48,
                reset_on_entry: true,
            });
            let child = b.add_method(
                format!("t{ti}::trace{ci}"),
                vec![Stmt::Compute {
                    ninstr: child_size,
                    pattern: child_pat,
                }],
            );
            b.own_pattern(child, child_pat);
            child_ids.push(child);
        }
        // Shared scene: both threads stream the same region. The region is
        // sized so the combined two-thread footprint (scene + both trace
        // sets + code) fits one L2 level with margin, keeping the threads'
        // L2 choices unanimous instead of ping-ponging the shared cache.
        let scene_bytes = 260 << 10;
        let (region, region_bytes) = match shared_region {
            Some(r) => r,
            None => {
                let r = (b.alloc_region(scene_bytes), scene_bytes);
                shared_region = Some(r);
                r
            }
        };
        let scene_pat = b.add_pattern(MemPattern {
            base: region,
            working_set: region_bytes,
            walk: Walk::Streaming { stride: 24 },
            refs_per_kinstr: 280,
            store_pct: 10,
            taken_pct: cspec.taken_pct,
            block_len: 56,
            reset_on_entry: false,
        });
        let scan = b.add_method(
            format!("t{ti}::scene_walk"),
            vec![Stmt::Compute {
                ninstr: stage.stream_instr / 2,
                pattern: scene_pat,
            }],
        );
        // One rendered frame = a scene walk plus the trace kernels: an
        // L2-hotspot-sized method invoked once per loop iteration, so the
        // thread has the full hotspot hierarchy (frame > traces).
        let frame = {
            let mut body = vec![Stmt::Call {
                callee: scan,
                count: 2,
            }];
            body.extend(child_ids.iter().map(|&c| Stmt::Call {
                callee: c,
                count: 2,
            }));
            b.add_method(format!("t{ti}::frame"), body)
        };
        thread_body.push(Stmt::Loop {
            count: spec.outer_iters * stage.calls_per_outer,
            body: vec![Stmt::Call {
                callee: frame,
                count: 1,
            }],
        });
        let main = b.add_method(format!("t{ti}::main"), thread_body);
        entries.push(main);
    }
    b.entry(entries[0]);
    let program = b.build().expect("mtrt-mt builds");
    (program, [entries[0], entries[1]])
}

/// Builds a named preset program.
///
/// # Examples
///
/// ```
/// let p = ace_workloads::preset("db").unwrap();
/// assert_eq!(p.name(), "db");
/// assert!(p.method_count() > 20);
/// ```
pub fn preset(name: &str) -> Option<Program> {
    preset_spec(name).map(|s| s.build().expect("preset specs always build"))
}

/// Builds all seven presets in the paper's order.
pub fn all_presets() -> Vec<Program> {
    PRESET_NAMES
        .iter()
        .map(|n| preset(n).expect("known preset"))
        .collect()
}

/// `check`: a miniature functionality test (see [`preset_spec`]): one
/// stage of each flavor, tiny totals, finishes in well under a second.
fn check_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "check".into(),
        seed: 0xC4EC_4001,
        outer_iters: 3,
        stages: vec![
            StageSpec {
                name: "verify".into(),
                calls_per_outer: 2,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 120_000,
                region_bytes: 64 << 10,
                flat: false,
                shared_region: false,
                children: ChildSpec {
                    count: 2,
                    count_large: 1,
                    ..ChildSpec::default()
                },
            },
            StageSpec {
                name: "probe".into(),
                calls_per_outer: 1,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 100_000,
                region_bytes: 64 << 10,
                flat: true,
                shared_region: true,
                children: ChildSpec {
                    count: 2,
                    count_large: 0,
                    random_pct: 50,
                    ..ChildSpec::default()
                },
            },
        ],
    }
}

/// `compress`: an LZW compressor. Two long, regular stages (compress /
/// decompress); dictionary kernels with 4–6 KB working sets plus one large
/// 14–18 KB table kernel per stage, streaming moderate buffers.
fn compress_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "compress".into(),
        seed: 0xC0_4001,
        outer_iters: 5,
        stages: vec![
            StageSpec {
                name: "compress".into(),
                calls_per_outer: 6,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 250_000,
                region_bytes: 120 << 10,
                flat: false,
                shared_region: false,
                children: ChildSpec {
                    count: 3,
                    count_large: 1,
                    ws_bytes: (4 << 10, 6 << 10),
                    large_ws_bytes: (14 << 10, 18 << 10),
                    taken_pct: 93,
                    ..ChildSpec::default()
                },
            },
            StageSpec {
                name: "decompress".into(),
                calls_per_outer: 6,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 200_000,
                region_bytes: 110 << 10,
                flat: false,
                shared_region: true,
                children: ChildSpec {
                    count: 3,
                    count_large: 1,
                    ws_bytes: (4 << 10, 6 << 10),
                    large_ws_bytes: (12 << 10, 16 << 10),
                    taken_pct: 94,
                    ..ChildSpec::default()
                },
            },
        ],
    }
}

/// `db`: an in-memory database. A handful of lookup/sort kernels with tiny
/// (1.5–3 KB) working sets dominate the data references — the reason the
/// paper's largest L1D saving (66 %) appears here — plus one mid-size index
/// kernel. The whole database fits a 256 KB L2.
fn db_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "db".into(),
        seed: 0xDB_4002,
        outer_iters: 6,
        stages: vec![
            StageSpec {
                name: "query".into(),
                calls_per_outer: 6,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 150_000,
                region_bytes: 50 << 10,
                flat: false,
                shared_region: false,
                children: ChildSpec {
                    count: 4,
                    count_large: 1,
                    ws_bytes: (1536, 3 << 10),
                    large_ws_bytes: (10 << 10, 12 << 10),
                    leaf_ws_bytes: (384, 1024),
                    random_pct: 50,
                    taken_pct: 88,
                    ..ChildSpec::default()
                },
            },
            StageSpec {
                name: "sort".into(),
                calls_per_outer: 4,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 180_000,
                region_bytes: 15 << 10,
                flat: false,
                shared_region: true,
                children: ChildSpec {
                    count: 3,
                    count_large: 0,
                    ws_bytes: (1536, 3 << 10),
                    leaf_ws_bytes: (384, 1024),
                    random_pct: 40,
                    taken_pct: 86,
                    ..ChildSpec::default()
                },
            },
        ],
    }
}

/// `jack`: a parser generator. Many small hotspots, three stages with fast
/// turnover, and a flat scanning stage that leaves part of execution with
/// no L2 hotspot (the paper's L2 coverage is lowest here, 56.9 %).
fn jack_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "jack".into(),
        seed: 0x0A_4003,
        outer_iters: 5,
        stages: vec![
            StageSpec {
                name: "scan".into(),
                calls_per_outer: 4,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 200_000,
                region_bytes: 120 << 10,
                flat: true,
                shared_region: false,
                children: ChildSpec {
                    count: 4,
                    count_large: 1,
                    ws_bytes: (3 << 10, 5 << 10),
                    large_ws_bytes: (10 << 10, 14 << 10),
                    leaves: (3, 4),
                    leaf_instr: (6_000, 12_000),
                    taken_pct: 87,
                    ..ChildSpec::default()
                },
            },
            StageSpec {
                name: "parse".into(),
                calls_per_outer: 4,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 250_000,
                region_bytes: 120 << 10,
                flat: false,
                shared_region: true,
                children: ChildSpec {
                    count: 4,
                    count_large: 1,
                    ws_bytes: (3 << 10, 5 << 10),
                    large_ws_bytes: (10 << 10, 14 << 10),
                    leaves: (3, 4),
                    leaf_instr: (6_000, 12_000),
                    random_pct: 35,
                    taken_pct: 88,
                    ..ChildSpec::default()
                },
            },
            StageSpec {
                name: "emit".into(),
                calls_per_outer: 2,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 220_000,
                region_bytes: 120 << 10,
                flat: false,
                shared_region: true,
                children: ChildSpec {
                    count: 3,
                    count_large: 1,
                    ws_bytes: (3 << 10, 5 << 10),
                    large_ws_bytes: (8 << 10, 12 << 10),
                    leaves: (3, 4),
                    leaf_instr: (6_000, 12_000),
                    taken_pct: 90,
                    ..ChildSpec::default()
                },
            },
        ],
    }
}

/// `javac`: the JDK compiler. Six compiler passes per outer iteration with
/// pass-specific working sets — the heaviest phase churn of the suite (the
/// paper's BBV tuned-interval coverage bottoms out at 40 % here).
fn javac_spec() -> WorkloadSpec {
    let pass = |name: &str, ws: (u64, u64), large: (u64, u64), random_pct: u32| StageSpec {
        name: name.into(),
        calls_per_outer: 2,
        inner_iters: 1,
        child_calls: 2,
        stream_instr: 150_000,
        region_bytes: 120 << 10,
        flat: false,
        shared_region: true,
        children: ChildSpec {
            count: 2,
            count_large: 1,
            instr: (120_000, 180_000),
            ws_bytes: ws,
            large_ws_bytes: large,
            random_pct,
            taken_pct: 87,
            ..ChildSpec::default()
        },
    };
    WorkloadSpec {
        name: "javac".into(),
        seed: 0x1A_4004,
        outer_iters: 7,
        stages: vec![
            pass("lex", (1536, 2560), (8 << 10, 10 << 10), 15),
            pass("parse", (4 << 10, 6 << 10), (16 << 10, 20 << 10), 40),
            pass("attr", (8 << 10, 12 << 10), (24 << 10, 28 << 10), 50),
            pass("flow", (4 << 10, 6 << 10), (12 << 10, 16 << 10), 35),
            pass("gen", (3 << 10, 4 << 10), (10 << 10, 12 << 10), 25),
            pass("write", (1536, 2560), (6 << 10, 8 << 10), 10),
        ],
    }
}

/// `jess`: a rule-based expert system. Rete match/fire cycles with
/// medium working sets plus one large beta-memory kernel per stage.
fn jess_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "jess".into(),
        seed: 0x1E_4005,
        outer_iters: 4,
        stages: vec![
            StageSpec {
                name: "match".into(),
                calls_per_outer: 6,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 200_000,
                region_bytes: 110 << 10,
                flat: false,
                shared_region: false,
                children: ChildSpec {
                    count: 4,
                    count_large: 1,
                    ws_bytes: (5 << 10, 8 << 10),
                    large_ws_bytes: (16 << 10, 20 << 10),
                    random_pct: 45,
                    taken_pct: 86,
                    ..ChildSpec::default()
                },
            },
            StageSpec {
                name: "fire".into(),
                calls_per_outer: 6,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 160_000,
                region_bytes: 120 << 10,
                flat: false,
                shared_region: true,
                children: ChildSpec {
                    count: 3,
                    count_large: 1,
                    ws_bytes: (5 << 10, 8 << 10),
                    large_ws_bytes: (14 << 10, 18 << 10),
                    random_pct: 30,
                    taken_pct: 89,
                    ..ChildSpec::default()
                },
            },
        ],
    }
}

/// `mpegaudio`: MP3 decoding. Extremely regular DSP kernels: tiny working
/// sets, near-perfectly predictable branches, long homogeneous stages —
/// the most stable phase behavior of the suite, and a decode state that
/// fits a 256 KB L2.
fn mpeg_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "mpeg".into(),
        seed: 0x3E_4006,
        outer_iters: 4,
        stages: vec![
            StageSpec {
                name: "huffman".into(),
                calls_per_outer: 8,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 200_000,
                region_bytes: 120 << 10,
                flat: false,
                shared_region: false,
                children: ChildSpec {
                    count: 4,
                    count_large: 0,
                    instr: (100_000, 190_000),
                    ws_bytes: (2 << 10, 3584),
                    random_pct: 5,
                    taken_pct: 97,
                    ..ChildSpec::default()
                },
            },
            StageSpec {
                name: "synthesis".into(),
                calls_per_outer: 8,
                inner_iters: 1,
                child_calls: 2,
                stream_instr: 220_000,
                region_bytes: 120 << 10,
                flat: false,
                shared_region: true,
                children: ChildSpec {
                    count: 4,
                    count_large: 0,
                    instr: (100_000, 190_000),
                    ws_bytes: (4 << 10, 6 << 10),
                    random_pct: 5,
                    taken_pct: 97,
                    ..ChildSpec::default()
                },
            },
        ],
    }
}

/// `mtrt`: a dual-threaded ray tracer, modeled as two interleaved render
/// task sets sharing scene data. Intersection kernels carry the largest
/// working sets of the suite; one task set is flat (invoked directly from
/// the scheduler loop), so few L2 hotspots exist — as in the paper, where
/// mtrt has only 21 L2 hotspots and the BBV scheme edges out the hotspot
/// scheme on L2 energy.
fn mtrt_spec() -> WorkloadSpec {
    let render = |name: &str, flat: bool| StageSpec {
        name: name.into(),
        calls_per_outer: 8,
        inner_iters: 1,
        child_calls: 2,
        stream_instr: 220_000,
        region_bytes: 315 << 10,
        flat,
        shared_region: !flat || name.ends_with("_b"),
        children: ChildSpec {
            count: 4,
            count_large: 1,
            ws_bytes: (8 << 10, 12 << 10),
            large_ws_bytes: (18 << 10, 22 << 10),
            random_pct: 40,
            taken_pct: 85,
            ..ChildSpec::default()
        },
    };
    WorkloadSpec {
        name: "mtrt".into(),
        seed: 0x47_4007,
        outer_iters: 3,
        stages: vec![render("render_a", false), render("render_b", true)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;

    #[test]
    fn all_presets_build_and_validate() {
        for p in all_presets() {
            p.validate().unwrap();
            assert!(
                p.method_count() > 20,
                "{} has {} methods",
                p.name(),
                p.method_count()
            );
        }
    }

    #[test]
    fn preset_totals_in_scaled_band() {
        for name in PRESET_NAMES {
            let spec = preset_spec(name).unwrap();
            let est = spec.expected_total();
            assert!(
                (30_000_000..240_000_000).contains(&est),
                "{name}: expected total {est}"
            );
        }
    }

    #[test]
    fn unknown_preset_is_none() {
        assert!(preset("fortran").is_none());
    }

    #[test]
    fn check_preset_is_small_and_excluded_from_the_suite() {
        // Like SPECjvm98's 200_check: available, but not part of the
        // evaluated seven.
        assert!(!PRESET_NAMES.contains(&"check"));
        let p = preset("check").unwrap();
        p.validate().unwrap();
        let total = Executor::new(&p).measure();
        assert!(total < 10_000_000, "check stays tiny: {total}");
    }

    #[test]
    fn preset_is_deterministic() {
        let a = preset("db").unwrap();
        let b = preset("db").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn db_children_have_small_working_sets() {
        let p = preset("db").unwrap();
        // Nearly all of db's resident (reset_on_entry) data fits the
        // smallest L1D — the preset's defining property; only the single
        // mid-size index kernel exceeds it.
        let resident: Vec<u64> = p
            .patterns()
            .iter()
            .filter(|pat| pat.reset_on_entry)
            .map(|pat| pat.working_set)
            .collect();
        let small = resident.iter().filter(|&&ws| ws <= 4 << 10).count();
        assert!(
            small * 10 >= resident.len() * 9,
            "at least 90% of db's resident sets fit 4 KB: {small}/{}",
            resident.len()
        );
    }

    #[test]
    fn executed_total_matches_estimate() {
        let spec = preset_spec("jess").unwrap();
        let p = spec.build().unwrap();
        let total = Executor::new(&p).measure();
        let est = spec.expected_total();
        assert!(
            total > est / 2 && total < est * 2,
            "jess: executed {total}, estimated {est}"
        );
    }

    #[test]
    fn stage_sizes_make_l2_hotspots() {
        // Non-flat stages must exceed the 500 K L2-hotspot threshold.
        for name in PRESET_NAMES {
            let spec = preset_spec(name).unwrap();
            let p = spec.build().unwrap();
            for m in p.methods() {
                if m.name.starts_with("stage::") {
                    let id = p
                        .methods()
                        .iter()
                        .position(|mm| std::ptr::eq(mm, m))
                        .unwrap();
                    let size = p.static_size(crate::MethodId(id as u32));
                    assert!(
                        size > 500_000,
                        "{name}/{}: stage size {size} too small for an L2 hotspot",
                        m.name
                    );
                }
            }
        }
    }

    #[test]
    fn mtrt_has_flat_stage() {
        let spec = preset_spec("mtrt").unwrap();
        assert!(spec.stages.iter().any(|s| s.flat));
        let p = spec.build().unwrap();
        // Flat stage children exist as methods but no stage wrapper for b.
        assert!(p
            .methods()
            .iter()
            .any(|m| m.name.starts_with("render_b::child")));
        assert!(!p.methods().iter().any(|m| m.name == "stage::render_b"));
    }
}
