//! The seven SPECjvm98-like preset workloads, as committed spec data.
//!
//! SPECjvm98 itself (and the Jikes RVM + Dynamic SimpleScalar stack that ran
//! it) is not reproducible here, so each benchmark is replaced by a
//! synthetic program whose *hotspot structure* is calibrated to the paper's
//! Table 4/5 characteristics and whose memory behavior follows the
//! benchmark's published character (e.g. for `db`, fewer than 10 procedures
//! cause >95 % of data-cache misses, with small working sets — which is why
//! the paper sees its largest L1D saving there).
//!
//! Each preset is a [`WorkloadSpec`] committed as JSON under
//! `crates/workloads/presets/` and embedded at compile time — the presets
//! are *data*, resolved through the same [`crate::WorkloadRegistry`] path
//! as user-supplied spec files, not bespoke constructor functions. The
//! calibration rationale for each preset lives in a `//` comment block
//! above its pinned seed below; behavior is pinned byte-for-byte by the
//! golden-counter fixtures.
//!
//! All presets share a three-level template mirroring how JVM workloads
//! nest:
//!
//! * **stages** — top-level program phases (0.7–5 M instructions per
//!   invocation): the *L2 hotspots*;
//! * **children** — kernels inside a stage (60–400 K instructions): the
//!   *L1D hotspots*;
//! * **leaves** — small helpers (2–15 K instructions): hotspots too small
//!   to adapt any configurable unit, but which dominate the hotspot count
//!   as in Table 4.
//!
//! A stage may be *flat*: its children are invoked directly from `main`
//! with no enclosing stage method, so that part of execution has no L2
//! hotspot — this models the benchmarks (jack, mtrt) where the paper's L2
//! coverage trails the BBV scheme's.
//!
//! Dynamic instruction totals are scaled ~100× below the paper's 5–11 G
//! (see DESIGN.md §5); structural statistics (sizes, nesting, working-set
//! diversity) are preserved.

use crate::builder::ProgramBuilder;
use crate::ir::{MethodId, Program, Stmt};
use crate::pattern::{MemPattern, Walk};
use crate::rng::DetRng;
use crate::spec::{log_uniform, WorkloadSpec};
use std::sync::OnceLock;

/// Names of the seven presets, in the paper's order.
pub const PRESET_NAMES: [&str; 7] = ["compress", "db", "jack", "javac", "jess", "mpeg", "mtrt"];

/// The embedded preset spec files, with each preset's calibration notes.
const PRESET_SOURCES: [(&str, &str); 8] = [
    // `check` (seed 0xC4EC_4001): a miniature functionality test in the
    // spirit of SPECjvm98's 200_check — one stage of each flavor, tiny
    // totals, finishes in well under a second. Excluded from the evaluated
    // seven, like the paper excludes 200_check.
    ("check", include_str!("../presets/check.json")),
    // `compress` (seed 0xC0_4001): an LZW compressor. Two long, regular
    // stages (compress / decompress); dictionary kernels with 4–6 KB
    // working sets plus one large 14–18 KB table kernel per stage,
    // streaming moderate buffers.
    ("compress", include_str!("../presets/compress.json")),
    // `db` (seed 0xDB_4002): an in-memory database. A handful of
    // lookup/sort kernels with tiny (1.5–3 KB) working sets dominate the
    // data references — the reason the paper's largest L1D saving (66 %)
    // appears here — plus one mid-size index kernel. The whole database
    // fits a 256 KB L2.
    ("db", include_str!("../presets/db.json")),
    // `jack` (seed 0x0A_4003): a parser generator. Many small hotspots,
    // three stages with fast turnover, and a flat scanning stage that
    // leaves part of execution with no L2 hotspot (the paper's L2 coverage
    // is lowest here, 56.9 %).
    ("jack", include_str!("../presets/jack.json")),
    // `javac` (seed 0x1A_4004): the JDK compiler. Six compiler passes per
    // outer iteration with pass-specific working sets — the heaviest phase
    // churn of the suite (the paper's BBV tuned-interval coverage bottoms
    // out at 40 % here).
    ("javac", include_str!("../presets/javac.json")),
    // `jess` (seed 0x1E_4005): a rule-based expert system. Rete match/fire
    // cycles with medium working sets plus one large beta-memory kernel
    // per stage.
    ("jess", include_str!("../presets/jess.json")),
    // `mpegaudio` (seed 0x3E_4006): MP3 decoding. Extremely regular DSP
    // kernels: tiny working sets, near-perfectly predictable branches,
    // long homogeneous stages — the most stable phase behavior of the
    // suite, and a decode state that fits a 256 KB L2.
    ("mpeg", include_str!("../presets/mpeg.json")),
    // `mtrt` (seed 0x47_4007): a dual-threaded ray tracer, modeled as two
    // interleaved render task sets sharing scene data. Intersection
    // kernels carry the largest working sets of the suite; one task set is
    // flat (invoked directly from the scheduler loop), so few L2 hotspots
    // exist — as in the paper, where mtrt has only 21 L2 hotspots and the
    // BBV scheme edges out the hotspot scheme on L2 energy.
    ("mtrt", include_str!("../presets/mtrt.json")),
];

/// Parses the embedded preset files once.
fn parsed_presets() -> &'static [WorkloadSpec] {
    static CACHE: OnceLock<Vec<WorkloadSpec>> = OnceLock::new();
    CACHE.get_or_init(|| {
        PRESET_SOURCES
            .iter()
            .map(|(name, src)| {
                let spec: WorkloadSpec = serde_json::from_str(src)
                    .unwrap_or_else(|e| panic!("embedded preset '{name}' is invalid JSON: {e}"));
                assert_eq!(
                    spec.name, *name,
                    "embedded preset file/name mismatch for '{name}'"
                );
                spec.validate()
                    .unwrap_or_else(|e| panic!("embedded preset '{name}': {e}"));
                spec
            })
            .collect()
    })
}

/// The spec for a named preset, or `None` for an unknown name.
///
/// Besides the seven evaluated benchmarks, `"check"` builds a miniature
/// program in the spirit of SPECjvm98's `200_check` — the suite's JVM
/// functionality test, which the paper excludes from its evaluation
/// ("its only purpose is to check the functionality of a JVM"). It
/// exercises every workload feature at small scale and is used the same
/// way here: for validating the pipeline, never for results.
pub fn preset_spec(name: &str) -> Option<WorkloadSpec> {
    parsed_presets().iter().find(|s| s.name == name).cloned()
}

/// Builds the genuinely dual-threaded mtrt variant: one program holding
/// two disjoint render-worker subtrees that share the scene region, with
/// one entry method per thread. Run it with
/// [`crate::ThreadedExecutor`] / `ace_core::run_threaded`.
///
/// Returns the program and the two thread entries.
pub fn mtrt_threaded() -> (Program, [MethodId; 2]) {
    let spec = preset_spec("mtrt").expect("mtrt preset exists");
    let mut b = ProgramBuilder::new("mtrt-mt", spec.seed ^ 0x7117);
    let rng = DetRng::new(spec.seed ^ 0xACE0_ACE0);
    let mut shared_region: Option<(u64, u64)> = None;
    let mut entries = Vec::new();

    for (ti, stage) in spec.stages.iter().enumerate() {
        // Reuse the single-threaded generator's stage construction by
        // emitting each render task set as its own thread main. The stage
        // spec's `calls_per_outer` becomes per-thread repetition.
        let mut thread_body: Vec<Stmt> = Vec::new();
        let srng = &mut rng.fork(ti as u64 + 1);
        let cspec = &stage.children;
        let mut child_ids = Vec::new();
        for ci in 0..cspec.total() {
            let crng = &mut srng.fork(100 + ci as u64);
            let child_size = crng.range(cspec.instr.0, cspec.instr.1);
            let ws_range = if ci < cspec.count {
                cspec.ws_bytes
            } else {
                cspec.large_ws_bytes
            };
            let ws = log_uniform(crng, ws_range.0, ws_range.1).max(256);
            let region = b.alloc_region(ws);
            let child_pat = b.add_pattern(MemPattern {
                base: region,
                working_set: ws,
                walk: Walk::Skewed {
                    hot_bytes_pct: 25,
                    hot_refs_pct: 75,
                },
                refs_per_kinstr: cspec.refs_per_kinstr,
                store_pct: 20,
                taken_pct: cspec.taken_pct,
                block_len: 48,
                reset_on_entry: true,
            });
            let child = b.add_method(
                format!("t{ti}::trace{ci}"),
                vec![Stmt::Compute {
                    ninstr: child_size,
                    pattern: child_pat,
                }],
            );
            b.own_pattern(child, child_pat);
            child_ids.push(child);
        }
        // Shared scene: both threads stream the same region. The region is
        // sized so the combined two-thread footprint (scene + both trace
        // sets + code) fits one L2 level with margin, keeping the threads'
        // L2 choices unanimous instead of ping-ponging the shared cache.
        let scene_bytes = 260 << 10;
        let (region, region_bytes) = match shared_region {
            Some(r) => r,
            None => {
                let r = (b.alloc_region(scene_bytes), scene_bytes);
                shared_region = Some(r);
                r
            }
        };
        let scene_pat = b.add_pattern(MemPattern {
            base: region,
            working_set: region_bytes,
            walk: Walk::Streaming { stride: 24 },
            refs_per_kinstr: 280,
            store_pct: 10,
            taken_pct: cspec.taken_pct,
            block_len: 56,
            reset_on_entry: false,
        });
        let scan = b.add_method(
            format!("t{ti}::scene_walk"),
            vec![Stmt::Compute {
                ninstr: stage.stream_instr / 2,
                pattern: scene_pat,
            }],
        );
        // One rendered frame = a scene walk plus the trace kernels: an
        // L2-hotspot-sized method invoked once per loop iteration, so the
        // thread has the full hotspot hierarchy (frame > traces).
        let frame = {
            let mut body = vec![Stmt::Call {
                callee: scan,
                count: 2,
            }];
            body.extend(child_ids.iter().map(|&c| Stmt::Call {
                callee: c,
                count: 2,
            }));
            b.add_method(format!("t{ti}::frame"), body)
        };
        thread_body.push(Stmt::Loop {
            count: spec.outer_iters * stage.calls_per_outer,
            body: vec![Stmt::Call {
                callee: frame,
                count: 1,
            }],
        });
        let main = b.add_method(format!("t{ti}::main"), thread_body);
        entries.push(main);
    }
    b.entry(entries[0]);
    let program = b.build().expect("mtrt-mt builds");
    (program, [entries[0], entries[1]])
}

/// Builds a named preset program.
///
/// # Examples
///
/// ```
/// let p = ace_workloads::preset("db").unwrap();
/// assert_eq!(p.name(), "db");
/// assert!(p.method_count() > 20);
/// ```
pub fn preset(name: &str) -> Option<Program> {
    preset_spec(name).map(|s| s.build().expect("preset specs always build"))
}

/// Builds all seven presets in the paper's order.
pub fn all_presets() -> Vec<Program> {
    PRESET_NAMES
        .iter()
        .map(|n| preset(n).expect("known preset"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;

    #[test]
    fn all_presets_build_and_validate() {
        for p in all_presets() {
            p.validate().unwrap();
            assert!(
                p.method_count() > 20,
                "{} has {} methods",
                p.name(),
                p.method_count()
            );
        }
    }

    #[test]
    fn embedded_preset_seeds_are_pinned() {
        // The committed JSON is behavior-defining data: a stray edit to a
        // seed would silently shift every downstream golden fixture, so the
        // seeds are pinned here in code too.
        let expected: [(&str, u64); 8] = [
            ("check", 0xC4EC_4001),
            ("compress", 0xC0_4001),
            ("db", 0xDB_4002),
            ("jack", 0x0A_4003),
            ("javac", 0x1A_4004),
            ("jess", 0x1E_4005),
            ("mpeg", 0x3E_4006),
            ("mtrt", 0x47_4007),
        ];
        for (name, seed) in expected {
            assert_eq!(preset_spec(name).unwrap().seed, seed, "{name}");
        }
    }

    #[test]
    fn preset_totals_in_scaled_band() {
        for name in PRESET_NAMES {
            let spec = preset_spec(name).unwrap();
            let est = spec.expected_total();
            assert!(
                (30_000_000..240_000_000).contains(&est),
                "{name}: expected total {est}"
            );
        }
    }

    #[test]
    fn unknown_preset_is_none() {
        assert!(preset("fortran").is_none());
    }

    #[test]
    fn check_preset_is_small_and_excluded_from_the_suite() {
        // Like SPECjvm98's 200_check: available, but not part of the
        // evaluated seven.
        assert!(!PRESET_NAMES.contains(&"check"));
        let p = preset("check").unwrap();
        p.validate().unwrap();
        let total = Executor::new(&p).measure();
        assert!(total < 10_000_000, "check stays tiny: {total}");
    }

    #[test]
    fn preset_is_deterministic() {
        let a = preset("db").unwrap();
        let b = preset("db").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn db_children_have_small_working_sets() {
        let p = preset("db").unwrap();
        // Nearly all of db's resident (reset_on_entry) data fits the
        // smallest L1D — the preset's defining property; only the single
        // mid-size index kernel exceeds it.
        let resident: Vec<u64> = p
            .patterns()
            .iter()
            .filter(|pat| pat.reset_on_entry)
            .map(|pat| pat.working_set)
            .collect();
        let small = resident.iter().filter(|&&ws| ws <= 4 << 10).count();
        assert!(
            small * 10 >= resident.len() * 9,
            "at least 90% of db's resident sets fit 4 KB: {small}/{}",
            resident.len()
        );
    }

    #[test]
    fn executed_total_matches_estimate() {
        let spec = preset_spec("jess").unwrap();
        let p = spec.build().unwrap();
        let total = Executor::new(&p).measure();
        let est = spec.expected_total();
        assert!(
            total > est / 2 && total < est * 2,
            "jess: executed {total}, estimated {est}"
        );
    }

    #[test]
    fn stage_sizes_make_l2_hotspots() {
        // Non-flat stages must exceed the 500 K L2-hotspot threshold.
        for name in PRESET_NAMES {
            let spec = preset_spec(name).unwrap();
            let p = spec.build().unwrap();
            for m in p.methods() {
                if m.name.starts_with("stage::") {
                    let id = p
                        .methods()
                        .iter()
                        .position(|mm| std::ptr::eq(mm, m))
                        .unwrap();
                    let size = p.static_size(crate::MethodId(id as u32));
                    assert!(
                        size > 500_000,
                        "{name}/{}: stage size {size} too small for an L2 hotspot",
                        m.name
                    );
                }
            }
        }
    }

    #[test]
    fn mtrt_has_flat_stage() {
        let spec = preset_spec("mtrt").unwrap();
        assert!(spec.stages.iter().any(|s| s.flat));
        let p = spec.build().unwrap();
        // Flat stage children exist as methods but no stage wrapper for b.
        assert!(p
            .methods()
            .iter()
            .any(|m| m.name.starts_with("render_b::child")));
        assert!(!p.methods().iter().any(|m| m.name == "stage::render_b"));
    }
}
