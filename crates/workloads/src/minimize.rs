//! Failure-spec minimization.
//!
//! When a generated [`WorkloadSpec`] trips an oracle (a build error, a
//! determinism divergence, a counter mismatch), the raw spec is a poor
//! bug report: multiple stages, dozens of drawn parameters, and totals in
//! the millions. [`minimize`] bisects it toward a minimal reproducer: it
//! repeatedly tries shrinking transformations — dropping stage chunks,
//! halving counts and budgets, zeroing populations, collapsing ranges —
//! and keeps a candidate only if the caller's predicate says it *still
//! fails*. The fixpoint is written to
//! `crates/workloads/fixtures/regressions/` and replayed by the push-gate
//! test suite.
//!
//! The predicate is the oracle: keep it specific (e.g. "build error
//! mentioning `leaf_instr`", not "any error"), otherwise the minimizer can
//! slide onto a *different* failure and minimize that instead.

use crate::spec::WorkloadSpec;

/// Result of a [`minimize`] run.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// The minimal spec found (still failing the predicate).
    pub spec: WorkloadSpec,
    /// Shrinking transformations accepted.
    pub accepted: u32,
    /// Candidate specs tried (predicate invocations, excluding the initial
    /// check).
    pub candidates: u32,
}

/// Predicate-call budget: minimization is bounded even if the predicate is
/// expensive or the candidate space is large.
const MAX_CANDIDATES: u32 = 20_000;

/// Shrinks `spec` toward a minimal spec that still satisfies `still_fails`.
///
/// `still_fails` must return `true` for `spec` itself (checked first; if it
/// does not, the input is returned unchanged with zero counts). Greedy
/// first-improvement descent to a fixpoint: after every accepted shrink the
/// candidate list is regenerated, so stage removals compose with per-field
/// halving.
pub fn minimize(
    spec: &WorkloadSpec,
    still_fails: &mut dyn FnMut(&WorkloadSpec) -> bool,
) -> MinimizeOutcome {
    let mut out = MinimizeOutcome {
        spec: spec.clone(),
        accepted: 0,
        candidates: 0,
    };
    if !still_fails(spec) {
        return out;
    }
    'descent: loop {
        for cand in shrink_candidates(&out.spec) {
            if out.candidates >= MAX_CANDIDATES {
                break 'descent;
            }
            out.candidates += 1;
            if still_fails(&cand) {
                out.spec = cand;
                out.accepted += 1;
                continue 'descent;
            }
        }
        break;
    }
    out
}

/// One round of shrinking candidates, most aggressive first.
fn shrink_candidates(spec: &WorkloadSpec) -> Vec<WorkloadSpec> {
    let mut out = Vec::new();
    let nstages = spec.stages.len();

    // Stage removal, delta-debugging style: halves, then single stages.
    if nstages > 1 {
        let half = nstages / 2;
        let mut first = spec.clone();
        first.stages.truncate(half);
        out.push(first);
        let mut second = spec.clone();
        second.stages.drain(..half);
        out.push(second);
        for i in 0..nstages {
            let mut one = spec.clone();
            one.stages.remove(i);
            out.push(one);
        }
    }

    // Outer iterations: straight to 1, then halving.
    for v in [1, spec.outer_iters / 2] {
        if v >= 1 && v < spec.outer_iters {
            let mut c = spec.clone();
            c.outer_iters = v;
            out.push(c);
        }
    }

    for (si, stage) in spec.stages.iter().enumerate() {
        let with_stage = |f: &dyn Fn(&mut crate::spec::StageSpec)| {
            let mut c = spec.clone();
            f(&mut c.stages[si]);
            c
        };
        type SetCount = dyn Fn(&mut crate::spec::StageSpec, u32);
        let counts: [(u32, &SetCount); 3] = [
            (stage.calls_per_outer, &|s, v| s.calls_per_outer = v),
            (stage.inner_iters, &|s, v| s.inner_iters = v),
            (stage.child_calls, &|s, v| s.child_calls = v),
        ];
        for (cur, set) in counts {
            for v in [1, cur / 2] {
                if v >= 1 && v < cur {
                    out.push(with_stage(&|s| set(s, v)));
                }
            }
        }
        for v in [1_000, stage.stream_instr / 2] {
            if v >= 1 && v < stage.stream_instr {
                out.push(with_stage(&|s| s.stream_instr = v));
            }
        }
        for v in [4_096, stage.region_bytes / 2] {
            if v >= 1 && v < stage.region_bytes {
                out.push(with_stage(&|s| s.region_bytes = v));
            }
        }
        if stage.flat {
            out.push(with_stage(&|s| s.flat = false));
        }
        if stage.shared_region {
            out.push(with_stage(&|s| s.shared_region = false));
        }

        // Child population shrinks.
        let c = &stage.children;
        for v in [0, c.count / 2] {
            if v < c.count {
                out.push(with_stage(&|s| s.children.count = v));
            }
        }
        for v in [0, c.count_large / 2] {
            if v < c.count_large {
                out.push(with_stage(&|s| s.children.count_large = v));
            }
        }
        if c.leaves != (0, 0) {
            out.push(with_stage(&|s| s.children.leaves = (0, 0)));
        }
        if c.random_pct > 0 {
            out.push(with_stage(&|s| s.children.random_pct = 0));
        }

        // Instruction/working-set windows: halve each endpoint
        // independently (a reversed pair stays reversed, so range-order
        // failures survive while the magnitudes shrink).
        type Tuple = (u64, u64);
        type SetTuple = dyn Fn(&mut crate::spec::StageSpec, Tuple);
        let tuples: [(Tuple, u64, &SetTuple); 5] = [
            (c.instr, 8, &|s, v| s.children.instr = v),
            (c.ws_bytes, 64, &|s, v| s.children.ws_bytes = v),
            (c.large_ws_bytes, 64, &|s, v| s.children.large_ws_bytes = v),
            (c.leaf_instr, 8, &|s, v| s.children.leaf_instr = v),
            (c.leaf_ws_bytes, 64, &|s, v| s.children.leaf_ws_bytes = v),
        ];
        for (cur, floor, set) in tuples {
            let half = |x: u64| (x / 2).max(floor);
            let both = (half(cur.0), half(cur.1));
            if both != cur {
                out.push(with_stage(&|s| set(s, both)));
            }
            if cur.0 != cur.1 {
                out.push(with_stage(&|s| set(s, (cur.0, cur.0))));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StageSpec;

    fn failing_spec() -> WorkloadSpec {
        // Three stages; only the middle one carries the defect (a reversed
        // leaf_instr range).
        let mut spec = WorkloadSpec {
            name: "failing".into(),
            seed: 99,
            outer_iters: 8,
            stages: vec![
                StageSpec::new("a"),
                StageSpec::new("b"),
                StageSpec::new("c"),
            ],
        };
        spec.stages[1].children.leaf_instr = (14_000, 6_000);
        spec
    }

    fn leaf_instr_reversed(s: &WorkloadSpec) -> bool {
        matches!(s.build(), Err(e) if e.to_string().contains("leaf_instr"))
    }

    #[test]
    fn shrinks_to_one_stage_and_minimal_counts() {
        let spec = failing_spec();
        let out = minimize(&spec, &mut leaf_instr_reversed);
        assert!(leaf_instr_reversed(&out.spec), "minimal spec still fails");
        assert_eq!(out.spec.stages.len(), 1, "irrelevant stages dropped");
        assert_eq!(out.spec.outer_iters, 1);
        assert_eq!(out.spec.stages[0].calls_per_outer, 1);
        let c = &out.spec.stages[0].children;
        assert!(c.leaf_instr.0 > c.leaf_instr.1, "defect preserved");
        assert!(out.accepted > 0 && out.candidates >= out.accepted);
        assert!(
            out.spec.expected_total() < spec.expected_total() / 10,
            "minimal spec is much smaller: {} vs {}",
            out.spec.expected_total(),
            spec.expected_total()
        );
    }

    #[test]
    fn non_failing_input_returned_unchanged() {
        let spec = WorkloadSpec {
            name: "fine".into(),
            seed: 1,
            outer_iters: 2,
            stages: vec![StageSpec::new("only")],
        };
        let out = minimize(&spec, &mut leaf_instr_reversed);
        assert_eq!(out.spec, spec);
        assert_eq!(out.accepted, 0);
        assert_eq!(out.candidates, 0);
    }
}
