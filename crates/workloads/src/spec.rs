//! The declarative workload specification consumed by [`ProgramBuilder`].
//!
//! A [`WorkloadSpec`] is plain serde-able data: stage/child/leaf
//! populations, nesting, working-set classes, instruction budgets, and a
//! seed. [`build_spec`] (or [`WorkloadSpec::build`]) lowers it to a
//! [`Program`] through the three-level template described in
//! [`crate::presets`]. The seven presets are committed spec files under
//! `crates/workloads/presets/`; [`crate::generate::gen`] samples the same
//! parameter space randomly.

use crate::builder::{BuildError, ProgramBuilder};
use crate::ir::{MethodId, Program, Stmt};
use crate::pattern::{MemPattern, Walk};
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};

/// Specification of one child kernel population within a stage.
///
/// Children come in two working-set *classes*: a `count`-strong small
/// class drawn from `ws_bytes`, plus `count_large` children drawn from
/// `large_ws_bytes`. Mixing classes inside one stage is what separates the
/// schemes: the hotspot manager tunes each kernel's L1D individually, while
/// a 1 M-instruction sampling interval blends the classes and forces the
/// BBV scheme into one compromise configuration per phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChildSpec {
    /// Number of small-class child methods.
    pub count: u32,
    /// Number of large-class child methods.
    pub count_large: u32,
    /// Per-invocation dynamic size range (instructions), both classes.
    pub instr: (u64, u64),
    /// Small-class working-set range in bytes (log-uniform draw).
    pub ws_bytes: (u64, u64),
    /// Large-class working-set range in bytes.
    pub large_ws_bytes: (u64, u64),
    /// Percent of children walking their set uniformly at random instead
    /// of with a skewed hot core.
    pub random_pct: u32,
    /// Leaves per child.
    pub leaves: (u32, u32),
    /// Leaf per-invocation size range (instructions).
    pub leaf_instr: (u64, u64),
    /// Leaf working-set range in bytes.
    pub leaf_ws_bytes: (u64, u64),
    /// Branch taken probability (percent) for this population.
    pub taken_pct: u32,
    /// Memory references per 1000 instructions.
    pub refs_per_kinstr: u32,
}

impl Default for ChildSpec {
    fn default() -> Self {
        ChildSpec {
            count: 4,
            count_large: 1,
            instr: (120_000, 180_000),
            ws_bytes: (4 << 10, 6 << 10),
            large_ws_bytes: (16 << 10, 20 << 10),
            random_pct: 20,
            leaves: (2, 3),
            leaf_instr: (6_000, 14_000),
            leaf_ws_bytes: (512, 1536),
            taken_pct: 90,
            refs_per_kinstr: 300,
        }
    }
}

impl ChildSpec {
    /// Total children (both classes).
    pub fn total(&self) -> u32 {
        self.count + self.count_large
    }

    /// Range-order and percentage checks; `ctx` names the owning stage in
    /// error messages.
    fn validate(&self, ctx: &str) -> Result<(), BuildError> {
        let ordered_u64 = |field: &str, (lo, hi): (u64, u64)| {
            if lo > hi {
                Err(BuildError::new(format!(
                    "{ctx}: {field} range reversed ({lo} > {hi})"
                )))
            } else {
                Ok(())
            }
        };
        ordered_u64("instr", self.instr)?;
        ordered_u64("ws_bytes", self.ws_bytes)?;
        ordered_u64("large_ws_bytes", self.large_ws_bytes)?;
        ordered_u64("leaf_instr", self.leaf_instr)?;
        ordered_u64("leaf_ws_bytes", self.leaf_ws_bytes)?;
        if self.leaves.0 > self.leaves.1 {
            return Err(BuildError::new(format!(
                "{ctx}: leaves range reversed ({} > {})",
                self.leaves.0, self.leaves.1
            )));
        }
        // Magnitude caps: generous for any realistic workload, tight
        // enough that every arithmetic path downstream stays in u64.
        for (field, hi, cap) in [
            ("instr", self.instr.1, 1u64 << 40),
            ("leaf_instr", self.leaf_instr.1, 1 << 40),
            ("ws_bytes", self.ws_bytes.1, 1 << 32),
            ("large_ws_bytes", self.large_ws_bytes.1, 1 << 32),
            ("leaf_ws_bytes", self.leaf_ws_bytes.1, 1 << 32),
        ] {
            if hi > cap {
                return Err(BuildError::new(format!(
                    "{ctx}: {field} upper bound {hi} exceeds the {cap} cap"
                )));
            }
        }
        if self.leaves.1 > 1024 {
            return Err(BuildError::new(format!(
                "{ctx}: {} leaves exceed the 1024-per-child cap",
                self.leaves.1
            )));
        }
        for (field, pct) in [
            ("random_pct", self.random_pct),
            ("taken_pct", self.taken_pct),
        ] {
            if pct > 100 {
                return Err(BuildError::new(format!("{ctx}: {field} {pct} > 100")));
            }
        }
        if self.refs_per_kinstr > 1000 {
            return Err(BuildError::new(format!(
                "{ctx}: refs_per_kinstr {} > 1000",
                self.refs_per_kinstr
            )));
        }
        if self.total() > 256 {
            return Err(BuildError::new(format!(
                "{ctx}: {} children exceed the 256-per-stage cap",
                self.total()
            )));
        }
        Ok(())
    }
}

/// Specification of one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Stage name (diagnostics).
    pub name: String,
    /// Consecutive invocations per outer iteration. Values ≥ 2 make the
    /// stage span several BBV sampling intervals back-to-back, producing
    /// stable phases.
    pub calls_per_outer: u32,
    /// Rounds over the child population per stage invocation.
    pub inner_iters: u32,
    /// Back-to-back calls of each child per round.
    pub child_calls: u32,
    /// The stage's own streaming computation per invocation (instructions).
    pub stream_instr: u64,
    /// Bytes of the region the stage streams over (drives the L2 footprint).
    pub region_bytes: u64,
    /// `true` to inline the stage into `main` (no L2 hotspot).
    pub flat: bool,
    /// `true` to stream over the *first* stage's region instead of a fresh
    /// one — stages of one program usually share its central data
    /// structures, and sharing keeps the program's total L2 footprint at
    /// one region instead of one per stage.
    pub shared_region: bool,
    /// Child population.
    pub children: ChildSpec,
}

impl StageSpec {
    /// A stage with sensible defaults.
    pub fn new(name: impl Into<String>) -> StageSpec {
        StageSpec {
            name: name.into(),
            calls_per_outer: 2,
            inner_iters: 3,
            child_calls: 2,
            stream_instr: 250_000,
            region_bytes: 512 << 10,
            flat: false,
            shared_region: false,
            children: ChildSpec::default(),
        }
    }

    /// Expected per-invocation dynamic size (mean of ranges; saturating,
    /// so estimates of absurd specs clamp instead of overflowing).
    pub fn expected_size(&self) -> u64 {
        let c = &self.children;
        let child_mean = c.instr.0 / 2 + c.instr.1 / 2;
        self.stream_instr.saturating_add(
            (self.inner_iters as u64 * c.total() as u64)
                .saturating_mul(self.child_calls as u64)
                .saturating_mul(child_mean),
        )
    }

    fn validate(&self) -> Result<(), BuildError> {
        let ctx = format!("stage '{}'", self.name);
        for (field, v) in [
            ("calls_per_outer", self.calls_per_outer),
            ("inner_iters", self.inner_iters),
            ("child_calls", self.child_calls),
        ] {
            if v == 0 {
                return Err(BuildError::new(format!("{ctx}: {field} is zero")));
            }
        }
        if self.region_bytes == 0 {
            return Err(BuildError::new(format!("{ctx}: region_bytes is zero")));
        }
        for (field, v, cap) in [
            ("calls_per_outer", self.calls_per_outer as u64, 10_000),
            ("inner_iters", self.inner_iters as u64, 10_000),
            ("child_calls", self.child_calls as u64, 10_000),
            ("stream_instr", self.stream_instr, 1 << 40),
            ("region_bytes", self.region_bytes, 1 << 32),
        ] {
            if v > cap {
                return Err(BuildError::new(format!(
                    "{ctx}: {field} {v} exceeds the {cap} cap"
                )));
            }
        }
        self.children.validate(&ctx)
    }
}

/// Full specification of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name.
    pub name: String,
    /// Deterministic seed for parameter draws and executor jitter.
    pub seed: u64,
    /// Outer iterations of the whole stage sequence (phase recurrences).
    pub outer_iters: u32,
    /// The stage sequence.
    pub stages: Vec<StageSpec>,
}

impl WorkloadSpec {
    /// Expected total dynamic instructions (mean estimate; saturating).
    pub fn expected_total(&self) -> u64 {
        (self.outer_iters as u64).saturating_mul(
            self.stages
                .iter()
                .map(|s| (s.calls_per_outer as u64).saturating_mul(s.expected_size()))
                .fold(0u64, u64::saturating_add),
        )
    }

    /// Checks the spec for degenerate parameters *before* any RNG draw, so
    /// a malformed spec (reversed range, percentage over 100, zero counts)
    /// surfaces as a typed [`BuildError`] instead of a panic deep inside
    /// [`build_spec`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] naming the offending stage and field.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.name.is_empty() {
            return Err(BuildError::new("workload name is empty"));
        }
        if self.outer_iters == 0 {
            return Err(BuildError::new("outer_iters is zero"));
        }
        if self.outer_iters > 1_000_000 {
            return Err(BuildError::new(format!(
                "outer_iters {} exceeds the 1000000 cap",
                self.outer_iters
            )));
        }
        if self.stages.is_empty() {
            return Err(BuildError::new("spec has no stages"));
        }
        if self.stages.len() > 64 {
            return Err(BuildError::new(format!(
                "{} stages exceed the 64-stage cap",
                self.stages.len()
            )));
        }
        for stage in &self.stages {
            stage.validate()?;
        }
        Ok(())
    }

    /// The same workload with `factor`× the outer iterations — the stress
    /// tier runs presets at 100× their committed length this way, keeping
    /// per-invocation structure (and therefore hotspot sizes) identical.
    #[must_use]
    pub fn scaled(&self, factor: u32) -> WorkloadSpec {
        let mut scaled = self.clone();
        scaled.outer_iters = scaled.outer_iters.saturating_mul(factor.max(1));
        scaled
    }

    /// Builds the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the spec fails [`WorkloadSpec::validate`]
    /// or the generated program fails validation (which would indicate an
    /// internal bug or a degenerate spec, e.g. a stage with zero children
    /// and zero stream instructions).
    pub fn build(&self) -> Result<Program, BuildError> {
        build_spec(self)
    }
}

/// Draws log-uniformly from `[lo, hi]`.
pub(crate) fn log_uniform(rng: &mut DetRng, lo: u64, hi: u64) -> u64 {
    if lo >= hi {
        return lo;
    }
    let llo = (lo as f64).ln();
    let lhi = (hi as f64).ln();
    let u = rng.below(1 << 24) as f64 / (1u64 << 24) as f64;
    (llo + u * (lhi - llo)).exp() as u64
}

/// Builds a [`Program`] from a [`WorkloadSpec`].
///
/// # Errors
///
/// Returns [`BuildError`] on validation failure; well-formed specs always
/// build.
pub fn build_spec(spec: &WorkloadSpec) -> Result<Program, BuildError> {
    spec.validate()?;
    let mut b = ProgramBuilder::new(spec.name.clone(), spec.seed);
    let rng = DetRng::new(spec.seed ^ 0xACE0_ACE0);
    let mut main_body: Vec<Stmt> = Vec::new();
    let mut shared_region: Option<(u64, u64)> = None;

    for (si, stage) in spec.stages.iter().enumerate() {
        let srng = &mut rng.fork(si as u64 + 1);
        let cspec = &stage.children;

        // Build the child (and leaf) methods of this stage.
        let mut child_ids: Vec<MethodId> = Vec::new();
        for ci in 0..cspec.total() {
            let crng = &mut srng.fork(100 + ci as u64);
            let child_size = crng.range(cspec.instr.0, cspec.instr.1);
            let ws_range = if ci < cspec.count {
                cspec.ws_bytes
            } else {
                cspec.large_ws_bytes
            };
            let ws = log_uniform(crng, ws_range.0, ws_range.1).max(256);
            let region = b.alloc_region(ws);
            let walk = if crng.chance(cspec.random_pct) {
                Walk::Random
            } else {
                Walk::Skewed {
                    hot_bytes_pct: 25,
                    hot_refs_pct: 75,
                }
            };
            let child_pat = b.add_pattern(MemPattern {
                base: region,
                working_set: ws,
                walk,
                refs_per_kinstr: cspec.refs_per_kinstr,
                store_pct: 15 + crng.below(20) as u32,
                taken_pct: cspec.taken_pct,
                block_len: 32 + 16 * crng.below(3) as u32,
                reset_on_entry: true,
            });

            // Leaves: ~70% of the child's work.
            let nleaves = crng.range(cspec.leaves.0 as u64, cspec.leaves.1 as u64) as u32;
            let mut leaf_ids = Vec::new();
            let mut leaf_total = 0u64;
            for li in 0..nleaves {
                let lrng = &mut crng.fork(200 + li as u64);
                let leaf_size = lrng.range(cspec.leaf_instr.0, cspec.leaf_instr.1);
                let lws = log_uniform(lrng, cspec.leaf_ws_bytes.0, cspec.leaf_ws_bytes.1).max(128);
                let lbase = b.alloc_region(lws);
                let leaf_pat = b.add_pattern(MemPattern {
                    base: lbase,
                    working_set: lws,
                    walk: Walk::Strided { stride: 8 },
                    refs_per_kinstr: cspec.refs_per_kinstr,
                    store_pct: 20,
                    taken_pct: cspec.taken_pct.min(97),
                    block_len: 24,
                    reset_on_entry: true,
                });
                let leaf = b.add_method(
                    format!("{}::c{}::leaf{}", stage.name, ci, li),
                    vec![Stmt::Compute {
                        ninstr: leaf_size,
                        pattern: leaf_pat,
                    }],
                );
                b.own_pattern(leaf, leaf_pat);
                leaf_ids.push(leaf);
                leaf_total += leaf_size;
            }

            // Leaves are invoked in back-to-back pairs (like every hotspot
            // here) so their tuning trials can measure steady behavior.
            let leaf_share = child_size * 7 / 10;
            let rounds = if leaf_total > 0 {
                (leaf_share / (2 * leaf_total)).max(1) as u32
            } else {
                0
            };
            let own = child_size
                .saturating_sub(rounds as u64 * 2 * leaf_total)
                .max(8);
            // The kernel's own computation lives in `work` sub-methods —
            // one more level of hotspot nesting, sized for the instruction
            // window's class when the three-CU extension is enabled.
            let quarter = (own / 4).max(2);
            let work_in = b.add_method(
                format!("{}::child{}::work_in", stage.name, ci),
                vec![Stmt::Compute {
                    ninstr: quarter,
                    pattern: child_pat,
                }],
            );
            let work_out = b.add_method(
                format!("{}::child{}::work_out", stage.name, ci),
                vec![Stmt::Compute {
                    ninstr: (own - 2 * quarter).max(2) / 2,
                    pattern: child_pat,
                }],
            );

            let mut body = vec![Stmt::Call {
                callee: work_in,
                count: 2,
            }];
            if rounds > 0 && !leaf_ids.is_empty() {
                body.push(Stmt::Loop {
                    count: rounds,
                    body: leaf_ids
                        .iter()
                        .map(|&l| Stmt::Call {
                            callee: l,
                            count: 2,
                        })
                        .collect(),
                });
            }
            body.push(Stmt::Call {
                callee: work_out,
                count: 2,
            });
            let child = b.add_method(format!("{}::child{}", stage.name, ci), body);
            b.own_pattern(child, child_pat);
            child_ids.push(child);
        }

        // The stage's own streaming pattern (possibly over a shared region).
        let (region, region_bytes) = if stage.shared_region {
            match shared_region {
                Some(r) => r,
                None => {
                    let r = (b.alloc_region(stage.region_bytes), stage.region_bytes);
                    shared_region = Some(r);
                    r
                }
            }
        } else {
            let r = (b.alloc_region(stage.region_bytes), stage.region_bytes);
            shared_region = Some(r);
            r
        };
        let stream_pat = b.add_pattern(MemPattern {
            base: region,
            working_set: region_bytes,
            walk: Walk::Streaming { stride: 24 },
            refs_per_kinstr: 280,
            store_pct: 20,
            taken_pct: cspec.taken_pct,
            block_len: 56,
            reset_on_entry: false,
        });

        let inner_body: Vec<Stmt> = child_ids
            .iter()
            .map(|&c| Stmt::Call {
                callee: c,
                count: stage.child_calls,
            })
            .collect();

        // The stage's streaming work lives in its own methods, sized like
        // the kernels: they are L1D hotspots too, so the L1D is adapted
        // for the stream (which usually wants it large or does not care)
        // rather than inheriting whatever the last kernel selected.
        // Like the kernels, the scans are invoked in back-to-back pairs so
        // their tuning trials can apply a configuration on one invocation
        // and measure its steady behavior on the next.
        let pre = (stage.stream_instr / 5).max(1);
        let post = (stage.stream_instr * 3 / 10).max(1);
        let scan_in = b.add_method(
            format!("{}::scan_in", stage.name),
            vec![Stmt::Compute {
                ninstr: pre,
                pattern: stream_pat,
            }],
        );
        let scan_out = b.add_method(
            format!("{}::scan_out", stage.name),
            vec![Stmt::Compute {
                ninstr: post,
                pattern: stream_pat,
            }],
        );

        if stage.flat {
            // Inline into main: kernels and scans adapt the L1D, but no
            // method wraps the stage, so there is no L2 hotspot here.
            main_body.push(Stmt::Call {
                callee: scan_in,
                count: 2,
            });
            main_body.push(Stmt::Loop {
                count: stage.calls_per_outer * stage.inner_iters,
                body: inner_body,
            });
            main_body.push(Stmt::Call {
                callee: scan_out,
                count: 2,
            });
        } else {
            let body = vec![
                Stmt::Call {
                    callee: scan_in,
                    count: 2,
                },
                Stmt::Loop {
                    count: stage.inner_iters,
                    body: inner_body,
                },
                Stmt::Call {
                    callee: scan_out,
                    count: 2,
                },
            ];
            let stage_m = b.add_method(format!("stage::{}", stage.name), body);
            main_body.push(Stmt::Call {
                callee: stage_m,
                count: stage.calls_per_outer,
            });
        }
    }

    let main = b.add_method(
        "main",
        vec![Stmt::Loop {
            count: spec.outer_iters,
            body: main_body,
        }],
    );
    b.entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny".into(),
            seed: 7,
            outer_iters: 1,
            stages: vec![StageSpec::new("only")],
        }
    }

    #[test]
    fn well_formed_spec_builds() {
        let p = tiny_spec().build().unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn reversed_range_is_a_typed_error_not_a_panic() {
        let mut spec = tiny_spec();
        spec.stages[0].children.leaf_instr = (14_000, 6_000);
        let err = spec.build().unwrap_err();
        assert!(err.to_string().contains("leaf_instr"), "{err}");
    }

    #[test]
    fn zero_outer_iters_rejected() {
        let mut spec = tiny_spec();
        spec.outer_iters = 0;
        assert!(spec.build().is_err());
    }

    #[test]
    fn over_100_percentage_rejected() {
        let mut spec = tiny_spec();
        spec.stages[0].children.random_pct = 120;
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("random_pct"), "{err}");
    }

    #[test]
    fn scaled_multiplies_outer_iters_only() {
        let spec = tiny_spec();
        let big = spec.scaled(100);
        assert_eq!(big.outer_iters, spec.outer_iters * 100);
        assert_eq!(big.stages, spec.stages);
        assert_eq!(big.expected_total(), spec.expected_total() * 100);
    }
}
