//! # ace-workloads — synthetic SPECjvm98-like workloads
//!
//! SPECjvm98 under Jikes RVM is the workload the paper evaluates; neither
//! is runnable in this environment, so this crate generates synthetic
//! programs with the same *structure*: methods nested three levels deep
//! (stages → kernels → leaves), parameterized memory working sets, branch
//! predictability, and deterministic per-invocation jitter. The programs
//! execute into the [`ace_sim`] block-stream model and expose the method
//! enter/exit events a dynamic optimization system instruments.
//!
//! * [`ProgramBuilder`] — build custom programs statement by statement.
//! * [`WorkloadSpec`]/[`StageSpec`]/[`ChildSpec`] — the serde-able
//!   declarative template every workload is expressed in.
//! * [`preset`]/[`all_presets`] — the seven calibrated stand-ins for
//!   compress, db, jack, javac, jess, mpegaudio, and mtrt, committed as
//!   spec JSON under `presets/`.
//! * [`WorkloadRegistry`] — resolve a workload by name *or* spec-file path.
//! * [`gen`] — sample the spec parameter space randomly ([`GenParams`]).
//! * [`minimize`] — shrink a failing spec to a minimal reproducer.
//! * [`Executor`] — runs a program, yielding [`Step`] events and blocks.
//!
//! ## Example
//!
//! ```
//! use ace_workloads::{preset, Executor, Step};
//! use ace_sim::Block;
//!
//! let program = preset("compress").unwrap();
//! let mut exec = Executor::new(&program);
//! exec.set_instruction_limit(100_000);
//! let mut buf = Block::default();
//! let mut blocks = 0u64;
//! loop {
//!     match exec.step(&mut buf) {
//!         Step::Block => blocks += 1,
//!         Step::Done => break,
//!         _ => {}
//!     }
//! }
//! assert!(blocks > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod exec;
mod generate;
mod ir;
mod minimize;
mod pattern;
mod presets;
mod registry;
mod rng;
mod spec;
mod threads;

pub use builder::{BuildError, ProgramBuilder};
pub use exec::{Executor, Step, MAX_CALL_DEPTH, MAX_LOOP_DEPTH, WALK_KIND_NAMES};
pub use generate::{gen, GenParams};
pub use ir::{Method, MethodId, Op, Program, Stmt};
pub use minimize::{minimize, MinimizeOutcome};
pub use pattern::{MemPattern, PatternCursor, PatternId, Walk};
pub use presets::{all_presets, mtrt_threaded, preset, preset_spec, PRESET_NAMES};
pub use registry::{load_spec_file, WorkloadError, WorkloadRegistry};
pub use rng::DetRng;
pub use spec::{build_spec, ChildSpec, StageSpec, WorkloadSpec};
pub use threads::{MtStep, ThreadId, ThreadedExecutor};
