//! Randomized workload generation over the [`WorkloadSpec`] parameter
//! space.
//!
//! [`gen`] samples the same template the presets are written in — stages,
//! child kernel populations, leaves, working-set classes — from documented
//! parameter windows ([`GenParams`]). The presets are seven fixed points in
//! this space; the generator is how scheme/CU/fleet claims are tested
//! *across* the space (phase structure, nesting, drift, churn) instead of
//! only at those points. Generation is deterministic: `gen(seed, params)`
//! always returns the same spec, and the spec's own `seed` is derived from
//! the generation seed, so a corpus is reproducible from the seed list
//! alone.
//!
//! Every parameter window is sanitized before drawing (reversed windows
//! are swapped, percentages clamped to 100, counts clamped to the caps in
//! [`WorkloadSpec::validate`]), so `gen` returns a *valid* spec for any
//! `GenParams` — it never panics and its output always builds.

use crate::rng::DetRng;
use crate::spec::{ChildSpec, StageSpec, WorkloadSpec};

/// Parameter windows for [`gen`]. Each `(lo, hi)` is an inclusive window a
/// per-workload value (or sub-window) is drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Stage count window. Default `(1, 4)`; clamped to `1..=16`.
    pub stages: (u32, u32),
    /// Percent chance a stage is *flat* (inlined into `main`, no L2
    /// hotspot). Default `25`.
    pub flat_pct: u32,
    /// Percent chance a non-first stage streams the shared region instead
    /// of a fresh one. Default `60`.
    pub shared_region_pct: u32,
    /// Consecutive stage invocations per outer iteration. Default `(1, 6)`.
    pub calls_per_outer: (u32, u32),
    /// Rounds over the child population per stage invocation. Default
    /// `(1, 3)`.
    pub inner_iters: (u32, u32),
    /// Back-to-back calls of each child per round. Default `(1, 3)`.
    pub child_calls: (u32, u32),
    /// Small-class children per stage. Default `(2, 5)`; clamped to `0..=64`.
    pub children: (u32, u32),
    /// Large-class children per stage. Default `(0, 2)`; clamped to `0..=8`.
    pub large_children: (u32, u32),
    /// Child per-invocation size window (instructions); each stage draws an
    /// ordered sub-window. Default `(60_000, 400_000)` — the L1D-hotspot
    /// band the presets use.
    pub child_instr: (u64, u64),
    /// Small-class working-set window (bytes). Default `(1 KiB, 12 KiB)`.
    pub ws_bytes: (u64, u64),
    /// Large-class working-set window (bytes). Default `(8 KiB, 28 KiB)`.
    pub large_ws_bytes: (u64, u64),
    /// Working-set churn: window for the percent of children walking their
    /// set uniformly at random (the presets range 5–50). Default `(0, 60)`.
    pub churn_pct: (u32, u32),
    /// Branch taken-probability window (percent). Default `(80, 97)`.
    pub taken_pct: (u32, u32),
    /// Memory references per 1000 instructions. Default `(200, 400)`.
    pub refs_per_kinstr: (u32, u32),
    /// Leaves per child. Default `(0, 4)`.
    pub leaves: (u32, u32),
    /// Leaf per-invocation size window (instructions). Default
    /// `(2_000, 15_000)`.
    pub leaf_instr: (u64, u64),
    /// Leaf working-set window (bytes). Default `(128, 2_048)`.
    pub leaf_ws_bytes: (u64, u64),
    /// Stage streaming computation per invocation (instructions). Default
    /// `(100_000, 300_000)`.
    pub stream_instr: (u64, u64),
    /// Streamed region size window (bytes) — the L2 footprint. Default
    /// `(16 KiB, 512 KiB)`.
    pub region_bytes: (u64, u64),
    /// Cross-stage drift: each successive stage's working-set and region
    /// windows are scaled by a factor drawn from `±drift_pct` percent,
    /// modeling phase-to-phase footprint drift. `0` makes all stages draw
    /// from identical windows. Default `30`.
    pub drift_pct: u32,
    /// Expected-total-instructions target window; `outer_iters` is derived
    /// as `target / per_outer_work` (so one outer pass larger than the
    /// target hi still yields `outer_iters = 1`). Default `(4 M, 40 M)` —
    /// big enough to span several sampling intervals, small enough that a
    /// corpus of dozens runs in CI.
    pub target_total: (u64, u64),
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            stages: (1, 4),
            flat_pct: 25,
            shared_region_pct: 60,
            calls_per_outer: (1, 6),
            inner_iters: (1, 3),
            child_calls: (1, 3),
            children: (2, 5),
            large_children: (0, 2),
            child_instr: (60_000, 400_000),
            ws_bytes: (1 << 10, 12 << 10),
            large_ws_bytes: (8 << 10, 28 << 10),
            churn_pct: (0, 60),
            taken_pct: (80, 97),
            refs_per_kinstr: (200, 400),
            leaves: (0, 4),
            leaf_instr: (2_000, 15_000),
            leaf_ws_bytes: (128, 2_048),
            stream_instr: (100_000, 300_000),
            region_bytes: (16 << 10, 512 << 10),
            drift_pct: 30,
            target_total: (4_000_000, 40_000_000),
        }
    }
}

/// An ordered, clamped copy of a window.
fn window_u64(w: (u64, u64), min: u64, max: u64) -> (u64, u64) {
    let lo = w.0.min(w.1).clamp(min, max);
    let hi = w.0.max(w.1).clamp(min, max);
    (lo, hi)
}

fn window_u32(w: (u32, u32), min: u32, max: u32) -> (u32, u32) {
    let lo = w.0.min(w.1).clamp(min, max);
    let hi = w.0.max(w.1).clamp(min, max);
    (lo, hi)
}

/// Draws a value from a `u32` window.
fn draw_u32(rng: &mut DetRng, w: (u32, u32)) -> u32 {
    rng.range(w.0 as u64, w.1 as u64) as u32
}

/// Draws an ordered sub-window of `w`: two independent draws, sorted. A
/// stage's children then draw per-child values from the sub-window, so
/// stages differ in *where* they sit in the space, not only per-child
/// noise.
fn sub_window(rng: &mut DetRng, w: (u64, u64)) -> (u64, u64) {
    let a = rng.range(w.0, w.1);
    let b = rng.range(w.0, w.1);
    (a.min(b), a.max(b))
}

/// Scales a window by `pct` percent, keeping it within `[min, max]`.
fn scale_window(w: (u64, u64), pct: u64, min: u64, max: u64) -> (u64, u64) {
    let lo = (w.0 * pct / 100).clamp(min, max);
    let hi = (w.1 * pct / 100).clamp(min, max);
    (lo.min(hi), lo.max(hi))
}

/// Generates a workload spec from `seed` and the given parameter windows.
///
/// The spec is named `gen-<seed as 16 hex digits>`, validates, and builds
/// for *any* `params` (windows are sanitized first — see the module docs).
///
/// # Examples
///
/// ```
/// use ace_workloads::{gen, GenParams};
///
/// let spec = gen(0x5EED, &GenParams::default());
/// assert_eq!(spec.name, "gen-0000000000005eed");
/// assert_eq!(spec, gen(0x5EED, &GenParams::default()));
/// let program = spec.build().unwrap();
/// program.validate().unwrap();
/// ```
pub fn gen(seed: u64, params: &GenParams) -> WorkloadSpec {
    let p = params;
    let stages_w = window_u32(p.stages, 1, 16);
    let children_w = window_u32(p.children, 0, 64);
    let large_w = window_u32(p.large_children, 0, 8);
    let calls_w = window_u32(p.calls_per_outer, 1, 16);
    let inner_w = window_u32(p.inner_iters, 1, 8);
    let ccalls_w = window_u32(p.child_calls, 1, 8);
    let churn_w = window_u32(p.churn_pct, 0, 100);
    let taken_w = window_u32(p.taken_pct, 0, 100);
    let refs_w = window_u32(p.refs_per_kinstr, 1, 1000);
    let leaves_w = window_u32(p.leaves, 0, 8);
    let instr_w = window_u64(p.child_instr, 1_000, 4_000_000);
    let leaf_instr_w = window_u64(p.leaf_instr, 100, 100_000);
    let leaf_ws_w = window_u64(p.leaf_ws_bytes, 64, 64 << 10);
    let stream_w = window_u64(p.stream_instr, 1_000, 4_000_000);
    let target_w = window_u64(p.target_total, 100_000, 4_000_000_000);
    let flat_pct = p.flat_pct.min(100);
    let shared_pct = p.shared_region_pct.min(100);
    let drift = p.drift_pct.min(90) as u64;

    let mut rng = DetRng::new(seed ^ 0x6E5E_ACE0_6E5E_ACE0);
    let nstages = draw_u32(&mut rng, stages_w);

    // Drift is a multiplicative random walk over the footprint windows:
    // stage i draws from the walked copy, so consecutive stages are
    // similar for small drift and unrelated for large.
    let mut ws_w = window_u64(p.ws_bytes, 128, 1 << 24);
    let mut lws_w = window_u64(p.large_ws_bytes, 256, 1 << 26);
    let mut region_w = window_u64(p.region_bytes, 4 << 10, 8 << 20);

    let mut stages = Vec::with_capacity(nstages as usize);
    for si in 0..nstages {
        let srng = &mut rng.fork(1000 + si as u64);
        if si > 0 && drift > 0 {
            let pct = srng.range(100 - drift, 100 + drift);
            ws_w = scale_window(ws_w, pct, 128, 1 << 24);
            lws_w = scale_window(lws_w, pct, 256, 1 << 26);
            region_w = scale_window(region_w, pct, 4 << 10, 8 << 20);
        }
        let mut children = ChildSpec {
            count: draw_u32(srng, children_w),
            count_large: draw_u32(srng, large_w),
            instr: sub_window(srng, instr_w),
            ws_bytes: sub_window(srng, ws_w),
            large_ws_bytes: sub_window(srng, lws_w),
            random_pct: draw_u32(srng, churn_w),
            leaves: {
                let (a, b) = (draw_u32(srng, leaves_w), draw_u32(srng, leaves_w));
                (a.min(b), a.max(b))
            },
            leaf_instr: sub_window(srng, leaf_instr_w),
            leaf_ws_bytes: sub_window(srng, leaf_ws_w),
            taken_pct: draw_u32(srng, taken_w),
            refs_per_kinstr: draw_u32(srng, refs_w),
        };
        // A stage with no children at all does only streaming work; keep
        // at least one kernel so every stage has an L1D hotspot.
        if children.total() == 0 {
            children.count = 1;
        }
        stages.push(StageSpec {
            name: format!("s{si}"),
            calls_per_outer: draw_u32(srng, calls_w),
            inner_iters: draw_u32(srng, inner_w),
            child_calls: draw_u32(srng, ccalls_w),
            stream_instr: srng.range(stream_w.0, stream_w.1),
            region_bytes: srng.range(region_w.0, region_w.1),
            flat: srng.chance(flat_pct),
            shared_region: si > 0 && srng.chance(shared_pct),
            children,
        });
    }

    let mut spec = WorkloadSpec {
        name: format!("gen-{seed:016x}"),
        seed: seed ^ 0x9E37_79B9_7F4A_7C15,
        outer_iters: 1,
        stages,
    };
    // Derive outer_iters from the instruction budget: pick a target inside
    // the window, then repeat the stage sequence enough times to reach it.
    let per_outer = spec.expected_total().max(1);
    let target = rng.range(target_w.0, target_w.1);
    spec.outer_iters = (target / per_outer).clamp(1, 10_000) as u32;

    debug_assert!(spec.validate().is_ok(), "gen produced an invalid spec");
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = GenParams::default();
        assert_eq!(gen(1, &p), gen(1, &p));
        assert_ne!(gen(1, &p), gen(2, &p));
    }

    #[test]
    fn default_corpus_validates_and_builds() {
        let p = GenParams::default();
        for seed in 0..32u64 {
            let spec = gen(seed, &p);
            spec.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let program = spec.build().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            program.validate().unwrap();
        }
    }

    #[test]
    fn totals_track_the_target_window() {
        let p = GenParams::default();
        for seed in 0..32u64 {
            let spec = gen(seed, &p);
            let est = spec.expected_total();
            assert!(
                est >= p.target_total.0 / 2,
                "seed {seed}: total {est} far below target"
            );
            // A single outer pass can overshoot the window (documented);
            // whenever repetition was derived, the ceiling holds.
            if spec.outer_iters > 1 {
                assert!(
                    est <= p.target_total.1,
                    "seed {seed}: total {est} above target with {} outer iters",
                    spec.outer_iters
                );
            }
        }
    }

    #[test]
    fn degenerate_params_are_sanitized() {
        // Reversed windows, percentages over 100, zero everything: gen
        // must still return a valid, buildable spec.
        let p = GenParams {
            stages: (9, 2),
            flat_pct: 400,
            shared_region_pct: 999,
            calls_per_outer: (0, 0),
            children: (0, 0),
            large_children: (0, 0),
            child_instr: (400_000, 60_000),
            churn_pct: (90, 10),
            taken_pct: (200, 150),
            refs_per_kinstr: (0, 0),
            target_total: (0, 0),
            ..GenParams::default()
        };
        for seed in [0u64, 7, 0xFFFF_FFFF_FFFF_FFFF] {
            let spec = gen(seed, &p);
            spec.validate().unwrap();
            spec.build().unwrap();
        }
    }

    #[test]
    fn drift_zero_keeps_stage_windows_identical() {
        let p = GenParams {
            drift_pct: 0,
            stages: (4, 4),
            ws_bytes: (4096, 4096),
            large_ws_bytes: (16_384, 16_384),
            region_bytes: (65_536, 65_536),
            ..GenParams::default()
        };
        let spec = gen(3, &p);
        for s in &spec.stages {
            assert_eq!(s.children.ws_bytes, (4096, 4096));
            assert_eq!(s.region_bytes, 65_536);
        }
    }
}
