//! Memory and branch behavior descriptors.
//!
//! Every `Compute` statement references a [`MemPattern`] describing how the
//! computation touches memory and how predictable its branches are. The
//! pattern — not an ISA — is what determines cache/TLB/predictor behavior,
//! which is all the evaluation observes.

use serde::{Deserialize, Serialize};

/// Identifies a [`MemPattern`] within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PatternId(pub u32);

/// How the address cursor walks the pattern's working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Walk {
    /// Wraps around the working set with a fixed stride; high spatial
    /// locality, strong reuse once the set fits in cache.
    Strided {
        /// Bytes between consecutive accesses.
        stride: u32,
    },
    /// Uniformly random within the working set; reuse only if the whole set
    /// fits in cache.
    Random,
    /// Advances monotonically through a large region without wrap —
    /// streaming behavior with no temporal reuse.
    Streaming {
        /// Bytes between consecutive accesses.
        stride: u32,
    },
    /// Skewed random access: most references go to a hot core at the start
    /// of the working set, the rest uniformly over the whole set. This is
    /// the graceful, Zipf-like locality of real data structures — capacity
    /// misses grow smoothly as the cache shrinks below the working set.
    Skewed {
        /// Percent of the working set forming the hot core.
        hot_bytes_pct: u32,
        /// Percent of references that hit the hot core.
        hot_refs_pct: u32,
    },
}

/// A parameterized memory/branch behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemPattern {
    /// Base byte address of the pattern's data region.
    pub base: u64,
    /// Bytes of the region the walk covers (the working set for
    /// `Strided`/`Random`; the full region for `Streaming`).
    pub working_set: u64,
    /// How addresses advance.
    pub walk: Walk,
    /// Memory references per 1000 instructions (e.g. 300 = 30% mem ops).
    pub refs_per_kinstr: u32,
    /// Percent of references that are stores.
    pub store_pct: u32,
    /// Percent probability that the terminating branch of a block is taken.
    /// Values near 0 or 100 are highly predictable; near 50 defeats the
    /// predictor.
    pub taken_pct: u32,
    /// Mean block length in instructions (jittered ±50% per block).
    pub block_len: u32,
    /// Reset the walk cursor each time the owning method is entered
    /// (per-invocation temporal reuse) instead of continuing where the last
    /// invocation stopped.
    pub reset_on_entry: bool,
}

impl MemPattern {
    /// A resident working-set pattern: strided walk over `working_set`
    /// bytes starting at `base`, 30% memory ops, mostly-taken branches.
    pub fn resident(base: u64, working_set: u64) -> MemPattern {
        MemPattern {
            base,
            working_set,
            walk: Walk::Strided { stride: 24 },
            refs_per_kinstr: 300,
            store_pct: 25,
            taken_pct: 92,
            block_len: 48,
            reset_on_entry: true,
        }
    }

    /// A streaming pattern over a large region (no temporal reuse).
    pub fn streaming(base: u64, region: u64) -> MemPattern {
        MemPattern {
            base,
            working_set: region,
            walk: Walk::Streaming { stride: 32 },
            refs_per_kinstr: 250,
            store_pct: 20,
            taken_pct: 95,
            block_len: 64,
            reset_on_entry: false,
        }
    }

    /// A pointer-chasing style pattern: random within `working_set`.
    pub fn random(base: u64, working_set: u64) -> MemPattern {
        MemPattern {
            base,
            working_set,
            walk: Walk::Random,
            refs_per_kinstr: 350,
            store_pct: 15,
            taken_pct: 70,
            block_len: 32,
            reset_on_entry: true,
        }
    }

    /// A skewed (hot-core) pattern: 75% of references to the first 25% of
    /// `working_set`.
    pub fn skewed(base: u64, working_set: u64) -> MemPattern {
        MemPattern {
            base,
            working_set,
            walk: Walk::Skewed {
                hot_bytes_pct: 25,
                hot_refs_pct: 75,
            },
            refs_per_kinstr: 300,
            store_pct: 20,
            taken_pct: 90,
            block_len: 48,
            reset_on_entry: true,
        }
    }

    /// Validates the pattern's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid field.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.working_set == 0 {
            return Err("working set must be nonzero");
        }
        if self.refs_per_kinstr > 1000 {
            return Err("at most one memory reference per instruction");
        }
        if self.store_pct > 100 || self.taken_pct > 100 {
            return Err("percentages must be at most 100");
        }
        if self.block_len == 0 {
            return Err("block length must be nonzero");
        }
        match self.walk {
            Walk::Strided { stride } | Walk::Streaming { stride } if stride == 0 => {
                Err("stride must be nonzero")
            }
            Walk::Skewed {
                hot_bytes_pct,
                hot_refs_pct,
            } if hot_bytes_pct == 0 || hot_bytes_pct > 100 || hot_refs_pct > 100 => {
                Err("skew percentages must be in range")
            }
            _ => Ok(()),
        }
    }
}

/// Mutable per-pattern cursor state owned by the executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct PatternCursor {
    /// Sequential position within the working set (bytes).
    pub pos: u64,
    /// Fractional memory references not yet emitted (milli-refs).
    pub ref_residue: u64,
}

impl PatternCursor {
    /// Resets the walk position (used for `reset_on_entry` patterns).
    pub fn reset(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        MemPattern::resident(0x1000, 4096).validate().unwrap();
        MemPattern::streaming(0x1000, 1 << 20).validate().unwrap();
        MemPattern::random(0x1000, 8192).validate().unwrap();
    }

    #[test]
    fn invalid_patterns_rejected() {
        let mut p = MemPattern::resident(0, 4096);
        p.working_set = 0;
        assert_eq!(p.validate(), Err("working set must be nonzero"));

        let mut p = MemPattern::resident(0, 4096);
        p.refs_per_kinstr = 1500;
        assert!(p.validate().is_err());

        let mut p = MemPattern::resident(0, 4096);
        p.taken_pct = 101;
        assert!(p.validate().is_err());

        let mut p = MemPattern::resident(0, 4096);
        p.walk = Walk::Strided { stride: 0 };
        assert!(p.validate().is_err());

        let mut p = MemPattern::resident(0, 4096);
        p.block_len = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn cursor_reset() {
        let mut c = PatternCursor {
            pos: 100,
            ref_residue: 7,
        };
        c.reset();
        assert_eq!(c.pos, 0);
        assert_eq!(c.ref_residue, 7, "residue survives reset");
    }
}
