//! Ergonomic construction of synthetic programs.
//!
//! [`ProgramBuilder`] is the low-level builder (add patterns and methods by
//! hand); [`crate::presets`] uses it to assemble the seven SPECjvm98-like
//! workloads, and downstream users can build custom programs for their own
//! experiments.

use crate::ir::{compile_body, Method, MethodId, Program, Stmt};
use crate::pattern::{MemPattern, PatternId};
use std::fmt;

/// Error produced when a built program fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    msg: String,
}

impl BuildError {
    /// A build error with the given message (crate-internal: spec
    /// validation reports degenerate parameters through the same type the
    /// builder uses for structural problems).
    pub(crate) fn new(msg: impl Into<String>) -> BuildError {
        BuildError { msg: msg.into() }
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program: {}", self.msg)
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Program`].
///
/// # Examples
///
/// ```
/// use ace_workloads::{ProgramBuilder, MemPattern, Stmt};
///
/// let mut b = ProgramBuilder::new("demo", 42);
/// let pat = b.add_pattern(MemPattern::resident(0x1_0000, 8 * 1024));
/// let leaf = b.add_method("kernel", vec![Stmt::Compute { ninstr: 5_000, pattern: pat }]);
/// let main = b.add_method("main", vec![Stmt::Call { callee: leaf, count: 100 }]);
/// let program = b.entry(main).build()?;
/// assert_eq!(program.static_size(main), 500_000);
/// # Ok::<(), ace_workloads::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    seed: u64,
    methods: Vec<Method>,
    bodies: Vec<Vec<Stmt>>,
    patterns: Vec<MemPattern>,
    owned: Vec<Vec<PatternId>>,
    entry: Option<MethodId>,
    next_code_pc: u64,
    /// Bump allocator for data regions handed out by `alloc_region`.
    next_data_addr: u64,
}

impl ProgramBuilder {
    /// Starts a program named `name` with RNG `seed` for executor jitter.
    pub fn new(name: impl Into<String>, seed: u64) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            seed,
            methods: Vec::new(),
            bodies: Vec::new(),
            patterns: Vec::new(),
            owned: Vec::new(),
            entry: None,
            // Code lives low, data high, so streams never alias code lines.
            next_code_pc: 0x0040_0000,
            next_data_addr: 0x1_0000_0000,
        }
    }

    /// Allocates a fresh data region of `bytes` bytes and returns its
    /// (64-byte-aligned) base address. Regions never overlap.
    ///
    /// Bases are deterministically scattered: real heaps do not hand out
    /// back-to-back allocations whose cache-set alignments tile perfectly,
    /// and perfectly sequential placement makes small cache configurations
    /// alias systematically instead of randomly.
    pub fn alloc_region(&mut self, bytes: u64) -> u64 {
        // Deterministic jitter over 0..8 KB in 64-byte steps.
        let mut h = self.next_data_addr ^ 0x9E37_79B9_7F4A_7C15;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let jitter = (h >> 17) & 0x1FC0; // 64-byte aligned, < 8 KB
        let base = self.next_data_addr + jitter;
        let aligned = bytes.div_ceil(4096).max(1) * 4096;
        // A guard page plus the jitter window keeps regions disjoint even
        // with stride overshoot.
        self.next_data_addr += aligned + jitter + 8192;
        base
    }

    /// Registers a memory pattern; returns its id.
    pub fn add_pattern(&mut self, pattern: MemPattern) -> PatternId {
        let id = PatternId(self.patterns.len() as u32);
        self.patterns.push(pattern);
        id
    }

    /// Registers a method with the given body; returns its id.
    ///
    /// The method's static code footprint defaults to one block per 400
    /// instructions of its *straight-line* computation, clamped to
    /// `[2, 12]` — hot compiled methods spend their time in a few blocks.
    /// Use [`ProgramBuilder::add_method_with_blocks`] for explicit control.
    pub fn add_method(&mut self, name: impl Into<String>, body: Vec<Stmt>) -> MethodId {
        let straight: u64 = body
            .iter()
            .map(|s| match s {
                Stmt::Compute { ninstr, .. } => *ninstr,
                _ => 0,
            })
            .sum();
        let blocks = (straight / 400).clamp(2, 12) as u32;
        self.add_method_with_blocks(name, body, blocks)
    }

    /// Registers a method with an explicit static block count.
    pub fn add_method_with_blocks(
        &mut self,
        name: impl Into<String>,
        body: Vec<Stmt>,
        code_blocks: u32,
    ) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        let code_pc = self.next_code_pc;
        self.next_code_pc += code_blocks.max(1) as u64 * 64 + 256;
        self.methods.push(Method {
            name: name.into(),
            code_pc,
            code_blocks: code_blocks.max(1),
            ops: Vec::new(),
        });
        self.bodies.push(body);
        self.owned.push(Vec::new());
        id
    }

    /// Declares that `method` owns `pattern`: if the pattern is flagged
    /// `reset_on_entry`, its cursor restarts whenever `method` is entered.
    pub fn own_pattern(&mut self, method: MethodId, pattern: PatternId) -> &mut Self {
        self.owned[method.0 as usize].push(pattern);
        self
    }

    /// Sets the entry method.
    pub fn entry(&mut self, entry: MethodId) -> &mut Self {
        self.entry = Some(entry);
        self
    }

    /// Compiles and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if no entry was set or validation fails
    /// (dangling method/pattern references, empty computes, …).
    pub fn build(&self) -> Result<Program, BuildError> {
        let entry = self.entry.ok_or_else(|| BuildError {
            msg: "no entry method".into(),
        })?;
        let mut methods = self.methods.clone();
        for (m, body) in methods.iter_mut().zip(&self.bodies) {
            let mut ops = Vec::new();
            compile_body(body, &mut ops);
            ops.push(crate::ir::Op::Return);
            m.ops = ops;
        }
        let program = Program::from_parts(
            self.name.clone(),
            methods,
            self.patterns.clone(),
            self.owned.clone(),
            entry,
            self.seed,
        );
        program.validate().map_err(|msg| BuildError { msg })?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_requires_entry() {
        let b = ProgramBuilder::new("t", 0);
        assert!(b.build().is_err());
    }

    #[test]
    fn regions_never_overlap() {
        let mut b = ProgramBuilder::new("t", 0);
        let r1 = b.alloc_region(100);
        let r2 = b.alloc_region(10_000);
        let r3 = b.alloc_region(1);
        assert!(r1 + 100 <= r2);
        assert!(r2 + 10_000 <= r3);
        assert_eq!(r1 % 64, 0, "line-aligned");
        assert_eq!(r2 % 64, 0);
    }

    #[test]
    fn code_pcs_distinct_per_method() {
        let mut b = ProgramBuilder::new("t", 0);
        let pat = b.add_pattern(MemPattern::resident(0, 64));
        let m1 = b.add_method(
            "a",
            vec![Stmt::Compute {
                ninstr: 500,
                pattern: pat,
            }],
        );
        let m2 = b.add_method(
            "b",
            vec![Stmt::Compute {
                ninstr: 500,
                pattern: pat,
            }],
        );
        let p = b.entry(m2).build().unwrap();
        let a = p.method(m1);
        let bm = p.method(m2);
        assert!(a.code_pc + a.code_blocks as u64 * 64 <= bm.code_pc);
    }

    #[test]
    fn dangling_callee_rejected() {
        let mut b = ProgramBuilder::new("t", 0);
        let m = b.add_method(
            "a",
            vec![Stmt::Call {
                callee: MethodId(99),
                count: 1,
            }],
        );
        let err = b.entry(m).build().unwrap_err();
        assert!(err.to_string().contains("bad callee"), "{err}");
    }

    #[test]
    fn owned_patterns_tracked() {
        let mut b = ProgramBuilder::new("t", 0);
        let pat = b.add_pattern(MemPattern::resident(0, 64));
        let m = b.add_method(
            "a",
            vec![Stmt::Compute {
                ninstr: 10,
                pattern: pat,
            }],
        );
        b.own_pattern(m, pat);
        let p = b.entry(m).build().unwrap();
        assert_eq!(p.owned_patterns(m), &[pat]);
    }

    #[test]
    fn default_block_count_scales_with_body() {
        let mut b = ProgramBuilder::new("t", 0);
        let pat = b.add_pattern(MemPattern::resident(0, 64));
        let tiny = b.add_method(
            "tiny",
            vec![Stmt::Compute {
                ninstr: 10,
                pattern: pat,
            }],
        );
        let big = b.add_method(
            "big",
            vec![Stmt::Compute {
                ninstr: 100_000,
                pattern: pat,
            }],
        );
        let p = b.entry(big).build().unwrap();
        assert_eq!(p.method(tiny).code_blocks, 2);
        assert_eq!(p.method(big).code_blocks, 12, "clamped at 12");
    }
}
