//! Time-multiplexed multithreading.
//!
//! Dynamic SimpleScalar "implements support for … thread scheduling and
//! synchronization", and mtrt — the one multithreaded SPECjvm98 benchmark —
//! runs two render threads. This module provides the same coarse-grained
//! time multiplexing: several logical threads, each an [`Executor`] with
//! its own entry method and call stack, scheduled round-robin in fixed
//! instruction quanta over the one simulated core. Threads share the
//! address space (and so the caches), but their *method sets are
//! disjoint* — each thread enters the program at its own entry — which
//! keeps per-method runtime state (DO database entries, tuning state)
//! race-free by construction.

use crate::exec::{Executor, Step};
use crate::ir::MethodId;
use ace_sim::Block;
use serde::{Deserialize, Serialize};

/// Identifies one logical thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One step of a multithreaded execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtStep {
    /// The scheduler switched to this thread (also fired once per thread
    /// at startup, before its first event).
    Switch(ThreadId),
    /// `thread` entered a method.
    Enter(ThreadId, MethodId),
    /// `thread` exited a method.
    Exit(ThreadId, MethodId),
    /// `thread` produced a block into the caller's buffer.
    Block(ThreadId),
    /// All threads have finished.
    Done,
}

/// Round-robin time multiplexer over per-thread executors.
///
/// # Examples
///
/// ```
/// use ace_workloads::{preset, Executor, ThreadedExecutor, MtStep};
/// use ace_sim::Block;
///
/// let program = preset("check").unwrap();
/// // Two threads running the same entry with different seeds.
/// let threads = vec![
///     Executor::with_entry(&program, program.entry(), 1),
///     Executor::with_entry(&program, program.entry(), 2),
/// ];
/// let mut mt = ThreadedExecutor::new(threads, 50_000);
/// let mut buf = Block::default();
/// let mut blocks = 0;
/// loop {
///     match mt.step(&mut buf) {
///         MtStep::Block(_) => blocks += 1,
///         MtStep::Done => break,
///         _ => {}
///     }
/// }
/// assert!(blocks > 0);
/// ```
#[derive(Debug)]
pub struct ThreadedExecutor<'p> {
    threads: Vec<Executor<'p>>,
    quantum_instr: u64,
    current: usize,
    /// Instructions the current thread has executed in its quantum.
    used: u64,
    /// Whether the initial `Switch` for the current thread has been fired.
    announced: bool,
    finished: Vec<bool>,
    switches: u64,
}

impl<'p> ThreadedExecutor<'p> {
    /// Creates a multiplexer over `threads`, switching every
    /// `quantum_instr` instructions (at block granularity).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty or the quantum is zero.
    pub fn new(threads: Vec<Executor<'p>>, quantum_instr: u64) -> ThreadedExecutor<'p> {
        assert!(!threads.is_empty(), "need at least one thread");
        assert!(quantum_instr > 0, "quantum must be nonzero");
        let n = threads.len();
        ThreadedExecutor {
            threads,
            quantum_instr,
            current: 0,
            used: 0,
            announced: false,
            finished: vec![false; n],
            switches: 0,
        }
    }

    /// Number of logical threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Scheduler switches performed (excluding thread startup).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Total instructions emitted across all threads.
    pub fn emitted_instructions(&self) -> u64 {
        self.threads.iter().map(|t| t.emitted_instructions()).sum()
    }

    /// Per-walk-kind block counts summed across all threads
    /// (see [`Executor::walk_profile`]).
    pub fn walk_profile(&self) -> [u64; 4] {
        let mut total = [0u64; 4];
        for t in &self.threads {
            for (slot, n) in total.iter_mut().zip(t.walk_profile()) {
                *slot += n;
            }
        }
        total
    }

    /// Rotates to the next unfinished thread; returns `false` if none.
    fn rotate(&mut self) -> bool {
        let n = self.threads.len();
        for k in 1..=n {
            let cand = (self.current + k) % n;
            if !self.finished[cand] {
                if cand != self.current {
                    self.switches += 1;
                }
                self.current = cand;
                self.used = 0;
                self.announced = false;
                return true;
            }
        }
        false
    }

    /// Produces the next event; `out` is meaningful only for
    /// [`MtStep::Block`].
    pub fn step(&mut self, out: &mut Block) -> MtStep {
        loop {
            if self.finished.iter().all(|&f| f) {
                return MtStep::Done;
            }
            if self.finished[self.current] {
                if !self.rotate() {
                    return MtStep::Done;
                }
                continue;
            }
            if !self.announced {
                self.announced = true;
                return MtStep::Switch(ThreadId(self.current as u32));
            }
            if self.used >= self.quantum_instr {
                // Quantum expired: hand the core to the next thread.
                if self.rotate() {
                    continue;
                }
                // Only this thread remains; keep running it.
                self.used = 0;
            }
            let tid = ThreadId(self.current as u32);
            match self.threads[self.current].step(out) {
                Step::Block => {
                    self.used += out.ninstr as u64;
                    return MtStep::Block(tid);
                }
                Step::Enter(m) => return MtStep::Enter(tid, m),
                Step::Exit(m) => return MtStep::Exit(tid, m),
                Step::Done => {
                    self.finished[self.current] = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::{Program, Stmt};
    use crate::pattern::MemPattern;

    fn two_entry_program() -> (Program, MethodId, MethodId) {
        let mut b = ProgramBuilder::new("mt", 21);
        let r1 = b.alloc_region(4096);
        let p1 = b.add_pattern(MemPattern::resident(r1, 4096));
        let r2 = b.alloc_region(4096);
        let p2 = b.add_pattern(MemPattern::resident(r2, 4096));
        let work_a = b.add_method(
            "work_a",
            vec![Stmt::Compute {
                ninstr: 20_000,
                pattern: p1,
            }],
        );
        let main_a = b.add_method(
            "main_a",
            vec![Stmt::Call {
                callee: work_a,
                count: 10,
            }],
        );
        let work_b = b.add_method(
            "work_b",
            vec![Stmt::Compute {
                ninstr: 20_000,
                pattern: p2,
            }],
        );
        let main_b = b.add_method(
            "main_b",
            vec![Stmt::Call {
                callee: work_b,
                count: 10,
            }],
        );
        let program = b.entry(main_a).build().unwrap();
        (program, main_a, main_b)
    }

    #[test]
    fn interleaves_and_completes_both_threads() {
        let (program, ea, eb) = two_entry_program();
        let threads = vec![
            Executor::with_entry(&program, ea, 1),
            Executor::with_entry(&program, eb, 2),
        ];
        let mut mt = ThreadedExecutor::new(threads, 30_000);
        let mut buf = Block::default();
        let mut per_thread_instr = [0u64; 2];
        let mut per_thread_depth = [0i64; 2];
        let mut switch_seen = 0;
        loop {
            match mt.step(&mut buf) {
                MtStep::Block(t) => per_thread_instr[t.0 as usize] += buf.ninstr as u64,
                MtStep::Enter(t, _) => per_thread_depth[t.0 as usize] += 1,
                MtStep::Exit(t, _) => {
                    per_thread_depth[t.0 as usize] -= 1;
                    assert!(per_thread_depth[t.0 as usize] >= 0);
                }
                MtStep::Switch(_) => switch_seen += 1,
                MtStep::Done => break,
            }
        }
        assert_eq!(per_thread_depth, [0, 0], "per-thread nesting balanced");
        // Each thread's program is ~200K instructions.
        for (t, &instr) in per_thread_instr.iter().enumerate() {
            assert!(
                (150_000..260_000).contains(&instr),
                "thread {t} ran {instr} instructions"
            );
        }
        // ~400K total at 30K quanta: a dozen switches.
        assert!(mt.switches() >= 8, "switches {}", mt.switches());
        assert!(switch_seen >= mt.switches());
    }

    #[test]
    fn single_thread_degenerates_to_plain_execution() {
        let (program, ea, _) = two_entry_program();
        let solo = Executor::with_entry(&program, ea, 1).measure();

        let mut mt = ThreadedExecutor::new(vec![Executor::with_entry(&program, ea, 1)], 10_000);
        let mut buf = Block::default();
        let mut total = 0u64;
        loop {
            match mt.step(&mut buf) {
                MtStep::Block(_) => total += buf.ninstr as u64,
                MtStep::Done => break,
                _ => {}
            }
        }
        assert_eq!(total, solo, "one thread executes exactly the solo stream");
        assert_eq!(mt.switches(), 0);
    }

    #[test]
    fn uneven_thread_lengths_drain_cleanly() {
        let mut b = ProgramBuilder::new("uneven", 5);
        let r = b.alloc_region(1024);
        let p = b.add_pattern(MemPattern::resident(r, 1024));
        let short = b.add_method(
            "short",
            vec![Stmt::Compute {
                ninstr: 5_000,
                pattern: p,
            }],
        );
        let long = b.add_method(
            "long",
            vec![Stmt::Compute {
                ninstr: 500_000,
                pattern: p,
            }],
        );
        let program = b.entry(long).build().unwrap();
        let threads = vec![
            Executor::with_entry(&program, short, 1),
            Executor::with_entry(&program, long, 2),
        ];
        let mut mt = ThreadedExecutor::new(threads, 20_000);
        let mut buf = Block::default();
        let mut last_thread = None;
        loop {
            match mt.step(&mut buf) {
                MtStep::Block(t) => last_thread = Some(t),
                MtStep::Done => break,
                _ => {}
            }
        }
        assert_eq!(last_thread, Some(ThreadId(1)), "long thread finishes last");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_empty_thread_set() {
        let _ = ThreadedExecutor::new(Vec::new(), 1000);
    }
}
