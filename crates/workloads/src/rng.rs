//! A tiny, stable, deterministic PRNG.
//!
//! Workload generation must be bit-for-bit reproducible across runs,
//! platforms, and dependency upgrades — every table in EXPERIMENTS.md is
//! regenerated from seeds. We therefore use our own SplitMix64/xoshiro256++
//! implementation instead of an external crate whose stream might change
//! between versions.

/// xoshiro256++ seeded via SplitMix64.
///
/// # Examples
///
/// ```
/// use ace_workloads::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> DetRng {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (unbiased enough for workload synthesis;
    /// returns 0 when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift range reduction.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `pct`/100.
    pub fn chance(&mut self, pct: u32) -> bool {
        self.below(100) < pct as u64
    }

    /// A jittered value: `base` scaled uniformly within ±`pct`%.
    pub fn jitter(&mut self, base: u64, pct: u32) -> u64 {
        if base == 0 || pct == 0 {
            return base;
        }
        let span = base * pct as u64 / 100;
        let lo = base.saturating_sub(span).max(1);
        self.range(lo, base + span)
    }

    /// Derives an independent stream for a labeled sub-component.
    pub fn fork(&self, label: u64) -> DetRng {
        let mut sm = self.s[0] ^ self.s[2] ^ label.wrapping_mul(0x9E3779B97F4A7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        DetRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn range_inclusive() {
        let mut r = DetRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi, "both endpoints reachable");
    }

    #[test]
    fn chance_statistics() {
        let mut r = DetRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(30)).count();
        assert!((2600..3400).contains(&hits), "got {hits}");
    }

    #[test]
    fn jitter_brackets_base() {
        let mut r = DetRng::new(6);
        for _ in 0..500 {
            let v = r.jitter(1000, 20);
            assert!((800..=1200).contains(&v));
        }
        assert_eq!(r.jitter(0, 20), 0);
        assert_eq!(r.jitter(100, 0), 100);
    }

    #[test]
    fn fork_streams_are_independent() {
        let root = DetRng::new(9);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let mut same = 0;
        for _ in 0..64 {
            if a.next_u64() == b.next_u64() {
                same += 1;
            }
        }
        assert_eq!(same, 0);
        // Forks are reproducible.
        let mut a2 = root.fork(1);
        assert_eq!(DetRng::new(9).fork(1).next_u64(), a2.next_u64());
    }

    #[test]
    fn rough_uniformity() {
        let mut r = DetRng::new(11);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
