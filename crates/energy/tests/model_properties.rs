//! Property tests for the energy model: monotonicity in size, additivity
//! across snapshots, and consistency between the breakdown and the raw
//! counters.

use ace_energy::{CacheEnergyParams, EnergyModel, WindowEnergyParams};
use ace_sim::{Block, CuKind, Machine, MachineConfig, MemAccess, SizeLevel};
use proptest::prelude::*;

fn arb_cache_params() -> impl Strategy<Value = CacheEnergyParams> {
    (0.01f64..10.0, 0.1f64..1.0, 0.0f64..1.0, 0.0f64..10.0).prop_map(|(access, alpha, leak, wb)| {
        CacheEnergyParams {
            access_nj_max: access,
            access_alpha: alpha,
            leak_nj_per_cycle_max: leak,
            writeback_nj: wb,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Smaller levels never cost more per access or per cycle.
    #[test]
    fn energy_monotone_in_level(params in arb_cache_params()) {
        for pair in [(0u8, 1u8), (1, 2), (2, 3)] {
            let big = SizeLevel::new(pair.0).unwrap();
            let small = SizeLevel::new(pair.1).unwrap();
            prop_assert!(params.access_nj(small) <= params.access_nj(big));
            prop_assert!(params.leak_nj_per_cycle(small) <= params.leak_nj_per_cycle(big));
        }
        prop_assert!(params.validate().is_ok());
    }

    /// Window issue energy scales the same way.
    #[test]
    fn window_energy_monotone(issue in 0.01f64..2.0, alpha in 0.1f64..1.5, leak in 0.0f64..1.0) {
        let w = WindowEnergyParams { issue_nj_max: issue, issue_alpha: alpha, leak_nj_per_cycle_max: leak };
        for pair in [(0u8, 1u8), (1, 2), (2, 3)] {
            let big = SizeLevel::new(pair.0).unwrap();
            let small = SizeLevel::new(pair.1).unwrap();
            prop_assert!(w.issue_nj(small) <= w.issue_nj(big));
            prop_assert!(w.leak_nj_per_cycle(small) <= w.leak_nj_per_cycle(big));
        }
    }

    /// Energy of a run equals the sum of energies of its pieces
    /// (delta-additivity), and never decreases as execution proceeds.
    #[test]
    fn breakdown_is_additive_over_deltas(split in 1usize..39, nblocks in 40usize..120) {
        let model = EnergyModel::default_180nm_with_window();
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut snapshots = Vec::new();
        snapshots.push(m.counters().clone());
        for i in 0..nblocks {
            m.exec_block(&Block {
                pc: 0x400 + (i as u64 % 8) * 64,
                ninstr: 32,
                accesses: vec![MemAccess::load(0x10_0000 + (i as u64) * 4096)],
                branch: None,
            });
            if i == split {
                snapshots.push(m.counters().clone());
            }
        }
        snapshots.push(m.counters().clone());

        let total = model.breakdown(&snapshots[2].delta_since(&snapshots[0])).total_nj();
        let part1 = model.breakdown(&snapshots[1].delta_since(&snapshots[0])).total_nj();
        let part2 = model.breakdown(&snapshots[2].delta_since(&snapshots[1])).total_nj();
        prop_assert!((total - (part1 + part2)).abs() < 1e-6 * total.max(1.0));
        prop_assert!(part1 >= 0.0 && part2 >= 0.0);
    }
}

#[test]
fn window_energy_counted_only_when_enabled() {
    let mut m = Machine::new(MachineConfig::table2()).unwrap();
    for _ in 0..100 {
        m.exec_block(&Block {
            pc: 0x400,
            ninstr: 40,
            accesses: vec![MemAccess::load(0x1000)],
            branch: None,
        });
    }
    let without = EnergyModel::default_180nm().breakdown(m.counters());
    let with = EnergyModel::default_180nm_with_window().breakdown(m.counters());
    assert_eq!(without.window_nj, 0.0);
    assert!(with.window_nj > 0.0);
    assert_eq!(without.l1d_nj, with.l1d_nj, "cache terms unaffected");
    assert!(with.total_nj() > without.total_nj());
}

#[test]
fn shrinking_the_window_saves_window_energy() {
    let model = EnergyModel::default_180nm_with_window();
    let run = |level: u8| {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        m.apply_resize(CuKind::Window, SizeLevel::new(level).unwrap());
        for _ in 0..2000 {
            m.exec_block(&Block {
                pc: 0x400,
                ninstr: 40,
                accesses: vec![MemAccess::load(0x1000)],
                branch: None,
            });
        }
        model.breakdown(m.counters()).window_nj
    };
    let big = run(0);
    let small = run(3);
    assert!(
        small < big * 0.5,
        "8-entry window must cost well under half of 64 entries: {small:.0} vs {big:.0}"
    );
}
