//! Whole-processor power context.
//!
//! The paper reports cache energy in isolation; readers of Wattch-era work
//! usually want the chip-level context — what fraction of *total* processor
//! energy the cache savings represent, and whether a slowdown's extra
//! cycles eat the gains (energy vs energy-delay). This module prices the
//! non-configurable rest of the chip with the same style of model: a
//! per-instruction dynamic term (datapath, register file, result buses),
//! a per-fetch term (L1I, predictor), and a per-cycle term (clock tree,
//! leakage of everything that never resizes).

use crate::{EnergyBreakdown, EnergyModel};
use ace_sim::MachineCounters;
use serde::{Deserialize, Serialize};

/// Parameters for the non-configurable remainder of the processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessorEnergyParams {
    /// Datapath energy per retired instruction (decode, rename, ALU,
    /// register file, commit), nanojoules.
    pub core_nj_per_instr: f64,
    /// Fetch-side energy per L1I access (cache + predictor), nanojoules.
    pub fetch_nj_per_access: f64,
    /// Global clock + fixed-structure leakage per cycle, nanojoules.
    pub uncore_nj_per_cycle: f64,
}

impl ProcessorEnergyParams {
    /// 180 nm-era defaults for the Table 2 core at 1 GHz / 2 V: ≈2 nJ per
    /// instruction of datapath activity, ≈1 nJ per fetch, and ≈1.5 W of
    /// clock + fixed leakage (the Alpha 21264's clock tree alone drew a
    /// third of chip power at this node).
    pub fn default_180nm() -> ProcessorEnergyParams {
        ProcessorEnergyParams {
            core_nj_per_instr: 2.0,
            fetch_nj_per_access: 1.0,
            uncore_nj_per_cycle: 1.5,
        }
    }
}

impl Default for ProcessorEnergyParams {
    fn default() -> Self {
        ProcessorEnergyParams::default_180nm()
    }
}

/// Chip-level energy summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChipEnergy {
    /// Configurable-unit energy (the paper's reported quantity).
    pub configurable_nj: f64,
    /// Everything else: datapath + fetch + clock/leakage.
    pub rest_nj: f64,
}

impl ChipEnergy {
    /// Total chip energy.
    pub fn total_nj(&self) -> f64 {
        self.configurable_nj + self.rest_nj
    }

    /// The configurable units' share of chip energy.
    pub fn configurable_share(&self) -> f64 {
        if self.total_nj() <= 0.0 {
            0.0
        } else {
            self.configurable_nj / self.total_nj()
        }
    }
}

/// Prices a counter snapshot at the chip level.
pub fn chip_energy(
    model: &EnergyModel,
    proc: &ProcessorEnergyParams,
    counters: &MachineCounters,
) -> ChipEnergy {
    let configurable: EnergyBreakdown = model.breakdown(counters);
    let rest = counters.instret as f64 * proc.core_nj_per_instr
        + counters.l1i.total_accesses() as f64 * proc.fetch_nj_per_access
        + counters.cycles as f64 * proc.uncore_nj_per_cycle;
    ChipEnergy {
        configurable_nj: configurable.total_nj(),
        rest_nj: rest,
    }
}

/// Energy-delay product (nJ · cycles), the metric that penalizes saving
/// energy by running longer.
pub fn energy_delay(chip: &ChipEnergy, cycles: u64) -> f64 {
    chip.total_nj() * cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::{Block, Machine, MachineConfig, MemAccess};

    fn run(blocks: u32) -> MachineCounters {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        for i in 0..blocks {
            m.exec_block(&Block {
                pc: 0x400,
                ninstr: 40,
                accesses: vec![MemAccess::load(0x8000 + (i as u64 % 64) * 64)],
                branch: None,
            });
        }
        m.counters().clone()
    }

    #[test]
    fn chip_energy_dominated_by_rest() {
        // At the 180 nm design point the two caches are a meaningful but
        // minority share of chip energy (the premise that makes 47%/58%
        // cache savings translate to single-digit chip savings).
        let c = run(5000);
        let chip = chip_energy(
            &EnergyModel::default_180nm(),
            &ProcessorEnergyParams::default_180nm(),
            &c,
        );
        let share = chip.configurable_share();
        assert!(
            (0.05..0.5).contains(&share),
            "configurable share {share:.3} out of the plausible band"
        );
    }

    #[test]
    fn rest_scales_with_work() {
        let small = run(1000);
        let large = run(4000);
        let proc = ProcessorEnergyParams::default_180nm();
        let model = EnergyModel::default_180nm();
        let e_small = chip_energy(&model, &proc, &small);
        let e_large = chip_energy(&model, &proc, &large);
        let ratio = e_large.rest_nj / e_small.rest_nj;
        assert!(
            (3.2..4.8).contains(&ratio),
            "4x work ~ 4x rest energy, got {ratio:.2}"
        );
    }

    #[test]
    fn energy_delay_penalizes_slow_runs() {
        let c = run(2000);
        let proc = ProcessorEnergyParams::default_180nm();
        let model = EnergyModel::default_180nm();
        let chip = chip_energy(&model, &proc, &c);
        let ed_fast = energy_delay(&chip, c.cycles);
        let ed_slow = energy_delay(&chip, c.cycles * 2);
        assert!(ed_slow > ed_fast * 1.9);
    }
}
