//! # ace-energy — cache energy and leakage model
//!
//! A Wattch/CACTI-style analytic power model for the reconfigurable caches
//! of the simulated adaptive computing environment, replacing the
//! Wattch-derived model the paper plugged into Dynamic SimpleScalar.
//!
//! The model prices three effects, each a function of the cache's size
//! *at the moment the event occurred* (ace-sim keeps all counters per size
//! level precisely so this is exact, not an average):
//!
//! * **dynamic access energy** — grows with capacity (longer word/bit lines,
//!   wider decoders); modeled as `e_max * (size / max_size)^alpha`,
//! * **leakage power** — proportional to capacity, charged per cycle,
//! * **reconfiguration energy** — each dirty line written back by a resize
//!   flush pays a writeback transfer cost (the overhead the paper's modified
//!   power model accounts for).
//!
//! Absolute joules are calibrated to 180 nm-era published values (the
//! paper's 1 GHz / 2 V design point); the tuning algorithms only consume
//! *relative* energy, so the shapes — which configuration wins, and by how
//! much — are what matters.
//!
//! ## Example
//!
//! ```
//! use ace_sim::{Machine, MachineConfig, Block, MemAccess};
//! use ace_energy::EnergyModel;
//!
//! let mut m = Machine::new(MachineConfig::table2())?;
//! let model = EnergyModel::default_180nm();
//! m.exec_block(&Block {
//!     pc: 0x400, ninstr: 16,
//!     accesses: vec![MemAccess::load(0x1000)],
//!     branch: None,
//! });
//! let e = model.breakdown(m.counters());
//! assert!(e.l1d_nj > 0.0 && e.l2_nj > 0.0);
//! # Ok::<(), ace_sim::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod processor;

pub use processor::{chip_energy, energy_delay, ChipEnergy, ProcessorEnergyParams};

use ace_sim::{CacheStats, MachineCounters, SizeLevel, NUM_SIZE_LEVELS};
use serde::{Deserialize, Serialize};

/// Energy parameters for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheEnergyParams {
    /// Dynamic energy of one access at the **largest** size, in nanojoules.
    pub access_nj_max: f64,
    /// Exponent of the size-scaling law for access energy
    /// (`e(size) = access_nj_max * (size/max)^alpha`); CACTI-era caches fall
    /// near 0.5.
    pub access_alpha: f64,
    /// Idle power (leakage plus Wattch-style clock/precharge) at the
    /// largest size, in nanojoules per cycle. Scales linearly with the
    /// powered capacity.
    pub leak_nj_per_cycle_max: f64,
    /// Energy to write one dirty line back to the next level during a
    /// reconfiguration flush, in nanojoules.
    pub writeback_nj: f64,
}

impl CacheEnergyParams {
    /// Dynamic energy per access at `level`, given the level's relative
    /// capacity `size/max = 2^-level`.
    pub fn access_nj(&self, level: SizeLevel) -> f64 {
        let rel = 1.0 / (1u64 << level.index()) as f64;
        self.access_nj_max * rel.powf(self.access_alpha)
    }

    /// Leakage per cycle at `level` (unused capacity is power-gated).
    pub fn leak_nj_per_cycle(&self, level: SizeLevel) -> f64 {
        let rel = 1.0 / (1u64 << level.index()) as f64;
        self.leak_nj_per_cycle_max * rel
    }

    /// Validates that all parameters are finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyParamError`] if any parameter is negative or
    /// non-finite.
    pub fn validate(&self) -> Result<(), EnergyParamError> {
        let vals = [
            self.access_nj_max,
            self.access_alpha,
            self.leak_nj_per_cycle_max,
            self.writeback_nj,
        ];
        if vals.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(EnergyParamError);
        }
        Ok(())
    }
}

/// Error returned for non-finite or negative energy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyParamError;

impl std::fmt::Display for EnergyParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "energy parameters must be finite and non-negative")
    }
}

impl std::error::Error for EnergyParamError {}

/// Per-cache energy totals for a counter snapshot, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// L1 data cache energy (dynamic + leakage + reconfiguration).
    pub l1d_nj: f64,
    /// L2 cache energy (dynamic + leakage + reconfiguration).
    pub l2_nj: f64,
    /// L1D dynamic portion.
    pub l1d_dynamic_nj: f64,
    /// L1D leakage portion.
    pub l1d_leak_nj: f64,
    /// L1D reconfiguration (flush writeback) portion.
    pub l1d_reconfig_nj: f64,
    /// L2 dynamic portion.
    pub l2_dynamic_nj: f64,
    /// L2 leakage portion.
    pub l2_leak_nj: f64,
    /// L2 reconfiguration portion.
    pub l2_reconfig_nj: f64,
    /// Instruction-window energy (0 when the model has no window params).
    #[serde(default)]
    pub window_nj: f64,
    /// DTLB energy (0 when the model has no DTLB params).
    #[serde(default)]
    pub dtlb_nj: f64,
}

impl EnergyBreakdown {
    /// Sum of all configurable units' energy.
    pub fn total_nj(&self) -> f64 {
        self.l1d_nj + self.l2_nj + self.window_nj + self.dtlb_nj
    }
}

/// Energy parameters for the configurable instruction window (issue queue
/// plus ROB): per-*instruction* issue/wakeup energy and per-cycle idle
/// power, both scaling with the powered entry count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowEnergyParams {
    /// Issue/wakeup/commit energy per instruction at the largest window.
    pub issue_nj_max: f64,
    /// Exponent of the entry-count scaling law for issue energy (CAM
    /// wakeup scales superlinearly; the default models `entries^0.7`).
    pub issue_alpha: f64,
    /// Idle (clock + leakage) power at the largest window, nJ per cycle.
    pub leak_nj_per_cycle_max: f64,
}

impl WindowEnergyParams {
    /// Issue energy per instruction at `level`.
    pub fn issue_nj(&self, level: SizeLevel) -> f64 {
        let rel = 1.0 / (1u64 << level.index()) as f64;
        self.issue_nj_max * rel.powf(self.issue_alpha)
    }

    /// Idle power per cycle at `level`.
    pub fn leak_nj_per_cycle(&self, level: SizeLevel) -> f64 {
        let rel = 1.0 / (1u64 << level.index()) as f64;
        self.leak_nj_per_cycle_max * rel
    }

    /// 180 nm-era defaults: ≈0.25 nJ per issued instruction and ≈100 mW of
    /// wakeup/select/ROB clock power at 64 entries.
    pub fn default_180nm() -> WindowEnergyParams {
        WindowEnergyParams {
            issue_nj_max: 0.25,
            issue_alpha: 0.7,
            leak_nj_per_cycle_max: 0.10,
        }
    }
}

/// The energy model for the configurable units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// L1 data cache parameters.
    pub l1d: CacheEnergyParams,
    /// L2 cache parameters.
    pub l2: CacheEnergyParams,
    /// Instruction-window parameters; `None` (the paper's two-CU
    /// evaluation) excludes the window from all accounting.
    #[serde(default)]
    pub window: Option<WindowEnergyParams>,
    /// DTLB parameters; `None` excludes the DTLB from all accounting.
    /// The `writeback_nj` field prices one reconfiguration's refill cost
    /// (a TLB flush discards clean translations that must be re-walked).
    #[serde(default)]
    pub dtlb: Option<CacheEnergyParams>,
}

impl EnergyModel {
    /// Parameters calibrated to 180 nm-era CACTI/Wattch numbers at
    /// 1 GHz / 2 V: a 64 KB 2-way L1D costs ≈0.9 nJ per access, a 1 MB
    /// 4-way L2 ≈3.6 nJ. The per-cycle terms follow Wattch's conditional
    /// clocking style: a powered array pays clock/precharge and leakage
    /// power every cycle whether or not it is accessed (≈50 mW for the
    /// L1D, ≈450 mW for the 1 MB L2), which is why resizing a large,
    /// rarely-accessed L2 saves so much energy in the paper.
    pub fn default_180nm() -> EnergyModel {
        EnergyModel {
            l1d: CacheEnergyParams {
                access_nj_max: 0.9,
                access_alpha: 0.5,
                leak_nj_per_cycle_max: 0.050,
                writeback_nj: 1.2,
            },
            l2: CacheEnergyParams {
                access_nj_max: 3.6,
                access_alpha: 0.5,
                leak_nj_per_cycle_max: 0.450,
                writeback_nj: 4.0,
            },
            window: None,
            dtlb: None,
        }
    }

    /// The three-CU model: the 180 nm cache parameters plus the
    /// instruction-window parameters (the Section 4.1 extension).
    pub fn default_180nm_with_window() -> EnergyModel {
        EnergyModel {
            window: Some(WindowEnergyParams::default_180nm()),
            ..EnergyModel::default_180nm()
        }
    }

    /// The registry-extension model: the 180 nm cache parameters plus
    /// DTLB parameters. A 128-entry fully-associative CAM costs far less
    /// per lookup than a cache access (~0.05 nJ), but burns comparator
    /// precharge power every cycle (~2 mW at full size), and a resize
    /// flush pays one refill-walk charge.
    pub fn default_180nm_with_dtlb() -> EnergyModel {
        EnergyModel {
            dtlb: Some(CacheEnergyParams {
                access_nj_max: 0.05,
                access_alpha: 0.5,
                leak_nj_per_cycle_max: 0.002,
                writeback_nj: 0.5,
            }),
            ..EnergyModel::default_180nm()
        }
    }

    /// Validates both parameter sets.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyParamError`] if any parameter is negative or
    /// non-finite.
    pub fn validate(&self) -> Result<(), EnergyParamError> {
        self.l1d.validate()?;
        self.l2.validate()?;
        if let Some(w) = &self.window {
            let vals = [w.issue_nj_max, w.issue_alpha, w.leak_nj_per_cycle_max];
            if vals.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(EnergyParamError);
            }
        }
        if let Some(d) = &self.dtlb {
            d.validate()?;
        }
        Ok(())
    }

    /// Energy of one cache over a counter snapshot, returned as
    /// `(dynamic, leakage, reconfiguration)` nanojoules.
    pub fn cache_energy(
        &self,
        params: &CacheEnergyParams,
        stats: &CacheStats,
        cycles_at_level: &[u64; NUM_SIZE_LEVELS],
    ) -> (f64, f64, f64) {
        let mut dynamic = 0.0;
        let mut leak = 0.0;
        let mut reconfig = 0.0;
        for level in SizeLevel::all() {
            let k = level.index();
            dynamic += stats.accesses[k] as f64 * params.access_nj(level);
            leak += cycles_at_level[k] as f64 * params.leak_nj_per_cycle(level);
            reconfig += stats.flush_writebacks[k] as f64 * params.writeback_nj;
        }
        (dynamic, leak, reconfig)
    }

    /// Full breakdown for a machine counter snapshot (or a delta of two).
    pub fn breakdown(&self, c: &MachineCounters) -> EnergyBreakdown {
        let (l1d_dyn, l1d_leak, l1d_rc) = self.cache_energy(&self.l1d, &c.l1d, &c.l1d_cycles);
        let (l2_dyn, l2_leak, l2_rc) = self.cache_energy(&self.l2, &c.l2, &c.l2_cycles);
        let window_nj = match &self.window {
            Some(w) => SizeLevel::all()
                .map(|level| {
                    let k = level.index();
                    c.window_instr[k] as f64 * w.issue_nj(level)
                        + c.window_cycles[k] as f64 * w.leak_nj_per_cycle(level)
                })
                .sum(),
            None => 0.0,
        };
        let dtlb_nj = match &self.dtlb {
            Some(d) => SizeLevel::all()
                .map(|level| {
                    let k = level.index();
                    c.dtlb_level_accesses[k] as f64 * d.access_nj(level)
                        + c.dtlb_cycles[k] as f64 * d.leak_nj_per_cycle(level)
                        + c.dtlb_resizes[k] as f64 * d.writeback_nj
                })
                .sum(),
            None => 0.0,
        };
        EnergyBreakdown {
            l1d_nj: l1d_dyn + l1d_leak + l1d_rc,
            l2_nj: l2_dyn + l2_leak + l2_rc,
            l1d_dynamic_nj: l1d_dyn,
            l1d_leak_nj: l1d_leak,
            l1d_reconfig_nj: l1d_rc,
            l2_dynamic_nj: l2_dyn,
            l2_leak_nj: l2_leak,
            l2_reconfig_nj: l2_rc,
            window_nj,
            dtlb_nj,
        }
    }

    /// Combined cache energy per retired instruction, in nanojoules — the
    /// objective the tuning algorithms minimize.
    ///
    /// Returns `f64::INFINITY` for an empty snapshot so that an unmeasured
    /// configuration never looks attractive.
    pub fn energy_per_instruction(&self, c: &MachineCounters) -> f64 {
        if c.instret == 0 {
            return f64::INFINITY;
        }
        self.breakdown(c).total_nj() / c.instret as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::default_180nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::{Block, CuKind, Machine, MachineConfig, MemAccess};

    fn run_fixed(l1d_level: u8, l2_level: u8, rounds: u32) -> MachineCounters {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        m.apply_resize(CuKind::L1d, SizeLevel::new(l1d_level).unwrap());
        m.apply_resize(CuKind::L2, SizeLevel::new(l2_level).unwrap());
        let snap = m.counters().clone();
        for _ in 0..rounds {
            for a in (0..4096u64).step_by(64) {
                m.exec_block(&Block {
                    pc: 0x400,
                    ninstr: 16,
                    accesses: vec![MemAccess::load(0x10_0000 + a)],
                    branch: None,
                });
            }
        }
        m.counters().delta_since(&snap)
    }

    #[test]
    fn access_energy_scales_down_with_size() {
        let p = EnergyModel::default_180nm().l1d;
        let e0 = p.access_nj(SizeLevel::LARGEST);
        let e3 = p.access_nj(SizeLevel::SMALLEST);
        assert!(e3 < e0);
        // sqrt scaling: 8x smaller -> sqrt(8) ~ 2.83x cheaper.
        assert!((e0 / e3 - 8f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_linearly() {
        let p = EnergyModel::default_180nm().l2;
        assert!(
            (p.leak_nj_per_cycle(SizeLevel::LARGEST) / p.leak_nj_per_cycle(SizeLevel::SMALLEST)
                - 8.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn small_cache_saves_energy_on_small_working_set() {
        // 4 KB working set: fits even the 8 KB L1D, so the small
        // configuration must be strictly cheaper.
        let model = EnergyModel::default_180nm();
        let big = run_fixed(0, 0, 50);
        let small = run_fixed(3, 3, 50);
        let e_big = model.energy_per_instruction(&big);
        let e_small = model.energy_per_instruction(&small);
        assert!(
            e_small < e_big * 0.7,
            "small config should save >30%: big={e_big:.3} small={e_small:.3}"
        );
        // And performance must be essentially unchanged.
        let slow = 1.0 - small.ipc() / big.ipc();
        assert!(slow < 0.02, "slowdown {slow}");
    }

    #[test]
    fn breakdown_components_sum() {
        let model = EnergyModel::default_180nm();
        let c = run_fixed(1, 2, 5);
        let b = model.breakdown(&c);
        assert!((b.l1d_nj - (b.l1d_dynamic_nj + b.l1d_leak_nj + b.l1d_reconfig_nj)).abs() < 1e-6);
        assert!((b.l2_nj - (b.l2_dynamic_nj + b.l2_leak_nj + b.l2_reconfig_nj)).abs() < 1e-6);
        assert!((b.total_nj() - b.l1d_nj - b.l2_nj).abs() < 1e-6);
    }

    #[test]
    fn empty_snapshot_has_infinite_epi() {
        let model = EnergyModel::default_180nm();
        assert!(model
            .energy_per_instruction(&MachineCounters::default())
            .is_infinite());
    }

    #[test]
    fn reconfig_energy_counted() {
        let model = EnergyModel::default_180nm();
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        for i in 0..200u64 {
            m.exec_block(&Block {
                pc: 0x400,
                ninstr: 4,
                accesses: vec![MemAccess::store(0x20_0000 + i * 64)],
                branch: None,
            });
        }
        let before = model.breakdown(m.counters()).l1d_reconfig_nj;
        m.apply_resize(CuKind::L1d, SizeLevel::new(2).unwrap());
        let after = model.breakdown(m.counters()).l1d_reconfig_nj;
        assert!(after > before, "flush writebacks must cost energy");
    }

    #[test]
    fn validation_rejects_nan() {
        let mut model = EnergyModel::default_180nm();
        model.l1d.access_nj_max = f64::NAN;
        assert!(model.validate().is_err());
        assert!(EnergyModel::default_180nm().validate().is_ok());
    }

    #[test]
    fn dtlb_model_prices_lookups_leak_and_resizes() {
        let mut cfg = MachineConfig::table2();
        cfg.dtlb_configurable = true;
        let mut m = Machine::new(cfg).unwrap();
        for i in 0..100u64 {
            m.exec_block(&Block {
                pc: 0x400,
                ninstr: 8,
                accesses: vec![MemAccess::load(0x10_0000 + i * 64)],
                branch: None,
            });
        }
        m.apply_resize(ace_sim::CuId::Dtlb, SizeLevel::new(2).unwrap());

        let with = EnergyModel::default_180nm_with_dtlb();
        let without = EnergyModel::default_180nm();
        let b_with = with.breakdown(m.counters());
        let b_without = without.breakdown(m.counters());
        assert!(b_with.dtlb_nj > 0.0, "lookups + leak + resize must cost");
        assert_eq!(b_without.dtlb_nj, 0.0, "no DTLB params, no DTLB energy");
        // The two-CU totals are untouched by the extra unit.
        assert_eq!(b_with.l1d_nj, b_without.l1d_nj);
        assert_eq!(b_with.l2_nj, b_without.l2_nj);
        assert!((b_with.total_nj() - b_without.total_nj() - b_with.dtlb_nj).abs() < 1e-12);
        assert!(with.validate().is_ok());
    }

    #[test]
    fn thrashing_small_cache_multiplies_l2_traffic_energy() {
        // A 48 KB working set thrashes the 8 KB L1D; the extra misses show
        // up as L2 dynamic energy, penalizing over-aggressive downsizing.
        let model = EnergyModel::default_180nm();
        let mut big = Machine::new(MachineConfig::table2()).unwrap();
        let mut small = Machine::new(MachineConfig::table2()).unwrap();
        small.apply_resize(CuKind::L1d, SizeLevel::SMALLEST);
        for m in [&mut big, &mut small] {
            for _ in 0..30 {
                for a in (0..49152u64).step_by(64) {
                    m.exec_block(&Block {
                        pc: 0x400,
                        ninstr: 8,
                        accesses: vec![MemAccess::load(0x40_0000 + a)],
                        branch: None,
                    });
                }
            }
        }
        let e_small_l2 = model.breakdown(small.counters()).l2_dynamic_nj;
        let e_big_l2 = model.breakdown(big.counters()).l2_dynamic_nj;
        assert!(
            e_small_l2 > e_big_l2 * 5.0,
            "thrashing multiplies L2 dynamic energy: {e_small_l2:.0} vs {e_big_l2:.0}"
        );
    }
}
