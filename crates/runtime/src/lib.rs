//! # ace-runtime — the dynamic optimization system model
//!
//! A stand-in for the Jikes Research Virtual Machine in the reproduction of
//! *Effective Adaptive Computing Environment Management via Dynamic
//! Optimization* (CGO 2005). It provides exactly the DO-system capabilities
//! the paper's framework builds on (Figure 2):
//!
//! * **invocation counting** of baseline-compiled methods,
//! * **hotspot promotion** once a method passes `hot_threshold`, with a
//!   modeled JIT compilation cost charged to the simulated machine,
//! * **size probing** over the next few invocations to classify the
//!   hotspot as an L1D hotspot (50 K–500 K inclusive instructions per
//!   invocation), an L2 hotspot (larger), or too small to adapt,
//! * a **DO database** ([`DoDatabase`]) holding per-method profiling state,
//! * **boundary instrumentation**: after classification, every entry/exit
//!   of the hotspot is reported to the ACE manager ([`DoEvent`]) so tuning
//!   code and, later, configuration code can run there.
//!
//! The adaptation policy itself (configuration lists, CU decoupling, best
//! configuration selection) lives in `ace-core`; this crate is the
//! substrate that tells it *where* and *when* hotspot boundaries occur.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod system;

pub use database::{DoDatabase, HotspotClass, MethodEntry, MethodState};
pub use system::{DoConfig, DoEvent, DoStats, DoSystem, Table4Row};
