//! The DO database: per-method runtime profiling state.
//!
//! The paper's DO system keeps one database entry per code block holding
//! execution-frequency information, the hotspot's configuration list, and
//! tuning results. Detection state lives here; the ACE manager (ace-core)
//! attaches its tuning state per hotspot on top.

use ace_sim::CuId;
use ace_workloads::MethodId;
use serde::{Deserialize, Error, Serialize, Value};

/// Size classification of a promoted hotspot (Section 3.2.1).
///
/// A hotspot is bound to the configurable unit whose reconfiguration
/// grain matches its average invocation size (with the paper's
/// intervals: 50 K–500 K instructions adapt the L1 data cache, above
/// 500 K the L2). Hotspots below every registered grain adapt nothing
/// (but still exist as hotspots).
///
/// The historical variant spellings (`HotspotClass::L1d`, …) survive as
/// associated constants over the open [`CuId`] index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HotspotClass {
    /// Below the smallest registered reconfiguration grain: no CU
    /// assigned.
    TooSmall,
    /// Matched to the named configurable unit's grain.
    Cu(CuId),
}

#[allow(non_upper_case_globals)]
impl HotspotClass {
    /// Matched to the instruction window (5 K–50 K instructions, only
    /// when the window CU is enabled).
    pub const Window: HotspotClass = HotspotClass::Cu(CuId::Window);
    /// 50 K–500 K instructions per invocation: tunes the L1D cache.
    pub const L1d: HotspotClass = HotspotClass::Cu(CuId::L1d);
    /// Above 500 K instructions per invocation: tunes the L2 cache.
    pub const L2: HotspotClass = HotspotClass::Cu(CuId::L2);
    /// Matched to the DTLB's grain (when the DTLB CU is registered).
    pub const Dtlb: HotspotClass = HotspotClass::Cu(CuId::Dtlb);

    /// The configurable unit this class adapts, if any.
    pub fn cu(self) -> Option<CuId> {
        match self {
            HotspotClass::TooSmall => None,
            HotspotClass::Cu(cu) => Some(cu),
        }
    }
}

impl std::fmt::Display for HotspotClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HotspotClass::TooSmall => write!(f, "small"),
            HotspotClass::Cu(cu) => write!(f, "{cu}"),
        }
    }
}

impl Serialize for HotspotClass {
    // Keeps the pre-registry encoding: the class serializes as the unit
    // variant string the old closed enum produced.
    fn to_value(&self) -> Value {
        match self {
            HotspotClass::TooSmall => Value::Str("TooSmall".to_string()),
            HotspotClass::Cu(cu) => cu.to_value(),
        }
    }
}

impl Deserialize for HotspotClass {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s == "TooSmall" => Ok(HotspotClass::TooSmall),
            _ => CuId::from_value(v).map(HotspotClass::Cu),
        }
    }
}

/// Detection lifecycle of one method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodState {
    /// Baseline-compiled; the DO system counts invocations.
    Cold,
    /// Promoted past `hot_threshold` and JIT-optimized; the next few
    /// invocations measure its dynamic size to pick the CU subset.
    Probing,
    /// Classified; tuning/configuration code is installed at its
    /// boundaries.
    Hot(HotspotClass),
}

/// One method's database entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodEntry {
    /// Detection state.
    pub state: MethodState,
    /// Total invocations observed.
    pub invocations: u64,
    /// Inclusive dynamic instructions across all completed invocations.
    pub total_instr: u64,
    /// Instructions accumulated during the probing invocations.
    pub probe_instr: u64,
    /// Completed probing invocations.
    pub probe_count: u32,
    /// Mean inclusive instructions per invocation, fixed at classification.
    pub avg_size: u64,
    /// Machine instret when the method was promoted (for identification
    /// latency accounting); `None` while cold.
    pub promoted_at: Option<u64>,
}

impl Default for MethodEntry {
    fn default() -> Self {
        MethodEntry {
            state: MethodState::Cold,
            invocations: 0,
            total_instr: 0,
            probe_instr: 0,
            probe_count: 0,
            avg_size: 0,
            promoted_at: None,
        }
    }
}

impl MethodEntry {
    /// `true` once the method is a classified hotspot.
    pub fn is_hot(&self) -> bool {
        matches!(self.state, MethodState::Hot(_))
    }

    /// The hotspot class, if classified.
    pub fn class(&self) -> Option<HotspotClass> {
        match self.state {
            MethodState::Hot(c) => Some(c),
            _ => None,
        }
    }
}

/// The database: one entry per method, indexed by [`MethodId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DoDatabase {
    entries: Vec<MethodEntry>,
}

impl DoDatabase {
    /// Creates a database for `method_count` methods.
    pub fn new(method_count: usize) -> DoDatabase {
        DoDatabase {
            entries: vec![MethodEntry::default(); method_count],
        }
    }

    /// The entry for `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` does not belong to the program this database was
    /// sized for.
    pub fn entry(&self, m: MethodId) -> &MethodEntry {
        &self.entries[m.0 as usize]
    }

    /// Mutable access to the entry for `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn entry_mut(&mut self, m: MethodId) -> &mut MethodEntry {
        &mut self.entries[m.0 as usize]
    }

    /// The entry for `m`, or `None` when `m` is out of range.
    ///
    /// Use this instead of [`DoDatabase::entry`] wherever the method id
    /// comes from outside the program this database was sized for — e.g.
    /// the fleet driver inspecting another machine's ids — so a foreign
    /// id degrades to a miss instead of a panic.
    pub fn try_entry(&self, m: MethodId) -> Option<&MethodEntry> {
        self.entries.get(m.0 as usize)
    }

    /// Mutable counterpart of [`DoDatabase::try_entry`].
    pub fn try_entry_mut(&mut self, m: MethodId) -> Option<&mut MethodEntry> {
        self.entries.get_mut(m.0 as usize)
    }

    /// Number of methods the database was sized for.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` for a zero-method database.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(MethodId, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MethodId, &MethodEntry)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (MethodId(i as u32), e))
    }

    /// Number of classified hotspots of `class`.
    pub fn count_class(&self, class: HotspotClass) -> usize {
        self.entries
            .iter()
            .filter(|e| e.class() == Some(class))
            .count()
    }

    /// All classified hotspots.
    pub fn hotspots(&self) -> impl Iterator<Item = (MethodId, &MethodEntry)> {
        self.iter().filter(|(_, e)| e.is_hot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_entry_is_cold() {
        let db = DoDatabase::new(3);
        assert_eq!(db.entry(MethodId(0)).state, MethodState::Cold);
        assert!(!db.entry(MethodId(2)).is_hot());
        assert_eq!(db.entry(MethodId(1)).class(), None);
    }

    #[test]
    fn class_counting() {
        let mut db = DoDatabase::new(4);
        db.entry_mut(MethodId(0)).state = MethodState::Hot(HotspotClass::L1d);
        db.entry_mut(MethodId(1)).state = MethodState::Hot(HotspotClass::L1d);
        db.entry_mut(MethodId(2)).state = MethodState::Hot(HotspotClass::L2);
        assert_eq!(db.count_class(HotspotClass::L1d), 2);
        assert_eq!(db.count_class(HotspotClass::L2), 1);
        assert_eq!(db.count_class(HotspotClass::TooSmall), 0);
        assert_eq!(db.hotspots().count(), 3);
    }

    #[test]
    fn display_classes() {
        assert_eq!(HotspotClass::L1d.to_string(), "L1D");
        assert_eq!(HotspotClass::L2.to_string(), "L2");
        assert_eq!(HotspotClass::TooSmall.to_string(), "small");
    }

    #[test]
    fn try_entry_bounds() {
        let mut db = DoDatabase::new(2);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert!(db.try_entry(MethodId(1)).is_some());
        assert!(db.try_entry(MethodId(2)).is_none(), "foreign id is a miss");
        assert!(db.try_entry(MethodId(u32::MAX)).is_none());
        db.try_entry_mut(MethodId(0)).unwrap().invocations = 7;
        assert_eq!(db.entry(MethodId(0)).invocations, 7);
        assert!(db.try_entry_mut(MethodId(9)).is_none());
        assert!(DoDatabase::new(0).is_empty());
    }

    #[test]
    fn is_hot_only_after_classification() {
        // The detection lifecycle boundary: a promoted (probing) method is
        // not yet "hot" — only classification flips `is_hot`.
        let mut e = MethodEntry::default();
        assert!(!e.is_hot());
        e.state = MethodState::Probing;
        assert!(!e.is_hot(), "probing sits below the hot boundary");
        assert_eq!(e.class(), None);
        e.state = MethodState::Hot(HotspotClass::TooSmall);
        assert!(e.is_hot(), "even unadaptable hotspots are hot");
        assert_eq!(e.class(), Some(HotspotClass::TooSmall));
    }

    #[test]
    fn count_class_tracks_demotion() {
        let mut db = DoDatabase::new(3);
        db.entry_mut(MethodId(0)).state = MethodState::Hot(HotspotClass::L1d);
        db.entry_mut(MethodId(1)).state = MethodState::Hot(HotspotClass::L1d);
        assert_eq!(db.count_class(HotspotClass::L1d), 2);
        // Demote one back to cold (e.g. a deoptimization): counts and the
        // hotspot iterator must both reflect it.
        db.entry_mut(MethodId(0)).state = MethodState::Cold;
        assert_eq!(db.count_class(HotspotClass::L1d), 1);
        assert_eq!(db.hotspots().count(), 1);
        assert!(!db.entry(MethodId(0)).is_hot());
    }

    #[test]
    fn hotspots_iterate_in_method_id_order() {
        let mut db = DoDatabase::new(8);
        // Populate in scrambled order; iteration must follow MethodId.
        for i in [5u32, 1, 7, 3] {
            db.entry_mut(MethodId(i)).state = MethodState::Hot(HotspotClass::L2);
        }
        let ids: Vec<u32> = db.hotspots().map(|(m, _)| m.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 7]);
        let again: Vec<u32> = db.hotspots().map(|(m, _)| m.0).collect();
        assert_eq!(ids, again, "iteration order is deterministic");
    }
}
