//! The dynamic optimization system (Jikes RVM substitute).
//!
//! Implements the detection pipeline of Figure 2: count invocations of
//! baseline-compiled methods; promote a method once it has been invoked
//! `hot_threshold` times (charging a modeled JIT compilation cost); measure
//! its inclusive dynamic size over a few *probing* invocations; classify it
//! as an L1D hotspot, an L2 hotspot, or too small to adapt anything; and
//! from then on report hotspot entry/exit events so the ACE manager can run
//! tuning code (and later configuration code) at its boundaries.
//!
//! The real Jikes RVM samples the running method every ~10 ms instead of
//! counting every invocation; at our ~100× scaled-down run lengths, exact
//! counting with a proportionally scaled `hot_threshold` (5 instead of the
//! ≈30 the paper's Table 4 implies) reproduces the same identification
//! latency fractions.

use crate::database::{DoDatabase, HotspotClass, MethodState};
use ace_sim::{CuId, CuRegistry, Machine};
use ace_workloads::{MethodId, Program};
use serde::{Deserialize, Serialize};

/// One configurable unit's hotspot grain: the smallest average inclusive
/// invocation size the unit is worth adapting for (the paper's size-class
/// rule ties it to the unit's reconfiguration interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuGrain {
    /// The configurable unit.
    pub cu: CuId,
    /// Minimum average invocation size matched to this unit.
    pub min_instr: u64,
}

/// Configuration of the DO system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoConfig {
    /// Invocations before a method is promoted (and JIT-optimized).
    pub hot_threshold: u32,
    /// Invocations used to measure a promoted method's dynamic size.
    pub probe_invocations: u32,
    /// Fixed JIT compilation cost in cycles…
    pub jit_base_cycles: u64,
    /// …plus this much per static code block of the method.
    pub jit_cycles_per_block: u64,
    /// Cycles charged each time instrumented tuning/profiling code runs at
    /// a hotspot boundary.
    pub instrument_cycles: u64,
    /// Hotspot grains of the adaptable units: a hotspot is bound to the
    /// unit with the largest grain not exceeding its average invocation
    /// size, and to [`HotspotClass::TooSmall`] below every grain. The
    /// default reproduces the paper's two-CU rule (50 K → L1D,
    /// 500 K → L2).
    pub grains: Vec<CuGrain>,
}

impl Default for DoConfig {
    fn default() -> Self {
        DoConfig {
            hot_threshold: 5,
            probe_invocations: 2,
            jit_base_cycles: 2_000,
            jit_cycles_per_block: 300,
            instrument_cycles: 20,
            grains: vec![
                CuGrain {
                    cu: CuId::L1d,
                    min_instr: 50_000,
                },
                CuGrain {
                    cu: CuId::L2,
                    min_instr: 500_000,
                },
            ],
        }
    }
}

impl DoConfig {
    /// The three-CU configuration: hotspots of 5 K–50 K instructions adapt
    /// the instruction window (the Section 4.1 extension; the lower bound
    /// matches the window's reconfiguration interval, per the paper's
    /// size-class rule).
    pub fn with_window() -> DoConfig {
        DoConfig::default().with_cu(CuId::Window, 5_000)
    }

    /// Adds (or moves) `cu`'s hotspot grain.
    pub fn with_cu(mut self, cu: CuId, min_instr: u64) -> DoConfig {
        self.grains.retain(|g| g.cu != cu);
        self.grains.push(CuGrain { cu, min_instr });
        self
    }

    /// Grains derived from a machine's registered units: every descriptor
    /// contributes its `min_hotspot_instr`. This is how a new CU joins
    /// hotspot binning without any code change.
    pub fn for_registry(registry: &CuRegistry) -> DoConfig {
        DoConfig {
            grains: registry
                .iter()
                .map(|d| CuGrain {
                    cu: d.cu,
                    min_instr: d.min_hotspot_instr,
                })
                .collect(),
            ..DoConfig::default()
        }
    }

    /// Classifies an average inclusive invocation size: the registered
    /// grain with the largest `min_instr` not exceeding `avg_size` wins
    /// (later grains win ties).
    pub fn classify(&self, avg_size: u64) -> HotspotClass {
        self.grains
            .iter()
            .filter(|g| avg_size >= g.min_instr)
            .max_by_key(|g| g.min_instr)
            .map_or(HotspotClass::TooSmall, |g| HotspotClass::Cu(g.cu))
    }
}

/// Event reported to the ACE manager for each method boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoEvent {
    /// Boundary of a method that is not (yet) a classified hotspot.
    None,
    /// A classified hotspot was entered.
    HotspotEnter {
        /// The hotspot.
        method: MethodId,
        /// Its size class.
        class: HotspotClass,
    },
    /// A classified hotspot was exited.
    HotspotExit {
        /// The hotspot.
        method: MethodId,
        /// Its size class.
        class: HotspotClass,
        /// Inclusive dynamic instructions of the completed invocation.
        invocation_instr: u64,
    },
    /// A method was promoted and classified on this exit: its boundaries
    /// are instrumented from now on. (Reported once per hotspot.)
    HotspotClassified {
        /// The new hotspot.
        method: MethodId,
        /// Its size class.
        class: HotspotClass,
        /// Mean inclusive instructions per invocation.
        avg_size: u64,
    },
}

/// Aggregate detection statistics (Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DoStats {
    /// Dynamic instructions attributed while at least one classified
    /// hotspot was on the call stack.
    pub instr_in_hotspots: u64,
    /// Dynamic instructions attributed before the innermost enclosing
    /// methods became hotspots — the identification latency numerator.
    pub identification_instr: u64,
    /// JIT compilations performed.
    pub jit_compilations: u64,
    /// Total cycles charged for JIT compilation.
    pub jit_cycles: u64,
}

/// The DO system driving one program execution.
///
/// # Examples
///
/// ```
/// use ace_workloads::{preset, Executor, Step};
/// use ace_runtime::{DoSystem, DoConfig, DoEvent};
/// use ace_sim::{Machine, MachineConfig, Block};
///
/// let program = preset("db").unwrap();
/// let mut machine = Machine::new(MachineConfig::table2())?;
/// let mut dos = DoSystem::new(&program, DoConfig::default());
/// let mut exec = Executor::new(&program);
/// exec.set_instruction_limit(2_000_000);
/// let mut buf = Block::default();
/// loop {
///     match exec.step(&mut buf) {
///         Step::Block => machine.exec_block(&buf),
///         Step::Enter(m) => { dos.on_enter(m, &mut machine); }
///         Step::Exit(m) => { dos.on_exit(m, &mut machine); }
///         Step::Done => break,
///     }
/// }
/// assert!(dos.database().hotspots().count() > 0);
/// # Ok::<(), ace_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default)]
struct ThreadStack {
    /// (method, thread-virtual instret at entry, was the method hot).
    frames: Vec<(MethodId, u64, bool)>,
    /// Classified hotspots currently on this stack.
    hot_depth: u32,
    /// Frames whose method was still unclassified at entry.
    cold_depth: u32,
    /// Instructions this thread has retired (its virtual clock): in a
    /// time-multiplexed run, invocation sizes are measured against this,
    /// not the global instret, so foreign quanta do not inflate them.
    virtual_instret: u64,
}

/// The DO system driving one program execution (see the crate-level
/// documentation for the detection pipeline and [`DoSystem::new`] /
/// [`DoSystem::on_enter`] / [`DoSystem::on_exit`] for the driver
/// contract). Multithreaded drivers additionally announce scheduler
/// switches via [`DoSystem::on_thread_switch`].
#[derive(Debug, Clone)]
pub struct DoSystem<'p> {
    program: &'p Program,
    config: DoConfig,
    db: DoDatabase,
    /// One call stack per logical thread. Single-threaded runs only ever
    /// use index 0; the multithreaded driver announces scheduler switches
    /// via [`DoSystem::on_thread_switch`].
    stacks: Vec<ThreadStack>,
    /// The thread currently holding the (time-multiplexed) core.
    current: usize,
    /// Machine instret at the previous boundary event.
    last_event_instret: u64,
    stats: DoStats,
    telemetry: ace_telemetry::Telemetry,
}

impl<'p> DoSystem<'p> {
    /// Creates a DO system for `program`.
    pub fn new(program: &'p Program, config: DoConfig) -> DoSystem<'p> {
        DoSystem {
            program,
            config,
            db: DoDatabase::new(program.method_count()),
            stacks: vec![ThreadStack::default()],
            current: 0,
            last_event_instret: 0,
            stats: DoStats::default(),
            telemetry: ace_telemetry::Telemetry::off(),
        }
    }

    /// Installs the run's telemetry handle; promotions emit
    /// [`ace_telemetry::Event::HotspotPromoted`] through it. The run
    /// drivers call this — embedders that drive [`DoSystem::on_enter`]
    /// directly may too.
    pub fn set_telemetry(&mut self, telemetry: ace_telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attributes pending instructions to the outgoing thread and makes
    /// `tid` current. Called by the multithreaded driver at every
    /// scheduler switch; single-threaded runs never call it.
    pub fn on_thread_switch(&mut self, tid: u32, machine: &Machine) {
        self.attribute(machine.instret());
        let idx = tid as usize;
        if self.stacks.len() <= idx {
            self.stacks.resize_with(idx + 1, ThreadStack::default);
        }
        self.current = idx;
    }

    /// The database of per-method profiling state.
    pub fn database(&self) -> &DoDatabase {
        &self.db
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DoConfig {
        &self.config
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &DoStats {
        &self.stats
    }

    /// Attributes instructions since the last boundary event to the
    /// current thread's stack state.
    fn attribute(&mut self, now: u64) {
        let delta = now - self.last_event_instret;
        self.last_event_instret = now;
        let stack = &mut self.stacks[self.current];
        stack.virtual_instret += delta;
        if stack.hot_depth > 0 {
            self.stats.instr_in_hotspots += delta;
        }
        // Instructions spent inside methods that were not yet classified at
        // entry count toward identification latency — but only when no
        // enclosing classified hotspot already covers them.
        if stack.hot_depth == 0 && stack.cold_depth > 0 {
            self.stats.identification_instr += delta;
        }
    }

    /// Handles a method entry; returns the event the ACE manager acts on.
    pub fn on_enter(&mut self, m: MethodId, machine: &mut Machine) -> DoEvent {
        let now = machine.instret();
        self.attribute(now);
        let threshold = self.config.hot_threshold;
        let entry = self.db.entry_mut(m);
        entry.invocations += 1;

        // Promotion: hotspot detected, JIT-optimize it.
        if entry.state == MethodState::Cold && entry.invocations >= threshold as u64 {
            entry.state = MethodState::Probing;
            entry.promoted_at = Some(now);
            let blocks = self.program.method(m).code_blocks as u64;
            let cost = self.config.jit_base_cycles + blocks * self.config.jit_cycles_per_block;
            machine.add_overhead_cycles(cost);
            self.stats.jit_compilations += 1;
            self.stats.jit_cycles += cost;
            let invocations = entry.invocations;
            self.telemetry
                .emit(|| ace_telemetry::Event::HotspotPromoted {
                    method: m.0,
                    invocations,
                    instret: now,
                });
        }

        let hot = entry.is_hot();
        let class = entry.class();
        let stack = &mut self.stacks[self.current];
        let vnow = stack.virtual_instret;
        stack.frames.push((m, vnow, hot));
        if hot {
            stack.hot_depth += 1;
            machine.add_overhead_cycles(self.config.instrument_cycles);
        } else {
            stack.cold_depth += 1;
        }
        match class {
            Some(c) => DoEvent::HotspotEnter {
                method: m,
                class: c,
            },
            None => DoEvent::None,
        }
    }

    /// Handles a method exit; returns the event the ACE manager acts on.
    ///
    /// # Panics
    ///
    /// Panics if exits are not properly nested with entries (an executor
    /// bug, not a user-reachable condition).
    pub fn on_exit(&mut self, m: MethodId, machine: &mut Machine) -> DoEvent {
        let now = machine.instret();
        self.attribute(now);
        let stack = &mut self.stacks[self.current];
        let (method, entry_vinstret, was_hot) = stack.frames.pop().expect("unbalanced exit");
        assert_eq!(method, m, "unbalanced method nesting");
        let invocation_instr = stack.virtual_instret - entry_vinstret;

        if was_hot {
            stack.hot_depth -= 1;
            machine.add_overhead_cycles(self.config.instrument_cycles);
        } else {
            stack.cold_depth -= 1;
        }

        let probe_invocations = self.config.probe_invocations;
        let entry = self.db.entry_mut(m);
        entry.total_instr += invocation_instr;

        match entry.state {
            MethodState::Probing => {
                entry.probe_instr += invocation_instr;
                entry.probe_count += 1;
                if entry.probe_count >= probe_invocations {
                    let avg = entry.probe_instr / entry.probe_count as u64;
                    entry.avg_size = avg;
                    let class = self.config.classify(avg);
                    entry.state = MethodState::Hot(class);
                    return DoEvent::HotspotClassified {
                        method: m,
                        class,
                        avg_size: avg,
                    };
                }
                DoEvent::None
            }
            MethodState::Hot(class) if was_hot => DoEvent::HotspotExit {
                method: m,
                class,
                invocation_instr,
            },
            // Classified while this invocation was in flight: report
            // nothing (its entry was not instrumented).
            MethodState::Hot(_) => DoEvent::None,
            MethodState::Cold => DoEvent::None,
        }
    }

    /// Summary for Table 4, computed over classified hotspots.
    pub fn table4_summary(&self, total_instr: u64) -> Table4Row {
        let mut hotspots = 0u64;
        let mut invocations = 0u64;
        let mut size_sum = 0u64;
        for (_, e) in self.db.hotspots() {
            hotspots += 1;
            invocations += e.invocations;
            size_sum += e.avg_size;
        }
        Table4Row {
            dynamic_instr: total_instr,
            hotspots,
            avg_hotspot_size: size_sum.checked_div(hotspots).unwrap_or(0),
            pct_code_in_hotspots: if total_instr > 0 {
                100.0 * self.stats.instr_in_hotspots as f64 / total_instr as f64
            } else {
                0.0
            },
            avg_invocations: if hotspots > 0 {
                invocations as f64 / hotspots as f64
            } else {
                0.0
            },
            identification_latency_pct: if total_instr > 0 {
                100.0 * self.stats.identification_instr as f64 / total_instr as f64
            } else {
                0.0
            },
        }
    }
}

/// One row of Table 4 (runtime hotspot characteristics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Total dynamic instructions.
    pub dynamic_instr: u64,
    /// Number of classified hotspots.
    pub hotspots: u64,
    /// Mean inclusive size per invocation across hotspots.
    pub avg_hotspot_size: u64,
    /// Percent of dynamic instructions inside at least one hotspot.
    pub pct_code_in_hotspots: f64,
    /// Mean invocations per hotspot.
    pub avg_invocations: f64,
    /// Percent of execution spent before enclosing methods were identified.
    pub identification_latency_pct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::{Block, MachineConfig};
    use ace_workloads::{Executor, MemPattern, ProgramBuilder, Step, Stmt};

    fn drive(program: &Program, config: DoConfig, limit: u64) -> (DoSystem<'_>, Machine, u64) {
        let mut machine = Machine::new(MachineConfig::table2()).unwrap();
        let mut dos = DoSystem::new(program, config);
        let mut exec = Executor::new(program);
        exec.set_instruction_limit(limit);
        let mut buf = Block::default();
        loop {
            match exec.step(&mut buf) {
                Step::Block => machine.exec_block(&buf),
                Step::Enter(m) => {
                    dos.on_enter(m, &mut machine);
                }
                Step::Exit(m) => {
                    dos.on_exit(m, &mut machine);
                }
                Step::Done => break,
            }
        }
        let total = exec.emitted_instructions();
        (dos, machine, total)
    }

    fn leaf_program(leaf_instr: u64, calls: u32) -> Program {
        let mut b = ProgramBuilder::new("t", 17);
        let pat = b.add_pattern(MemPattern::resident(0x1_0000, 4096));
        let leaf = b.add_method(
            "leaf",
            vec![Stmt::Compute {
                ninstr: leaf_instr,
                pattern: pat,
            }],
        );
        let main = b.add_method(
            "main",
            vec![Stmt::Call {
                callee: leaf,
                count: calls,
            }],
        );
        b.entry(main).build().unwrap()
    }

    #[test]
    fn promotion_after_threshold() {
        let p = leaf_program(1_000, 50);
        let (dos, _, _) = drive(&p, DoConfig::default(), u64::MAX);
        let leaf = MethodId(0);
        let e = dos.database().entry(leaf);
        assert!(e.is_hot() || e.state == MethodState::Probing);
        assert!(e.invocations >= 50 - 2);
        assert!(e.promoted_at.is_some());
        // main runs once: never promoted.
        assert_eq!(dos.database().entry(MethodId(1)).state, MethodState::Cold);
    }

    #[test]
    fn classification_uses_inclusive_size() {
        // leaf ~1K => TooSmall; a 120K wrapper => L1d; stage 1M => L2.
        let mut b = ProgramBuilder::new("t", 23);
        let pat = b.add_pattern(MemPattern::resident(0x1_0000, 4096));
        let leaf = b.add_method(
            "leaf",
            vec![Stmt::Compute {
                ninstr: 1_000,
                pattern: pat,
            }],
        );
        let child = b.add_method(
            "child",
            vec![
                Stmt::Compute {
                    ninstr: 20_000,
                    pattern: pat,
                },
                Stmt::Call {
                    callee: leaf,
                    count: 100,
                },
            ],
        );
        let stage = b.add_method(
            "stage",
            vec![Stmt::Call {
                callee: child,
                count: 9,
            }],
        );
        let main = b.add_method(
            "main",
            vec![Stmt::Call {
                callee: stage,
                count: 40,
            }],
        );
        let p = b.entry(main).build().unwrap();
        let (dos, _, _) = drive(&p, DoConfig::default(), u64::MAX);
        assert_eq!(
            dos.database().entry(leaf).class(),
            Some(HotspotClass::TooSmall)
        );
        assert_eq!(dos.database().entry(child).class(), Some(HotspotClass::L1d));
        assert_eq!(dos.database().entry(stage).class(), Some(HotspotClass::L2));
    }

    #[test]
    fn jit_cost_charged_once_per_hotspot() {
        let p = leaf_program(1_000, 100);
        let cfg = DoConfig::default();
        let (dos, _, _) = drive(&p, cfg.clone(), u64::MAX);
        assert_eq!(dos.stats().jit_compilations, 1, "only the leaf gets hot");
        assert!(dos.stats().jit_cycles >= cfg.jit_base_cycles);
    }

    #[test]
    fn hotspot_events_fire_after_classification() {
        let p = leaf_program(2_000, 100);
        let mut machine = Machine::new(MachineConfig::table2()).unwrap();
        let mut dos = DoSystem::new(&p, DoConfig::default());
        let mut exec = Executor::new(&p);
        let mut buf = Block::default();
        let mut enters = 0;
        let mut exits = 0;
        let mut classified = 0;
        loop {
            match exec.step(&mut buf) {
                Step::Block => machine.exec_block(&buf),
                Step::Enter(m) => {
                    if let DoEvent::HotspotEnter { .. } = dos.on_enter(m, &mut machine) {
                        enters += 1;
                    }
                }
                Step::Exit(m) => match dos.on_exit(m, &mut machine) {
                    DoEvent::HotspotExit {
                        invocation_instr, ..
                    } => {
                        exits += 1;
                        assert!(invocation_instr > 1_000);
                    }
                    DoEvent::HotspotClassified { class, .. } => {
                        classified += 1;
                        assert_eq!(class, HotspotClass::TooSmall);
                    }
                    _ => {}
                },
                Step::Done => break,
            }
        }
        assert_eq!(classified, 1);
        // threshold 5 + 2 probing invocations; ~93 instrumented ones left.
        assert!(enters > 70, "got {enters}");
        assert_eq!(enters, exits);
    }

    #[test]
    fn identification_latency_fraction_reasonable() {
        let p = leaf_program(5_000, 200);
        let (dos, _, total) = drive(&p, DoConfig::default(), u64::MAX);
        let row = dos.table4_summary(total);
        // 7 of 200 invocations run before classification => ~3.5%.
        assert!(
            row.identification_latency_pct > 1.0 && row.identification_latency_pct < 8.0,
            "got {}",
            row.identification_latency_pct
        );
        assert!(row.pct_code_in_hotspots > 85.0);
        assert_eq!(row.hotspots, 1);
    }

    #[test]
    fn preset_detection_end_to_end() {
        let p = ace_workloads::preset("db").unwrap();
        let (dos, _, total) = drive(&p, DoConfig::default(), 20_000_000);
        let row = dos.table4_summary(total);
        assert!(row.hotspots > 10, "hotspots: {}", row.hotspots);
        assert!(
            dos.database().count_class(HotspotClass::L1d) > 3,
            "L1D hotspots: {}",
            dos.database().count_class(HotspotClass::L1d)
        );
        assert!(
            dos.database().count_class(HotspotClass::L2) >= 1,
            "L2 hotspots: {}",
            dos.database().count_class(HotspotClass::L2)
        );
        assert!(
            row.pct_code_in_hotspots > 60.0,
            "coverage {}",
            row.pct_code_in_hotspots
        );
    }

    #[test]
    fn higher_threshold_slower_identification() {
        let p = leaf_program(5_000, 200);
        let (fast, _, t1) = drive(
            &p,
            DoConfig {
                hot_threshold: 5,
                ..DoConfig::default()
            },
            u64::MAX,
        );
        let (slow, _, t2) = drive(
            &p,
            DoConfig {
                hot_threshold: 50,
                ..DoConfig::default()
            },
            u64::MAX,
        );
        let f = fast.table4_summary(t1).identification_latency_pct;
        let s = slow.table4_summary(t2).identification_latency_pct;
        assert!(s > f, "threshold 50 ({s}) must identify later than 5 ({f})");
    }

    #[test]
    fn grain_binning_matches_paper_boundaries() {
        // The paper's size-class rule, exactly at the 50 K / 500 K edges.
        let two_cu = DoConfig::default();
        assert_eq!(two_cu.classify(49_999), HotspotClass::TooSmall);
        assert_eq!(two_cu.classify(50_000), HotspotClass::L1d);
        assert_eq!(two_cu.classify(499_999), HotspotClass::L1d);
        assert_eq!(two_cu.classify(500_000), HotspotClass::L2);
        assert_eq!(two_cu.classify(u64::MAX), HotspotClass::L2);

        // The window extension opens a 5 K–50 K band below the L1D grain.
        let three_cu = DoConfig::with_window();
        assert_eq!(three_cu.classify(4_999), HotspotClass::TooSmall);
        assert_eq!(three_cu.classify(5_000), HotspotClass::Window);
        assert_eq!(three_cu.classify(49_999), HotspotClass::Window);
        assert_eq!(three_cu.classify(50_000), HotspotClass::L1d);
        assert_eq!(three_cu.classify(500_000), HotspotClass::L2);
    }

    #[test]
    fn grain_binning_is_registry_driven() {
        use ace_sim::MachineConfig;
        // A machine that registers the DTLB contributes a 10 K grain with
        // no DO-system code change.
        let mut mc = MachineConfig::table2();
        mc.dtlb_configurable = true;
        let cfg = DoConfig::for_registry(&mc.cu_registry());
        assert_eq!(cfg.classify(4_999), HotspotClass::TooSmall);
        assert_eq!(cfg.classify(5_000), HotspotClass::Window);
        assert_eq!(cfg.classify(10_000), HotspotClass::Dtlb);
        assert_eq!(cfg.classify(49_999), HotspotClass::Dtlb);
        assert_eq!(cfg.classify(50_000), HotspotClass::L1d);
        assert_eq!(cfg.classify(500_000), HotspotClass::L2);

        // with_cu replaces an existing grain rather than duplicating it.
        let moved = DoConfig::default().with_cu(CuId::L1d, 40_000);
        assert_eq!(moved.grains.len(), 2);
        assert_eq!(moved.classify(40_000), HotspotClass::L1d);
    }
}
