//! Detection edge cases the preset workloads never exercise: deep
//! nesting, simultaneous promotion of caller and callee, instruction
//! limits cutting through probation, and the three-CU window class.

use ace_runtime::{DoConfig, DoEvent, DoSystem, HotspotClass, MethodState};
use ace_sim::{Block, Machine, MachineConfig};
use ace_workloads::{Executor, MemPattern, MethodId, Program, ProgramBuilder, Step, Stmt};

fn drive(program: &Program, config: DoConfig, limit: Option<u64>) -> (DoSystem<'_>, Machine) {
    let mut machine = Machine::new(MachineConfig::table2()).unwrap();
    let mut dos = DoSystem::new(program, config);
    let mut exec = Executor::new(program);
    if let Some(l) = limit {
        exec.set_instruction_limit(l);
    }
    let mut buf = Block::default();
    loop {
        match exec.step(&mut buf) {
            Step::Block => machine.exec_block(&buf),
            Step::Enter(m) => {
                dos.on_enter(m, &mut machine);
            }
            Step::Exit(m) => {
                dos.on_exit(m, &mut machine);
            }
            Step::Done => break,
        }
    }
    (dos, machine)
}

/// A chain of methods, each calling the next `fanout` times.
fn chain_program(depth: u32, fanout: u32, leaf_instr: u64) -> (Program, Vec<MethodId>) {
    let mut b = ProgramBuilder::new("chain", 11);
    let region = b.alloc_region(4096);
    let pat = b.add_pattern(MemPattern::resident(region, 4096));
    let mut ids = Vec::new();
    let mut callee = b.add_method(
        "level0",
        vec![Stmt::Compute {
            ninstr: leaf_instr,
            pattern: pat,
        }],
    );
    ids.push(callee);
    for d in 1..depth {
        callee = b.add_method(
            format!("level{d}"),
            vec![
                Stmt::Compute {
                    ninstr: 200,
                    pattern: pat,
                },
                Stmt::Call {
                    callee,
                    count: fanout,
                },
            ],
        );
        ids.push(callee);
    }
    let main = b.add_method("main", vec![Stmt::Call { callee, count: 64 }]);
    ids.push(main);
    (b.entry(main).build().unwrap(), ids)
}

#[test]
fn deep_nesting_classifies_every_level() {
    // 6 levels deep, fanout 3: inclusive sizes grow ~3x per level, so the
    // chain spans all three size classes.
    let (program, ids) = chain_program(6, 3, 2_000);
    let (dos, _m) = drive(&program, DoConfig::with_window(), None);
    // level0: 2K -> TooSmall at default window range start 5K... it is
    // below the window class: TooSmall.
    assert_eq!(
        dos.database().entry(ids[0]).class(),
        Some(HotspotClass::TooSmall)
    );
    // level1: ~6.2K -> Window class.
    assert_eq!(
        dos.database().entry(ids[1]).class(),
        Some(HotspotClass::Window)
    );
    // level3: ~57K -> L1d. level4: ~170K -> L1d. level5: ~515K -> L2.
    assert_eq!(
        dos.database().entry(ids[3]).class(),
        Some(HotspotClass::L1d)
    );
    assert_eq!(
        dos.database().entry(ids[4]).class(),
        Some(HotspotClass::L1d)
    );
    assert_eq!(dos.database().entry(ids[5]).class(), Some(HotspotClass::L2));
    // main runs once: cold forever.
    assert_eq!(
        dos.database().entry(*ids.last().unwrap()).state,
        MethodState::Cold
    );
}

#[test]
fn without_window_class_small_methods_stay_small() {
    let (program, ids) = chain_program(6, 3, 2_000);
    let (dos, _m) = drive(&program, DoConfig::default(), None);
    assert_eq!(
        dos.database().entry(ids[1]).class(),
        Some(HotspotClass::TooSmall)
    );
    assert_eq!(
        dos.database().entry(ids[2]).class(),
        Some(HotspotClass::TooSmall)
    );
}

#[test]
fn limit_mid_probation_is_clean() {
    // Cut execution while methods are still probing: no classification
    // event fires, and the database stays consistent.
    let (program, _ids) = chain_program(4, 4, 3_000);
    let threshold_instr = 60_000; // roughly into the promotion window
    let (dos, machine) = drive(&program, DoConfig::default(), Some(threshold_instr));
    for (_, entry) in dos.database().iter().enumerate().map(|(i, e)| (i, e.1)) {
        if entry.state == MethodState::Probing {
            assert!(entry.probe_count < dos.config().probe_invocations);
        }
        assert!(entry.total_instr <= machine.instret());
    }
    let t4 = dos.table4_summary(machine.instret());
    assert!(t4.pct_code_in_hotspots <= 100.0);
}

#[test]
fn caller_and_callee_promote_together() {
    // Caller and callee cross hot_threshold on the same invocation wave;
    // both must end up classified, with the caller's inclusive size
    // containing the callee's.
    let mut b = ProgramBuilder::new("pair", 3);
    let region = b.alloc_region(2048);
    let pat = b.add_pattern(MemPattern::resident(region, 2048));
    let inner = b.add_method(
        "inner",
        vec![Stmt::Compute {
            ninstr: 30_000,
            pattern: pat,
        }],
    );
    let outer = b.add_method(
        "outer",
        vec![
            Stmt::Compute {
                ninstr: 30_000,
                pattern: pat,
            },
            Stmt::Call {
                callee: inner,
                count: 2,
            },
        ],
    );
    let main = b.add_method(
        "main",
        vec![Stmt::Call {
            callee: outer,
            count: 40,
        }],
    );
    let program = b.entry(main).build().unwrap();
    let (dos, _m) = drive(&program, DoConfig::default(), None);
    let inner_e = dos.database().entry(inner);
    let outer_e = dos.database().entry(outer);
    assert_eq!(inner_e.class(), Some(HotspotClass::TooSmall)); // 30K < 50K
    assert_eq!(outer_e.class(), Some(HotspotClass::L1d)); // ~90K
    assert!(outer_e.avg_size > inner_e.avg_size * 2);
}

#[test]
fn classification_event_fires_exactly_once() {
    let mut b = ProgramBuilder::new("once", 9);
    let region = b.alloc_region(1024);
    let pat = b.add_pattern(MemPattern::resident(region, 1024));
    let leaf = b.add_method(
        "leaf",
        vec![Stmt::Compute {
            ninstr: 60_000,
            pattern: pat,
        }],
    );
    let main = b.add_method(
        "main",
        vec![Stmt::Call {
            callee: leaf,
            count: 30,
        }],
    );
    let program = b.entry(main).build().unwrap();

    let mut machine = Machine::new(MachineConfig::table2()).unwrap();
    let mut dos = DoSystem::new(&program, DoConfig::default());
    let mut exec = Executor::new(&program);
    let mut buf = Block::default();
    let mut classified = 0;
    let mut enters_after = 0;
    loop {
        match exec.step(&mut buf) {
            Step::Block => machine.exec_block(&buf),
            Step::Enter(m) => {
                if let DoEvent::HotspotEnter { .. } = dos.on_enter(m, &mut machine) {
                    enters_after += 1;
                }
            }
            Step::Exit(m) => {
                if let DoEvent::HotspotClassified {
                    method,
                    class,
                    avg_size,
                } = dos.on_exit(m, &mut machine)
                {
                    classified += 1;
                    assert_eq!(method, leaf);
                    assert_eq!(class, HotspotClass::L1d);
                    assert!((50_000..80_000).contains(&avg_size));
                }
            }
            Step::Done => break,
        }
    }
    assert_eq!(classified, 1);
    // threshold 5 + probing 2 leaves ~23 instrumented invocations.
    assert!((20..=25).contains(&enters_after), "got {enters_after}");
}

#[test]
fn jit_costs_scale_with_code_size() {
    let (program, _) = chain_program(5, 3, 4_000);
    let (dos, _m) = drive(&program, DoConfig::default(), None);
    let stats = dos.stats();
    assert!(stats.jit_compilations >= 4);
    assert!(
        stats.jit_cycles >= stats.jit_compilations * dos.config().jit_base_cycles,
        "each compilation costs at least the base"
    );
}
