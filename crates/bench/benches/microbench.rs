//! Criterion microbenchmarks for the simulation substrates: these measure
//! the *simulator's* throughput (how fast the reproduction runs), not the
//! simulated machine's performance.

use ace_core::{
    single_cu_list, ConfigTuner, Experiment, HotspotAceManager, HotspotManagerConfig, Measurement,
};
use ace_energy::EnergyModel;
use ace_phase::{BbvConfig, BbvDetector, WorkingSetConfig, WorkingSetDetector};
use ace_sim::{
    Block, BranchEvent, BranchPredictor, Cache, CacheGeometry, CuKind, Machine, MachineBatch,
    MachineConfig, MemAccess, SizeLevel, Tlb,
};
use ace_workloads::{preset, Executor};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    let geom = CacheGeometry {
        size_bytes: 64 << 10,
        ways: 2,
        block_bytes: 64,
        hit_latency: 1,
    };

    group.bench_function("access_hit", |b| {
        // Repeated same-line access: the memoized MRU fast path.
        let mut cache = Cache::new(geom).unwrap();
        cache.access(0x1000, false);
        b.iter(|| black_box(cache.access(black_box(0x1000), false)))
    });
    group.bench_function("access_hit_rotating", |b| {
        // Hit-dominated but alternating lines, which defeats the MRU memo:
        // measures the way-probe plus rank-promotion hit path.
        let addrs = [0x1000u64, 0x2040, 0x3080, 0x40C0];
        let mut cache = Cache::new(geom).unwrap();
        for &a in &addrs {
            cache.access(a, false);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 3;
            black_box(cache.access(black_box(addrs[i]), false))
        })
    });
    group.bench_function("access_stream", |b| {
        let mut cache = Cache::new(geom).unwrap();
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            black_box(cache.access(black_box(addr), false))
        })
    });
    group.bench_function("access_miss_dominated", |b| {
        // Store misses all landing in one set: every access takes the cold
        // miss path and evicts a dirty victim (writeback reported).
        let mut cache = Cache::new(geom).unwrap();
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64 << 10); // same-set stride
            black_box(cache.access(black_box(addr & ((64 << 20) - 1)), true))
        })
    });
    group.bench_function("resize_shrink_grow", |b| {
        let mut cache = Cache::new(geom).unwrap();
        for a in (0..65536u64).step_by(64) {
            cache.access(a, a % 128 == 0);
        }
        b.iter(|| {
            black_box(cache.resize(SizeLevel::SMALLEST));
            black_box(cache.resize(SizeLevel::LARGEST));
        })
    });
    group.bench_function("resize_churn", |b| {
        // Access bursts interleaved with shrink/grow transitions: the
        // pattern runtime tuning produces (trials at several levels with
        // flush casualties in between).
        let lvl2 = SizeLevel::new(2).unwrap();
        let mut cache = Cache::new(geom).unwrap();
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..64 {
                addr = addr.wrapping_add(64);
                cache.access(addr & 0xF_FFFF, true);
            }
            black_box(cache.resize(lvl2));
            for _ in 0..64 {
                addr = addr.wrapping_add(64);
                cache.access(addr & 0xF_FFFF, true);
            }
            black_box(cache.resize(SizeLevel::LARGEST));
        })
    });
    group.finish();
}

fn bench_predictor_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.throughput(Throughput::Elements(1));
    group.bench_function("branch_predict_update", |b| {
        let mut bp = BranchPredictor::new(2048);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(bp.predict_and_update(0x4000 + (i % 64) * 4, !i.is_multiple_of(3)))
        })
    });
    group.bench_function("tlb_translate", |b| {
        let mut tlb = Tlb::new(128, 4096);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(4096);
            black_box(tlb.translate(black_box(i % (1 << 22))))
        })
    });
    group.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    let block = Block {
        pc: 0x400,
        ninstr: 48,
        accesses: vec![
            MemAccess::load(0x10_0000),
            MemAccess::load(0x10_0040),
            MemAccess::store(0x10_0080),
        ],
        branch: Some(BranchEvent {
            pc: 0x438,
            taken: true,
        }),
    };
    group.throughput(Throughput::Elements(block.ninstr as u64));
    group.bench_function("exec_block", |b| {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        b.iter(|| m.exec_block(black_box(&block)))
    });
    group.bench_function("exec_block_hit_dominated", |b| {
        // A realistic ~14-reference block whose working set is resident:
        // the fused DTLB + L1D loop on its hit fast path.
        let hot = Block {
            pc: 0x400,
            ninstr: 48,
            accesses: (0..14)
                .map(|i| MemAccess::load(0x10_0000 + (i % 7) * 24))
                .collect(),
            branch: Some(BranchEvent {
                pc: 0x438,
                taken: true,
            }),
        };
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        m.exec_block(&hot); // warm the lines
        b.iter(|| m.exec_block(black_box(&hot)))
    });
    group.bench_function("exec_block_miss_heavy", |b| {
        // Streaming references that miss L1D (and often L2): the cold
        // miss path plus penalty accounting per reference.
        let mut stream = Block {
            pc: 0x400,
            ninstr: 48,
            accesses: (0..14).map(|i| MemAccess::load(i * 64)).collect(),
            branch: Some(BranchEvent {
                pc: 0x438,
                taken: false,
            }),
        };
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut base = 0u64;
        b.iter(|| {
            base = base.wrapping_add(14 * 64);
            for (i, a) in stream.accesses.iter_mut().enumerate() {
                a.addr = 0x100_0000 + ((base + i as u64 * 64) & ((256 << 20) - 1));
            }
            m.exec_block(black_box(&stream))
        })
    });
    group.bench_function("request_resize_guarded", |b| {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        m.request_resize(CuKind::L1d, SizeLevel::SMALLEST);
        // Subsequent requests are guard-rejected: measures the fast path.
        b.iter(|| black_box(m.request_resize(CuKind::L1d, SizeLevel::LARGEST)))
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    // Lane-batched vs scalar stepping at lane counts 1/4/8/16: each
    // iteration steps `lanes` machines through one block apiece, so
    // ns/iter divided by the lane count is the per-machine block cost —
    // the number that must shrink as independent per-lane dependency
    // chains overlap.
    let mut group = c.benchmark_group("batch");
    let make_blocks = |lanes: usize| -> Vec<Block> {
        (0..lanes)
            .map(|l| Block {
                pc: 0x400 + l as u64 * 0x100,
                ninstr: 48,
                accesses: (0..14)
                    .map(|i| MemAccess::load(0x10_0000 + l as u64 * 0x8000 + (i % 7) * 24))
                    .collect(),
                branch: Some(BranchEvent {
                    pc: 0x438,
                    taken: true,
                }),
            })
            .collect()
    };
    for lanes in [1usize, 4, 8, 16] {
        group.bench_function(&format!("exec_blocks_{lanes}lane"), |b| {
            let blocks = make_blocks(lanes);
            let machines: Vec<Machine> = (0..lanes)
                .map(|_| Machine::new(MachineConfig::table2()).unwrap())
                .collect();
            let mut batch = MachineBatch::new(machines);
            let work: Vec<(usize, &Block)> = blocks.iter().enumerate().collect();
            batch.exec_blocks(&work); // warm the lines
            b.iter(|| batch.exec_blocks(black_box(&work)))
        });
        group.bench_function(&format!("scalar_ref_{lanes}lane"), |b| {
            // The same work stepped lane-at-a-time: the scalar reference
            // the batched numbers are judged against.
            let blocks = make_blocks(lanes);
            let mut machines: Vec<Machine> = (0..lanes)
                .map(|_| Machine::new(MachineConfig::table2()).unwrap())
                .collect();
            for (m, block) in machines.iter_mut().zip(&blocks) {
                m.exec_block(block); // warm the lines
            }
            b.iter(|| {
                for (m, block) in machines.iter_mut().zip(&blocks) {
                    m.exec_block(black_box(block));
                }
            })
        });
    }
    group.finish();
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase");
    group.throughput(Throughput::Elements(1));
    group.bench_function("bbv_note_branch", |b| {
        let mut d = BbvDetector::new(BbvConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(4);
            d.note_branch(black_box(0x1000 + (i % 8192)), 48)
        })
    });
    group.bench_function("bbv_end_interval_64sigs", |b| {
        let mut d = BbvDetector::new(BbvConfig::default());
        // Pre-populate a realistic signature table.
        for k in 0..64u64 {
            for j in 0..16u64 {
                d.note_branch(k * 65536 + j * 4, 48);
            }
            d.end_interval();
        }
        b.iter(|| {
            d.note_branch(0x1234, 48);
            black_box(d.end_interval())
        })
    });
    group.bench_function("working_set_note_access", |b| {
        let mut d = WorkingSetDetector::new(WorkingSetConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(64);
            d.note_access(black_box(i % (1 << 20)))
        })
    });
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    let program = preset("db").unwrap();
    group.bench_function("executor_1M_instructions", |b| {
        b.iter(|| {
            let mut exec = Executor::new(&program);
            exec.set_instruction_limit(1_000_000);
            black_box(exec.measure())
        })
    });
    group.finish();
}

fn bench_tuner(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuner");
    group.bench_function("full_walk", |b| {
        b.iter(|| {
            let mut t = ConfigTuner::new(single_cu_list(CuKind::L1d), 0.02);
            let mut k = 0.0;
            while t.next_trial().is_some() {
                k += 0.1;
                t.record(Measurement {
                    instr: 100_000,
                    ipc: 2.0,
                    epi_nj: 1.0 - k,
                });
            }
            black_box(t.best())
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let program = preset("db").unwrap();
    group.bench_function("baseline_5M", |b| {
        b.iter(|| {
            black_box(
                Experiment::program(program.clone())
                    .instruction_limit(5_000_000)
                    .run()
                    .unwrap(),
            )
        })
    });
    group.bench_function("hotspot_managed_5M", |b| {
        b.iter(|| {
            let mut mgr = HotspotAceManager::new(
                HotspotManagerConfig::default(),
                EnergyModel::default_180nm(),
            );
            black_box(
                Experiment::program(program.clone())
                    .instruction_limit(5_000_000)
                    .run_with(&mut mgr)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_predictor_tlb,
    bench_machine,
    bench_batch,
    bench_detectors,
    bench_executor,
    bench_tuner,
    bench_end_to_end
);
criterion_main!(benches);
