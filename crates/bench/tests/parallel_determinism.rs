//! The engine's headline guarantee: a parallel run is *byte-identical* to a
//! serial one. `ExperimentSet::run_parallel(N)` must produce the same
//! `SchemeResults` (as serialized JSON), the same cached files, and the
//! same telemetry event counts at any worker-pool width.
//!
//! Runs are capped at a few million instructions via the base `RunConfig`
//! so the suite stays quick in debug builds; content-addressed cache keys
//! see the limit and keep these runs apart from full-length results.

use ace_bench::{ExperimentSet, SchemeResults};
use ace_core::RunConfig;
use ace_telemetry::{EventKind, Telemetry};
use std::path::PathBuf;

const PRESETS: [&str; 3] = ["db", "jess", "mpeg"];
const LIMIT: u64 = 3_000_000;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ace_parallel_determinism_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn limited() -> RunConfig {
    RunConfig {
        instruction_limit: Some(LIMIT),
        ..RunConfig::default()
    }
}

fn run_at_width(jobs: usize, tag: &str) -> (Vec<SchemeResults>, Vec<u64>, PathBuf) {
    let dir = temp_dir(tag);
    let telemetry = Telemetry::counting();
    let results = ExperimentSet::presets(PRESETS)
        .config(limited())
        .telemetry(&telemetry)
        .results_dir(dir.clone())
        .run_parallel(jobs)
        .expect("headline trio over three presets");
    let counts = EventKind::ALL.iter().map(|&k| telemetry.count(k)).collect();
    (results, counts, dir)
}

#[test]
fn parallel_runs_are_byte_identical_to_serial() {
    let (serial, serial_counts, serial_dir) = run_at_width(1, "serial");
    let (parallel, parallel_counts, parallel_dir) = run_at_width(4, "parallel");

    let serial_json = serde_json::to_string(&serial).unwrap();
    let parallel_json = serde_json::to_string(&parallel).unwrap();
    assert_eq!(
        serial_json, parallel_json,
        "jobs=4 must serialize byte-identically to jobs=1"
    );

    assert_eq!(
        serial_counts, parallel_counts,
        "per-kind telemetry event counts must match across widths"
    );
    assert!(
        serial_counts.iter().sum::<u64>() > 0,
        "the runs must actually emit telemetry"
    );

    // The cached artifacts themselves are byte-identical too.
    let mut names: Vec<String> = std::fs::read_dir(&serial_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names.len(), PRESETS.len(), "one cache file per preset");
    for name in &names {
        let a = std::fs::read(serial_dir.join(name)).unwrap();
        let b = std::fs::read(parallel_dir.join(name)).unwrap();
        assert_eq!(a, b, "cache file {name} differs between widths");
    }

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
}

/// Lane-batched headline runs reproduce scalar stepping exactly: the
/// results, the cache files, and the *full telemetry event stream*
/// (content and order — each lane traces into a buffered child absorbed
/// in member order, and groups merge in submission order).
#[test]
fn lane_batched_runs_are_byte_identical_to_scalar() {
    let run_at = |jobs: usize, lanes: usize, tag: &str| {
        let dir = temp_dir(tag);
        let (telemetry, sink) = Telemetry::buffered();
        let results = ExperimentSet::presets(PRESETS)
            .config(limited())
            .lanes(lanes)
            .telemetry(&telemetry)
            .results_dir(dir.clone())
            .run_parallel(jobs)
            .expect("headline trio over three presets");
        let json = serde_json::to_string(&results).unwrap();
        let events: Vec<String> = sink
            .drain()
            .iter()
            .map(|e| serde_json::to_string(e).unwrap())
            .collect();
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().into_string().unwrap(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        let _ = std::fs::remove_dir_all(&dir);
        (json, events, files)
    };
    let scalar = run_at(1, 1, "lanes_scalar");
    assert!(!scalar.1.is_empty(), "the runs must emit telemetry");
    for (jobs, lanes) in [(1usize, 4usize), (4, 4)] {
        let other = run_at(jobs, lanes, &format!("lanes_{jobs}_{lanes}"));
        let at = format!("jobs={jobs} lanes={lanes}");
        assert_eq!(scalar.0, other.0, "results differ at {at}");
        assert_eq!(scalar.1, other.1, "telemetry event stream differs at {at}");
        assert_eq!(scalar.2, other.2, "cache files differ at {at}");
    }
}

#[test]
fn second_run_hits_the_cache_and_skips_all_work() {
    let dir = temp_dir("cache_hit");
    let first = ExperimentSet::presets(PRESETS)
        .config(limited())
        .results_dir(dir.clone())
        .run_parallel(2)
        .unwrap();

    // Warm cache: the rerun must not simulate anything, so a counting
    // telemetry handle sees zero events.
    let telemetry = Telemetry::counting();
    let second = ExperimentSet::presets(PRESETS)
        .config(limited())
        .telemetry(&telemetry)
        .results_dir(dir.clone())
        .run_parallel(2)
        .unwrap();
    assert_eq!(
        telemetry.total_events(),
        0,
        "cached results must not re-run the simulator"
    );
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap(),
        "cache round-trip must be lossless"
    );

    // --fresh ignores the cache and simulates again.
    let fresh_tel = Telemetry::counting();
    let third = ExperimentSet::presets(PRESETS)
        .config(limited())
        .telemetry(&fresh_tel)
        .results_dir(dir.clone())
        .fresh(true)
        .run_parallel(2)
        .unwrap();
    assert!(
        fresh_tel.total_events() > 0,
        "fresh(true) must bypass the cache"
    );
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&third).unwrap(),
        "fresh rerun reproduces the same bytes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_preset_propagates_as_an_error() {
    let dir = temp_dir("bad_preset");
    let err = ExperimentSet::presets(["db", "no_such_workload"])
        .config(limited())
        .results_dir(dir.clone())
        .run_parallel(2)
        .unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("no_such_workload"),
        "error must name the failing job: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
