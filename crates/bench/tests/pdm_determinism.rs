//! The pdm experiment inherits the engine's headline guarantee: a
//! parallel `run_pdm` is byte-identical to a serial one — same serialized
//! results, same rendered report, same cache files.
//!
//! Runs are instruction-limited via `PdmOptions::config` so the suite
//! stays quick in debug builds; the cache key sees the limit, keeping
//! these entries apart from full-length results.

use ace_bench::experiments::pdm::{render, run_pdm, PdmOptions};
use ace_core::RunConfig;
use std::path::PathBuf;

const LIMIT: u64 = 2_000_000;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ace_pdm_determinism_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_at_width(jobs: usize, tag: &str) -> (String, String, PathBuf) {
    let dir = temp_dir(tag);
    let results = run_pdm(&PdmOptions {
        jobs,
        results_dir: Some(dir.clone()),
        config: Some(RunConfig {
            instruction_limit: Some(LIMIT),
            ..RunConfig::default()
        }),
        ..PdmOptions::default()
    })
    .expect("pdm suite over six workloads");
    let json = serde_json::to_string(&results).unwrap();
    let text = render(&results).text;
    (json, text, dir)
}

#[test]
fn parallel_pdm_is_byte_identical_to_serial() {
    let (serial_json, serial_text, serial_dir) = run_at_width(1, "serial");
    let (parallel_json, parallel_text, parallel_dir) = run_at_width(4, "parallel");

    assert_eq!(
        serial_json, parallel_json,
        "jobs=4 must serialize byte-identically to jobs=1"
    );
    assert_eq!(
        serial_text, parallel_text,
        "the rendered report must match across widths"
    );

    let mut names: Vec<String> = std::fs::read_dir(&serial_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "the run must write pdm cache files");
    assert!(
        names.iter().all(|n| n.starts_with("pdm-")),
        "pdm caches live in the pdm- namespace: {names:?}"
    );
    for name in &names {
        let a = std::fs::read(serial_dir.join(name)).unwrap();
        let b = std::fs::read(parallel_dir.join(name)).unwrap();
        assert_eq!(a, b, "cache file {name} differs between widths");
    }

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
}
