//! End-to-end contract of the trace pipeline: a JSONL trace recorded by
//! the parallel engine is byte-identical at any pool width, analyzes
//! identically, and round-trips the perf-baseline machinery.
//!
//! This is the test behind `ace trace summarize` being diffable in CI:
//! it runs the same experiment set at width 1 and width 4, then asserts
//! the trace files, analyses, and rendered summaries are equal.

use ace_bench::{BenchRun, ExperimentSet};
use ace_core::RunConfig;
use ace_telemetry::Telemetry;
use std::path::PathBuf;

const PRESETS: [&str; 2] = ["db", "jess"];
const LIMIT: u64 = 3_000_000;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ace_trace_pipeline_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn limited() -> RunConfig {
    RunConfig {
        instruction_limit: Some(LIMIT),
        ..RunConfig::default()
    }
}

/// Runs the preset trio at `width`, tracing to a JSONL file, and returns
/// the raw trace bytes.
fn trace_at_width(width: usize, tag: &str) -> Vec<u8> {
    let dir = temp_dir(tag);
    let trace_path = dir.join("trace.jsonl");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let telemetry = Telemetry::jsonl(&trace_path).expect("jsonl sink");
    ExperimentSet::presets(PRESETS)
        .config(limited())
        .fresh(true)
        .results_dir(dir.join("results"))
        .telemetry(&telemetry)
        .run_parallel(width)
        .expect("runs succeed");
    telemetry.flush();
    let bytes = std::fs::read(&trace_path).expect("trace file");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

#[test]
fn summaries_are_byte_identical_across_pool_widths() {
    let serial = trace_at_width(1, "w1");
    let parallel = trace_at_width(4, "w4");
    assert!(!serial.is_empty(), "traced runs must emit events");
    assert_eq!(serial, parallel, "trace files must be byte-identical");

    let a = ace_trace::analyze_reader(serial.as_slice()).expect("serial trace analyzes");
    let b = ace_trace::analyze_reader(parallel.as_slice()).expect("parallel trace analyzes");
    assert_eq!(a, b);
    assert_eq!(ace_trace::summarize(&a), ace_trace::summarize(&b));
    assert_eq!(ace_trace::timeline(&a), ace_trace::timeline(&b));
    assert_eq!(ace_trace::chrome_trace(&a), ace_trace::chrome_trace(&b));

    // The same trace diffed against itself never regresses.
    let report = ace_trace::diff(&a, &b, &ace_trace::DiffThresholds::default());
    assert!(!report.regressed(), "{}", report.render());
}

#[test]
fn engine_histograms_cover_every_scheme_job() {
    let dir = temp_dir("hist");
    let telemetry = Telemetry::counting();
    ExperimentSet::presets(PRESETS)
        .config(limited())
        .fresh(true)
        .results_dir(&dir)
        .telemetry(&telemetry)
        .run_parallel(2)
        .expect("runs succeed");
    let _ = std::fs::remove_dir_all(&dir);
    let metrics = telemetry.metrics().expect("enabled handle has metrics");
    let summary = metrics.summary();
    assert!(summary.contains("engine.job_wall_ms"), "{summary}");
    assert!(summary.contains("engine.queue_wait_ms"), "{summary}");
    // 2 presets x 3 schemes = 6 jobs, one histogram sample each.
    assert!(summary.contains("n=6"), "{summary}");
}

#[test]
fn bench_baseline_records_one_entry_per_workload() {
    let dir = temp_dir("bench");
    let outcomes = ExperimentSet::presets(PRESETS)
        .config(limited())
        .fresh(true)
        .results_dir(&dir)
        .run_detailed(2)
        .expect("runs succeed");
    assert_eq!(outcomes.len(), PRESETS.len());
    assert!(outcomes.iter().all(|o| !o.cached));
    assert!(outcomes.iter().all(|o| o.wall.as_nanos() > 0));

    let mut bench = BenchRun::new(2);
    for outcome in &outcomes {
        bench.push_workload(outcome);
    }
    let path = dir.join("BENCH_run.json");
    bench.write(&path).expect("baseline writes");
    let back = BenchRun::load(&path).expect("baseline loads");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(back.entries.len(), PRESETS.len());
    for (entry, preset) in back.entries.iter().zip(PRESETS) {
        assert_eq!(entry.kind, "workload");
        assert_eq!(entry.name, preset);
        assert!(entry.wall_ms > 0.0);
        let headline = entry
            .headline
            .as_ref()
            .expect("workload entries carry metrics");
        assert!(headline.baseline_ipc > 0.0);
    }
}

#[test]
fn cache_hits_are_marked_and_free() {
    let dir = temp_dir("cache");
    let first = ExperimentSet::presets(["db"])
        .config(limited())
        .fresh(true)
        .results_dir(&dir)
        .run_detailed(1)
        .expect("fresh run");
    assert!(!first[0].cached);
    let second = ExperimentSet::presets(["db"])
        .config(limited())
        .results_dir(&dir)
        .run_detailed(1)
        .expect("cached run");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(second[0].cached);
    assert_eq!(second[0].wall.as_nanos(), 0);
    assert_eq!(
        serde_json::to_string(&first[0].results).unwrap(),
        serde_json::to_string(&second[0].results).unwrap(),
        "cache must return identical results"
    );
}
