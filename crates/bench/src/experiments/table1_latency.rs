//! **Table 1** — Qualitative latency comparison of the temporal (BBV) and
//! DO-based approaches, quantified from the measured runs: new-phase
//! identification latency, recurring-phase identification latency, and
//! tuning latency.

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let all = ctx.headline()?;
    let mut report = Report::new("table1_latency");
    let out = &mut report.text;

    // New-phase identification: hotspot = hot_threshold invocations
    // (measured as % of execution); BBV = at least one sampling interval.
    let hs_ident = mean(
        all.iter()
            .map(|r| r.hotspot.table4.identification_latency_pct),
    );
    // Tuning latency: configurations tested per tuned unit.
    let hs_trials: f64 = mean(all.iter().map(|r| {
        let h = &r.hotspot_report;
        let tuned = h.tuned_hotspots.max(1);
        (h.l1d().tunings + h.l2().tunings) as f64 / tuned as f64
    }));
    let bbv_trials: f64 = mean(
        all.iter()
            .filter(|r| r.bbv_report.tuned_phases > 0)
            .map(|r| {
                let b = &r.bbv_report;
                b.tunings as f64 / b.tuned_phases.max(1) as f64
            }),
    );

    outln!(
        out,
        "Table 1: identification and tuning latency comparison (measured)\n"
    );
    let rows = vec![
        vec![
            "new phase identification".to_string(),
            "≥ 1 sampling interval (1M instr)".to_string(),
            format!("hot_threshold invocations ({hs_ident:.1}% of execution)"),
        ],
        vec![
            "recurring phase identification".to_string(),
            "≥ 1 sampling interval".to_string(),
            "none (instrumented entry)".to_string(),
        ],
        vec![
            "tuning latency (configs tested)".to_string(),
            format!("{bbv_trials:.1} per tuned phase (of 16 combinatorial)"),
            format!("{hs_trials:.1} per tuned hotspot (of 4 decoupled)"),
        ],
    ];
    outln!(
        out,
        "{}",
        format_table(&["metric", "BBV (temporal)", "DO-based (hotspot)"], &rows)
    );
    Ok(report)
}
