//! **Extension: Phase Distance Mapping** — prediction vs search.
//!
//! The hotspot scheme *searches*: every adaptable hotspot walks its
//! candidate-configuration list one trial invocation at a time. Phase
//! Distance Mapping (Adegbija et al.) keeps the same substrate but
//! *predicts*: each tuned hotspot deposits a behavioral vector
//! (reference-trial IPC, energy-per-instruction, log₂ invocation size)
//! into a knowledge table, and a new hotspot whose vector lands within a
//! distance threshold of an already-tuned one skips the walk and installs
//! the neighbour's configuration directly.
//!
//! This experiment quantifies where prediction beats search. Alongside
//! four paper presets it runs two synthetic workloads built to sit at the
//! extremes:
//!
//! * `pdm_shortphase` — many short, behaviorally similar kernels. Search
//!   pays the full list walk per kernel; PDM pays it once and predicts
//!   the rest.
//! * `pdm_drift` — a hot kernel whose cache behavior is periodically
//!   wrecked by a streaming polluter. Every drift retune re-enters
//!   tuning, and PDM re-predicts from the table instead of re-walking.
//!
//! Results are cached content-addressed under `results/pdm-<workload>-
//! <key>.json` (the `pdm-` namespace; see `check_results`).

use super::{outln, ExpCtx, Report};
use crate::{cache_key, format_table, results_dir, run_jobs, BenchError, BenchResult, Job};
use ace_core::{Experiment, HotspotReport, PdmReport, RunConfig, RunRecord, SchemeExt};
use ace_telemetry::Telemetry;
use ace_workloads::{MemPattern, Program, ProgramBuilder, Stmt};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The workloads of the prediction-vs-search comparison: four paper
/// presets plus the two synthetic extremes.
pub const PDM_WORKLOADS: [&str; 6] = ["db", "jess", "javac", "mpeg", "pdm_shortphase", "pdm_drift"];

/// The schemes each workload runs, in run order.
const SCHEMES: [&str; 3] = ["baseline", "hotspot", "pdm"];

/// One workload's three runs plus the scheme reports — the unit cached
/// under the `pdm-` results namespace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PdmResults {
    /// Workload name (a preset or one of the synthetic extremes).
    pub workload: String,
    /// Non-adaptive run (maximum cache sizes).
    pub baseline: RunRecord,
    /// Searching hotspot-scheme run.
    pub hotspot: RunRecord,
    /// Hotspot scheme report.
    pub hotspot_report: HotspotReport,
    /// Predicting PDM run.
    pub pdm: RunRecord,
    /// PDM scheme report.
    pub pdm_report: PdmReport,
}

impl PdmResults {
    /// Configuration trials the searching scheme measured.
    pub fn search_trials(&self) -> u64 {
        self.hotspot_report.cu.iter().map(|s| s.tunings).sum()
    }

    /// Configuration trials the predicting scheme measured.
    pub fn pdm_trials(&self) -> u64 {
        self.pdm_report.base.cu.iter().map(|s| s.tunings).sum()
    }

    /// Trials prediction avoided relative to search (negative when the
    /// predicting run measured more).
    pub fn trials_saved_vs_search(&self) -> i64 {
        self.search_trials() as i64 - self.pdm_trials() as i64
    }

    /// Total cache-energy saving vs baseline, in percent.
    pub fn saving_pct(&self, run: &RunRecord) -> f64 {
        100.0 * (1.0 - run.energy.total_nj() / self.baseline.energy.total_nj())
    }

    /// Slowdown vs baseline, in percent.
    pub fn slowdown_pct(&self, run: &RunRecord) -> f64 {
        100.0 * run.slowdown_vs(&self.baseline)
    }
}

/// Resolves a PDM workload name: a paper preset, or one of the two
/// synthetic programs defined here.
pub fn program_for(name: &str) -> Option<Program> {
    match name {
        "pdm_shortphase" => Some(shortphase_program()),
        "pdm_drift" => Some(drift_program()),
        _ => ace_workloads::preset(name),
    }
}

/// Many short, behaviorally similar kernels run back-to-back: the
/// short-phase extreme. Search walks the L1D candidate list once per
/// kernel; PDM walks it for the first kernel and predicts the rest.
fn shortphase_program() -> Program {
    let mut b = ProgramBuilder::new("pdm_shortphase", 101);
    let mut kernels = Vec::new();
    for i in 0..24u32 {
        // Working sets vary slightly so kernels are distinct methods with
        // near-identical behavioral vectors.
        let ws = 4096 + 64 * u64::from(i);
        let base = b.alloc_region(ws);
        let pat = b.add_pattern(MemPattern::resident(base, ws));
        let kernel = b.add_method(
            format!("kernel{i}"),
            vec![Stmt::Compute {
                ninstr: 60_000,
                pattern: pat,
            }],
        );
        kernels.push(kernel);
    }
    let body = kernels
        .iter()
        .map(|&k| Stmt::Call {
            callee: k,
            count: 24,
        })
        .collect();
    let main = b.add_method("main", body);
    b.entry(main).build().expect("shortphase program validates")
}

/// A hot kernel periodically wrecked by a streaming polluter: the
/// drift-heavy extreme. Each polluted era drops the kernel's IPC past the
/// retune threshold; search re-walks its list on every retune, PDM
/// re-predicts from the knowledge table.
fn drift_program() -> Program {
    let mut b = ProgramBuilder::new("pdm_drift", 202);
    // Three identical cache-sensitive kernels: random walks over working
    // sets larger than the largest L1D (but jointly L2-resident), so
    // refilling one from memory after the polluter flushes the hierarchy
    // costs more cycles than the kernel's own computation — IPC collapses
    // past the 50% retune threshold, and all three drift together.
    let mut hots = Vec::new();
    for i in 0..3u32 {
        let ws = 256 << 10;
        let base = b.alloc_region(ws);
        let pat = b.add_pattern(MemPattern::random(base, ws));
        hots.push(b.add_method(
            format!("hot{i}"),
            vec![Stmt::Compute {
                ninstr: 60_000,
                pattern: pat,
            }],
        ));
    }
    // The polluter streams a region twice the L2, evicting the kernels'
    // working sets from every cache level between their invocations.
    let pollute_region = 2 << 20;
    let pollute_base = b.alloc_region(pollute_region);
    let pollute_pat = b.add_pattern(MemPattern::streaming(pollute_base, pollute_region));
    let pollute = b.add_method(
        "pollute",
        vec![Stmt::Compute {
            ninstr: 600_000,
            pattern: pollute_pat,
        }],
    );
    let round: Vec<Stmt> = hots
        .iter()
        .map(|&h| Stmt::Call {
            callee: h,
            count: 1,
        })
        .collect();
    // Quiet era (the kernels converge on a warm cache), polluted era
    // (every invocation starts cold → IPC drifts → all three retune),
    // trailing quiet era. When the drift wave hits, search re-walks the
    // candidate list for each kernel; PDM re-walks it for the first and
    // predicts the other two from the fresh table entry.
    let mut polluted_round = vec![Stmt::Call {
        callee: pollute,
        count: 1,
    }];
    polluted_round.extend(round.clone());
    let body = vec![
        Stmt::Loop {
            count: 48,
            body: round.clone(),
        },
        Stmt::Loop {
            count: 32,
            body: polluted_round,
        },
        Stmt::Loop {
            count: 32,
            body: round,
        },
    ];
    let main = b.add_method("main", body);
    b.entry(main).build().expect("drift program validates")
}

/// How [`run_pdm`] executes: pool width, cache policy, cache directory,
/// and observability.
pub struct PdmOptions {
    /// Worker-pool width; output is byte-identical at any width.
    pub jobs: usize,
    /// Ignore cached results and re-run.
    pub fresh: bool,
    /// Cache directory override (default [`results_dir`]).
    pub results_dir: Option<PathBuf>,
    /// Base run configuration override (default [`RunConfig::default`]) —
    /// the cache key sees it, so e.g. instruction-limited test runs never
    /// collide with full-length results.
    pub config: Option<RunConfig>,
    /// Observability handle shared by every run.
    pub telemetry: Telemetry,
}

impl Default for PdmOptions {
    fn default() -> PdmOptions {
        PdmOptions {
            jobs: 1,
            fresh: false,
            results_dir: None,
            config: None,
            telemetry: Telemetry::off(),
        }
    }
}

/// The cache file names [`run_pdm`] reads and writes under the current
/// keys — `check_results` validates the committed `pdm-` namespace
/// against exactly this set.
pub fn expected_cache_files() -> Vec<String> {
    let base = RunConfig::default();
    PDM_WORKLOADS
        .iter()
        .map(|name| format!("pdm-{name}-{}.json", cache_key(name, &base)))
        .collect()
}

fn try_load(path: &Path) -> Option<PdmResults> {
    let data = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&data).ok()
}

fn save(path: &Path, results: &PdmResults) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, serde_json::to_string(results).expect("serializable"))?;
    std::fs::rename(&tmp, path)
}

/// Runs the six workloads under baseline/hotspot/pdm on the parallel
/// engine and returns the per-workload results in [`PDM_WORKLOADS`]
/// order — byte-identical at any pool width.
///
/// # Errors
///
/// Fails when any run fails; every job still runs, and the error
/// aggregates all failures.
pub fn run_pdm(opts: &PdmOptions) -> BenchResult<Vec<PdmResults>> {
    let dir = opts.results_dir.clone().unwrap_or_else(results_dir);
    let base = opts.config.clone().unwrap_or_default();

    // Phase 1: resolve caches; collect jobs for the misses.
    let mut cached: Vec<Option<PdmResults>> = Vec::with_capacity(PDM_WORKLOADS.len());
    let mut pool: Vec<Job<ace_core::SchemeRun>> = Vec::new();
    for name in PDM_WORKLOADS {
        let path = dir.join(format!("pdm-{name}-{}.json", cache_key(name, &base)));
        if !opts.fresh {
            if let Some(hit) = try_load(&path) {
                cached.push(Some(hit));
                continue;
            }
        }
        cached.push(None);
        let program =
            program_for(name).ok_or_else(|| BenchError::msg(format!("unknown workload {name}")))?;
        for scheme in SCHEMES {
            let program = program.clone();
            let base = base.clone();
            pool.push(Job::new(format!("pdm/{name}/{scheme}"), move |tel| {
                Ok(Experiment::program(program)
                    .config(base)
                    .scheme(scheme)
                    .telemetry(tel)
                    .run_scheme()?)
            }));
        }
    }

    // Phase 2: fan out.
    let outcomes = run_jobs(pool, opts.jobs.max(1), &opts.telemetry);

    // Phase 3: merge in workload order; write caches; aggregate errors.
    let mut outcomes = outcomes.into_iter();
    let mut results = Vec::with_capacity(PDM_WORKLOADS.len());
    let mut failures: Vec<String> = Vec::new();
    for (name, hit) in PDM_WORKLOADS.iter().zip(cached) {
        if let Some(hit) = hit {
            results.push(hit);
            continue;
        }
        let mut runs = Vec::with_capacity(SCHEMES.len());
        for _ in SCHEMES {
            let outcome = outcomes.next().expect("one outcome per job");
            match outcome.result {
                Ok(run) => runs.push(run),
                Err(e) => failures.push(format!("{}: {e}", outcome.key)),
            }
        }
        if runs.len() != SCHEMES.len() {
            continue; // failure already recorded
        }
        let mut runs = runs.into_iter();
        let baseline = runs.next().expect("baseline run");
        let hotspot = runs.next().expect("hotspot run");
        let pdm = runs.next().expect("pdm run");
        let (SchemeExt::Hotspot(hotspot_report), SchemeExt::Pdm(pdm_report)) =
            (hotspot.report.ext, pdm.report.ext)
        else {
            unreachable!("scheme order is fixed by SCHEMES")
        };
        let assembled = PdmResults {
            workload: (*name).to_string(),
            baseline: baseline.record,
            hotspot: hotspot.record,
            hotspot_report,
            pdm: pdm.record,
            pdm_report,
        };
        let path = dir.join(format!("pdm-{name}-{}.json", cache_key(name, &base)));
        if let Err(e) = save(&path, &assembled) {
            eprintln!("warning: could not cache {}: {e}", path.display());
        }
        results.push(assembled);
    }
    if !failures.is_empty() {
        return Err(BenchError::msg(failures.join("; ")));
    }
    Ok(results)
}

/// Renders the prediction-vs-search report from completed results.
pub fn render(results: &[PdmResults]) -> Report {
    let mut report = Report::new("pdm");
    let mut rows = Vec::new();
    for r in results {
        let p = &r.pdm_report;
        rows.push(vec![
            r.workload.clone(),
            format!(
                "{:.1}/{:.2}",
                r.saving_pct(&r.hotspot),
                r.slowdown_pct(&r.hotspot)
            ),
            format!("{:.1}/{:.2}", r.saving_pct(&r.pdm), r.slowdown_pct(&r.pdm)),
            format!("{}", r.search_trials()),
            format!("{}", r.pdm_trials()),
            format!("{}", r.trials_saved_vs_search()),
            format!(
                "{}/{} ({:.0}%)",
                p.predict_hits,
                p.predict_hits + p.predict_misses,
                100.0 * p.hit_rate()
            ),
            format!("{}", p.known_phases),
        ]);
    }
    let out = &mut report.text;
    outln!(
        out,
        "Extension: Phase Distance Mapping — prediction vs search"
    );
    outln!(
        out,
        "hotspot searches its candidate list per hotspot; pdm predicts the"
    );
    outln!(
        out,
        "configuration from behaviorally nearest already-tuned phases\n"
    );
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "hot sav/slow",
                "pdm sav/slow",
                "search",
                "pdmtrials",
                "saved",
                "hits (rate)",
                "known",
            ],
            &rows
        )
    );
    report.sections.push((
        "Extension: Phase Distance Mapping".to_string(),
        report.text.clone(),
    ));
    report
}

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let results = run_pdm(&PdmOptions {
        telemetry: ctx.telemetry.clone(),
        ..PdmOptions::default()
    })?;
    Ok(render(&results))
}
