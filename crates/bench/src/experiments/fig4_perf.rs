//! **Figure 4** — Performance degradation of the adaptation schemes over
//! the non-adaptive baseline.

use super::{outln, ExpCtx, Report};
use crate::{bar_chart, format_table, mean, BenchResult};

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let all = ctx.headline()?;
    let mut report = Report::new("fig4_perf");
    let out = &mut report.text;
    outln!(out, "Figure 4: slowdown vs baseline (%)");
    outln!(
        out,
        "(paper: BBV 1.34-2.38% avg 1.87%; hotspot 0.4-2.47% avg 1.56%)\n"
    );
    let mut rows = Vec::new();
    for r in &all {
        rows.push(vec![
            r.workload.clone(),
            format!("{:.2}", r.bbv_slowdown_pct()),
            format!("{:.2}", r.hotspot_slowdown_pct()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.2}", mean(all.iter().map(|r| r.bbv_slowdown_pct()))),
        format!("{:.2}", mean(all.iter().map(|r| r.hotspot_slowdown_pct()))),
    ]);
    let table = format_table(&["bench", "BBV", "hotspot"], &rows);
    let labels: Vec<&str> = all.iter().map(|r| r.workload.as_str()).collect();
    let chart = bar_chart(
        &labels,
        &[
            ("BBV", all.iter().map(|r| r.bbv_slowdown_pct()).collect()),
            (
                "hot",
                all.iter().map(|r| r.hotspot_slowdown_pct()).collect(),
            ),
        ],
        42,
    );
    outln!(out, "{table}");
    outln!(out, "{chart}");
    report.sections.push((
        "Figure 4: slowdown (%)".to_string(),
        format!(
            "{table}
{chart}"
        ),
    ));
    Ok(report)
}
