//! **Extension: genuine multithreading.**
//!
//! The paper's mtrt is "a dual-threaded program that ray traces an image
//! file", executed under Dynamic SimpleScalar's thread support. The main
//! evaluation models it as interleaved task sets; this experiment runs a
//! *really* time-multiplexed two-thread variant — two render workers with
//! disjoint code, sharing one scene region and the one simulated core in
//! 50 K-instruction quanta — and shows the hotspot framework keeps working
//! when phases interleave at quantum granularity: per-thread call stacks
//! keep detection sound, and the hardware guard absorbs the threads'
//! competing configuration requests.

use super::{outln, ExpCtx, Report};
use crate::{format_table, BenchResult};
use ace_core::{
    BbvAceManager, BbvManagerConfig, Experiment, HotspotAceManager, HotspotManagerConfig,
    NullManager,
};
use ace_energy::EnergyModel;
use ace_workloads::mtrt_threaded;

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ext_threads");
    let (program, entries) = mtrt_threaded();
    let model = EnergyModel::default_180nm();
    // A 1 M-instruction quantum is 1 ms at the 1 GHz design point — the
    // order of a Java green-thread timeslice; much shorter quanta make the
    // threads' differing L1D choices thrash the shared cache on every
    // switch (measured below via the guard-rejection count).
    let quantum = 1_000_000;
    let experiment = || {
        Experiment::program(program.clone())
            .threaded(&entries, quantum)
            .telemetry(&ctx.telemetry)
    };

    let base = experiment().run_with(&mut NullManager)?;

    let mut hs = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let hot = experiment().run_with(&mut hs)?;
    let hrep = hs.report();

    let mut bbv = BbvAceManager::new(BbvManagerConfig::default(), model);
    let bb = experiment().run_with(&mut bbv)?;
    let brep = bbv.report();

    let out = &mut report.text;
    outln!(
        out,
        "Extension: dual-threaded mtrt (two render workers, shared scene,"
    );
    outln!(out, "1M-instruction quanta on one core)\n");
    outln!(
        out,
        "baseline: {} instructions, IPC {:.3}, {} hotspots detected across threads",
        base.instret,
        base.ipc,
        hot.table4.hotspots,
    );
    let rows = vec![
        vec![
            "hotspot".to_string(),
            format!("{:.1}", 100.0 * hot.l1d_saving_vs(&base)),
            format!("{:.1}", 100.0 * hot.l2_saving_vs(&base)),
            format!("{:.2}", 100.0 * hot.slowdown_vs(&base)),
            format!(
                "{}/{}",
                hrep.tuned_hotspots,
                hrep.l1d_hotspots() + hrep.l2_hotspots()
            ),
            format!("{}", hot.counters.guard_rejections),
        ],
        vec![
            "BBV".to_string(),
            format!("{:.1}", 100.0 * bb.l1d_saving_vs(&base)),
            format!("{:.1}", 100.0 * bb.l2_saving_vs(&base)),
            format!("{:.2}", 100.0 * bb.slowdown_vs(&base)),
            format!("{}/{}", brep.tuned_phases, brep.phases),
            format!("{}", bb.counters.guard_rejections),
        ],
    ];
    outln!(
        out,
        "{}",
        format_table(
            &[
                "scheme",
                "L1D sav%",
                "L2 sav%",
                "slow%",
                "tuned",
                "guard rej"
            ],
            &rows
        )
    );
    outln!(
        out,
        "Per-thread call stacks keep hotspot nesting sound under quantum"
    );
    outln!(
        out,
        "interleaving, and every hotspot still tunes. The BBV baseline is"
    );
    outln!(
        out,
        "blinded outright: each 1M sampling interval blends both threads'"
    );
    outln!(
        out,
        "code, so its signatures never stabilize and nothing tunes — under"
    );
    outln!(
        out,
        "multithreading the positional approach's advantage is structural,"
    );
    outln!(
        out,
        "not incremental. The residual slowdown is cross-thread cache"
    );
    outln!(
        out,
        "interference amplified by the threads' differing L1D choices."
    );
    Ok(report)
}
