//! **Extension: phase-detector comparison** (the methodology of Dhodapkar &
//! Smith's "Comparing Program Phase Detection Techniques", MICRO 2003,
//! which the paper cites as \\[10\\] to justify its BBV choice).
//!
//! Runs the BBV and working-set detectors over the same block streams and
//! compares phase counts, stability, and (for BBV) the per-phase IPC
//! homogeneity that makes a detector's phases worth tuning.

use super::{outln, ExpCtx, Report};
use crate::{format_table, BenchResult};
use ace_core::{BbvAceManager, BbvManagerConfig, Experiment};
use ace_energy::EnergyModel;
use ace_phase::{BranchCounterConfig, BranchCounterDetector, WorkingSetConfig, WorkingSetDetector};
use ace_sim::{Block, BlockSource};
use ace_workloads::{Executor, PRESET_NAMES};

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ext_detectors");
    let out = &mut report.text;
    outln!(
        out,
        "Extension: BBV vs working-set phase detection over identical executions\n"
    );
    let mut rows = Vec::new();
    for name in PRESET_NAMES {
        let program = ace_workloads::preset(name).unwrap();

        // Working-set signatures and branch counters over 1M-instruction
        // intervals, fed from the same execution.
        let mut ws = WorkingSetDetector::new(WorkingSetConfig::default());
        let mut bc = BranchCounterDetector::new(BranchCounterConfig::default());
        let mut exec = Executor::new(&program);
        let mut buf = Block::default();
        let mut emitted = 0u64;
        let mut boundary = 1_000_000u64;
        let mut ws_same = 0u64;
        let mut ws_total = 0u64;
        while exec.next_block(&mut buf) {
            emitted += buf.ninstr as u64;
            for a in &buf.accesses {
                ws.note_access(a.addr);
            }
            bc.note_branches(buf.branch.is_some() as u64);
            if emitted >= boundary {
                let out = ws.end_interval();
                bc.end_interval();
                ws_total += 1;
                ws_same += out.same_phase as u64;
                boundary += 1_000_000;
            }
        }

        // BBV via the manager (also yields per-phase IPC CoV).
        let mut bbv = BbvAceManager::new(BbvManagerConfig::default(), EnergyModel::default_180nm());
        let _ = Experiment::preset(name)
            .telemetry(&ctx.telemetry)
            .run_with(&mut bbv)?;
        let r = bbv.report();

        rows.push(vec![
            name.to_string(),
            format!("{}", r.phases),
            format!("{:.0}%", 100.0 * r.stability.stable_fraction()),
            format!("{:.1}%", 100.0 * r.per_phase_ipc_cov),
            format!("{:.0}%", 100.0 * ws_same as f64 / ws_total.max(1) as f64),
            format!("{:.0}%", 100.0 * bc.stable_fraction()),
        ]);
    }
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "BBV phases",
                "BBV stable",
                "BBV per-phase CoV",
                "WS same-phase",
                "branch-ctr stable"
            ],
            &rows
        )
    );
    outln!(
        out,
        "WS same-phase = consecutive 1M intervals whose working-set signatures match"
    );
    outln!(
        out,
        "(relative distance <= 0.5). Both the working-set and branch-counter"
    );
    outln!(
        out,
        "detectors see interval stability but cannot *name* recurring phases for"
    );
    outln!(
        out,
        "configuration reuse — why the paper's baseline is BBV."
    );
    Ok(report)
}
