//! **Extension: chip-level context.**
//!
//! The paper reports cache energy in isolation; this experiment embeds the
//! cache savings in a whole-processor power model and reports chip-level
//! energy and energy-delay — the sanity check that the schemes' slowdowns
//! do not eat their savings once the rest of the chip (which burns power
//! for every extra cycle) is priced in.

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};
use ace_energy::{chip_energy, energy_delay, EnergyModel, ProcessorEnergyParams};

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let all = ctx.headline()?;
    let mut report = Report::new("ext_chip_context");
    let out = &mut report.text;
    let model = EnergyModel::default_180nm();
    let proc = ProcessorEnergyParams::default_180nm();
    let mut rows = Vec::new();
    let mut agg: Vec<[f64; 3]> = Vec::new();
    for r in &all {
        let base = chip_energy(&model, &proc, &r.baseline.counters);
        let bbv = chip_energy(&model, &proc, &r.bbv.counters);
        let hot = chip_energy(&model, &proc, &r.hotspot.counters);
        let chip_sav_bbv = 100.0 * (1.0 - bbv.total_nj() / base.total_nj());
        let chip_sav_hot = 100.0 * (1.0 - hot.total_nj() / base.total_nj());
        let ed_base = energy_delay(&base, r.baseline.cycles);
        let ed_hot = energy_delay(&hot, r.hotspot.cycles);
        let ed_sav = 100.0 * (1.0 - ed_hot / ed_base);
        agg.push([chip_sav_bbv, chip_sav_hot, ed_sav]);
        rows.push(vec![
            r.workload.clone(),
            format!("{:.1}%", 100.0 * base.configurable_share()),
            format!("{chip_sav_bbv:.2}"),
            format!("{chip_sav_hot:.2}"),
            format!("{ed_sav:.2}"),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        String::new(),
        format!("{:.2}", mean(agg.iter().map(|a| a[0]))),
        format!("{:.2}", mean(agg.iter().map(|a| a[1]))),
        format!("{:.2}", mean(agg.iter().map(|a| a[2]))),
    ]);
    outln!(
        out,
        "Extension: chip-level context (configurable caches inside a whole-"
    );
    outln!(
        out,
        "processor power model; energy-delay uses total chip energy x cycles)\n"
    );
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "cache share",
                "chip sav BBV%",
                "chip sav hot%",
                "E*D sav hot%"
            ],
            &rows
        )
    );
    outln!(
        out,
        "A positive E*D column means the hotspot scheme's savings survive its"
    );
    outln!(
        out,
        "slowdown even when every extra cycle is charged to the whole chip."
    );
    Ok(report)
}
