//! **Table 5** — Runtime characteristics of the hotspot and BBV schemes:
//! hotspot counts per CU class, tuned fractions, per-/inter-hotspot IPC
//! CoVs; BBV phase counts, tuned phases, % of intervals in tuned phases,
//! per-/inter-phase IPC CoVs.

use super::{outln, ExpCtx, Report};
use crate::{format_table, BenchResult};

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let all = ctx.headline()?;
    let mut report = Report::new("table5_runtime");
    let out = &mut report.text;

    outln!(out, "Table 5 (hotspot scheme)");
    outln!(
        out,
        "(paper: 85-141 hotspots, 81-94% tuned, per-hotspot CoV 5-10%, inter 43-52%)\n"
    );
    let mut rows = Vec::new();
    for r in &all {
        let h = &r.hotspot_report;
        rows.push(vec![
            r.workload.clone(),
            format!("{}", h.l1d_hotspots()),
            format!("{}", h.l2_hotspots()),
            format!("{}", h.l1d_hotspots() + h.l2_hotspots() + h.small_hotspots),
            format!("{}", h.tuned_hotspots),
            format!("{:.1}%", 100.0 * h.tuned_fraction()),
            format!("{:.2}%", 100.0 * h.per_hotspot_ipc_cov),
            format!("{:.2}%", 100.0 * h.inter_hotspot_ipc_cov),
        ]);
    }
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "L1D hs",
                "L2 hs",
                "total hs",
                "tuned",
                "tuned %",
                "per-hs CoV",
                "inter-hs CoV"
            ],
            &rows
        )
    );

    outln!(out, "Table 5 (BBV scheme)");
    outln!(
        out,
        "(paper: 50-84 phases, 13-35 tuned, 40-93% of intervals in tuned phases,"
    );
    outln!(out, " per-phase CoV 4-9%, inter-phase 20-38%)\n");
    let mut rows = Vec::new();
    for r in &all {
        let b = &r.bbv_report;
        rows.push(vec![
            r.workload.clone(),
            format!("{}", b.phases),
            format!("{}", b.tuned_phases),
            format!("{:.1}%", 100.0 * b.tuned_interval_fraction()),
            format!("{:.2}%", 100.0 * b.per_phase_ipc_cov),
            format!("{:.2}%", 100.0 * b.inter_phase_ipc_cov),
        ]);
    }
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "phases",
                "tuned",
                "tuned intervals",
                "per-ph CoV",
                "inter-ph CoV"
            ],
            &rows
        )
    );
    Ok(report)
}
