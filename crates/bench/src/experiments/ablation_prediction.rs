//! **Extension: configuration prediction** (Section 6 future work).
//!
//! "One could use the JIT compiler … to provide a good estimate for the
//! resource configuration required for this hotspot through appropriate
//! code analysis. Such a feature could potentially completely eliminate
//! the tuning latency and overhead."
//!
//! Here the "code analysis" reads each method's declared memory patterns
//! (the synthetic stand-in for pointer/loop analysis), sizes its resident
//! working set, and predicts the smallest cache level that holds it. The
//! predicted configuration is installed at classification with zero tuning
//! latency; the normal tuned scheme is the comparison point.

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};
use ace_core::{AceConfig, Experiment, HotspotAceManager, HotspotManagerConfig};
use ace_energy::EnergyModel;
use ace_sim::SizeLevel;
use ace_workloads::{MethodId, Op, Program, PRESET_NAMES};

/// Resident bytes a method touches per invocation, following calls.
fn resident_bytes(p: &Program, m: MethodId, depth: u32) -> u64 {
    if depth > 32 {
        return 0;
    }
    let mut total = 0;
    for op in &p.method(m).ops {
        match *op {
            Op::Compute { pattern, .. } => {
                let pat = p.pattern(pattern);
                if pat.reset_on_entry {
                    total += pat.working_set;
                }
            }
            Op::Call { callee } => total += resident_bytes(p, callee, depth + 1),
            _ => {}
        }
    }
    total
}

/// Smallest level of `max_bytes` geometry holding `bytes` with headroom.
fn level_for(bytes: u64, max_bytes: u64) -> SizeLevel {
    for idx in (0..4u8).rev() {
        let level = SizeLevel::new(idx).unwrap();
        if (max_bytes >> idx) * 4 / 5 >= bytes {
            return level;
        }
    }
    SizeLevel::LARGEST
}

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ablation_prediction");
    let model = EnergyModel::default_180nm();
    let out = &mut report.text;
    outln!(
        out,
        "Extension: JIT configuration prediction vs runtime tuning\n"
    );
    let mut rows = Vec::new();
    let mut agg = Vec::new();
    for name in PRESET_NAMES {
        let program = ace_workloads::preset(name).unwrap();
        let base = Experiment::preset(name).telemetry(&ctx.telemetry).run()?;

        let mut tuned = HotspotAceManager::new(HotspotManagerConfig::default(), model);
        let tuned_run = Experiment::preset(name)
            .telemetry(&ctx.telemetry)
            .run_with(&mut tuned)?;

        let mut predicted = HotspotAceManager::new(HotspotManagerConfig::default(), model);
        for id in 0..program.method_count() as u32 {
            let m = MethodId(id);
            let bytes = resident_bytes(&program, m, 0);
            // The L2 prediction covers the whole program footprint; the
            // analysis approximates it with the largest streamed region.
            let l2_bytes: u64 = program
                .patterns()
                .iter()
                .filter(|p| !p.reset_on_entry)
                .map(|p| p.working_set)
                .max()
                .unwrap_or(0)
                + bytes;
            predicted.set_prediction(
                m,
                AceConfig::both(
                    level_for(bytes, 64 << 10),
                    level_for(l2_bytes * 3 / 2, 1024 << 10),
                ),
            );
        }
        let pred_run = Experiment::preset(name)
            .telemetry(&ctx.telemetry)
            .run_with(&mut predicted)?;
        let pred_rep = predicted.report();
        let tuned_rep = tuned.report();

        let t_sav = 100.0 * (1.0 - tuned_run.energy.total_nj() / base.energy.total_nj());
        let p_sav = 100.0 * (1.0 - pred_run.energy.total_nj() / base.energy.total_nj());
        agg.push((
            t_sav,
            p_sav,
            100.0 * tuned_run.slowdown_vs(&base),
            100.0 * pred_run.slowdown_vs(&base),
        ));
        rows.push(vec![
            name.to_string(),
            format!("{t_sav:.1}"),
            format!("{p_sav:.1}"),
            format!("{:.2}", 100.0 * tuned_run.slowdown_vs(&base)),
            format!("{:.2}", 100.0 * pred_run.slowdown_vs(&base)),
            format!("{}", tuned_rep.l1d().tunings + tuned_rep.l2().tunings),
            format!("{}", pred_rep.l1d().tunings + pred_rep.l2().tunings),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(agg.iter().map(|a| a.0))),
        format!("{:.1}", mean(agg.iter().map(|a| a.1))),
        format!("{:.2}", mean(agg.iter().map(|a| a.2))),
        format!("{:.2}", mean(agg.iter().map(|a| a.3))),
        String::new(),
        String::new(),
    ]);
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "tuned sav%",
                "pred sav%",
                "tuned slow%",
                "pred slow%",
                "tuned trials",
                "pred trials"
            ],
            &rows
        )
    );
    Ok(report)
}
