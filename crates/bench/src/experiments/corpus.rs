//! **Corpus: differential oracles over generated workloads.**
//!
//! Every workload here comes from [`ace_workloads::gen`] — randomized but
//! fully deterministic specs the repo has never hand-tuned — and every
//! run is checked against *oracles* instead of golden numbers (there are
//! no goldens for workloads that did not exist a second ago):
//!
//! 1. **jobs=1 vs jobs=N** — each `(workload, scheme)` run executes once
//!    on the calling thread (the reference) and once as an engine job on
//!    a multi-worker pool; the serialized [`RunRecord`]s must be
//!    byte-identical. Catches schedule-dependent state leaking into
//!    results.
//! 2. **scalar vs lanes** — per workload, all schemes re-run through
//!    [`Experiment::run_scheme_batch`] (the lane-batched driver); again
//!    byte-identical records. Catches batch-stepping divergence.
//! 3. **scheme-invariant counters** — the reference instruction stream
//!    is configuration-independent, so retired instructions, branch
//!    count, L1I/L1D accesses, L1D stores and DTLB translations must be
//!    equal across *all* schemes for one workload (misses, cycles, IPC
//!    and energy legitimately differ — those are what the schemes
//!    change).
//!
//! A workload that trips any oracle is written to the failure directory
//! as a spec file, then handed to [`ace_workloads::minimize`] with the
//! same oracle as the predicate; the minimized reproducer lands next to
//! it, ready to be committed under
//! `crates/workloads/fixtures/regressions/`. Minimization re-simulates
//! per candidate, so it only spends that time when a real bug exists.
//!
//! The registry entry runs a small corpus (CI-sized); the `corpus`
//! binary scales the same machinery to nightly-stress sizes and can fold
//! in the seven presets at a 100x iteration scale.

use super::{outln, ExpCtx, Report};
use crate::{format_table, results_dir, run_jobs, BenchResult, Job};
use ace_core::{Experiment, RunRecord};
use ace_telemetry::Telemetry;
use ace_workloads::{gen, minimize, GenParams, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Scheme ids every corpus workload runs under: the full builtin
/// registry, in registration order.
pub const CORPUS_SCHEMES: [&str; 5] = ["baseline", "hotspot", "bbv", "positional", "pdm"];

/// Default seed of the generated sequence (workload `i` uses
/// `seed_base + i`). Chosen once and pinned: the corpus is randomized in
/// construction, deterministic in replay.
pub const DEFAULT_SEED_BASE: u64 = 0x5EED_BA5E;

/// Default per-run instruction budget. Large enough for the DO system to
/// promote hotspots and the BBV scheme to see several intervals; small
/// enough that a 64-workload corpus finishes in CI minutes.
pub const DEFAULT_LIMIT: u64 = 2_000_000;

/// Corpus size the registry entry (and the push gate) runs.
pub const CI_COUNT: usize = 8;

/// Corpus size the `corpus` binary defaults to (the acceptance size).
pub const DEFAULT_COUNT: usize = 64;

/// One corpus invocation's shape.
#[derive(Debug, Clone)]
pub struct CorpusParams {
    /// Generated workloads to run.
    pub count: usize,
    /// Base of the generation seed sequence.
    pub seed_base: u64,
    /// Worker-pool width for the jobs=N differential pass.
    pub jobs: usize,
    /// Per-run instruction budget for generated workloads.
    pub instruction_limit: u64,
    /// Multiplies every generated spec's `outer_iters` (nightly stress).
    pub scale: u32,
    /// Also run the seven presets scaled by this factor (their natural
    /// length times N, no instruction limit) through the same oracles —
    /// the nightly "full-length 100x presets" tier.
    pub preset_scale: Option<u32>,
    /// Where failing specs (original + minimized) are written.
    pub fail_dir: PathBuf,
}

impl Default for CorpusParams {
    fn default() -> CorpusParams {
        CorpusParams {
            count: CI_COUNT,
            seed_base: DEFAULT_SEED_BASE,
            jobs: 2,
            instruction_limit: DEFAULT_LIMIT,
            scale: 1,
            preset_scale: None,
            fail_dir: results_dir().join("corpus-failures"),
        }
    }
}

/// One oracle violation: which workload, which oracle, and where the
/// reproducer specs were written.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusFailure {
    /// Workload name (`gen-<seed>` or a preset name).
    pub workload: String,
    /// Oracle id: `"jobs"`, `"lanes"` or `"counters"`.
    pub oracle: String,
    /// Human-readable mismatch detail.
    pub detail: String,
    /// Failing spec as written to the failure directory.
    pub spec_file: String,
    /// Minimized reproducer, when minimization made progress.
    pub minimized_file: Option<String>,
}

/// Everything one corpus run produced.
#[derive(Debug)]
pub struct CorpusOutcome {
    /// Workloads that went through every oracle.
    pub workloads: usize,
    /// Individual simulator runs executed.
    pub runs: usize,
    /// Oracle violations (empty on a healthy corpus).
    pub failures: Vec<CorpusFailure>,
    /// Per-workload rows for the report: `(name, instret, digest)` where
    /// the digest fingerprints the workload's full scheme-record set.
    pub rows: Vec<(String, u64, String)>,
}

/// FNV-1a 64 over `bytes` — same dependency-free hash as the cache keys.
fn fnv(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// Byte-level fingerprint of one run: FNV-1a over the serialized record.
/// Two records digest equal iff their JSON is byte-identical — exactly
/// the equality the jobs/lanes oracles are defined over.
pub fn record_digest(record: &RunRecord) -> String {
    let json = serde_json::to_string(record).expect("run record serializes");
    format!("{:016x}", fnv(json.bytes()))
}

/// The counters every scheme must agree on: the workload's reference
/// stream, untouched by cache/TLB/window reconfiguration.
fn invariant_counters(r: &RunRecord) -> (u64, u64, u64, u64, u64, u64) {
    (
        r.instret,
        r.counters.branch.branches,
        r.counters.l1i.total_accesses(),
        r.counters.l1d.total_accesses(),
        r.counters.l1d.stores.iter().sum(),
        r.counters.dtlb.accesses,
    )
}

fn run_one(
    spec: &WorkloadSpec,
    scheme: &str,
    limit: Option<u64>,
    telemetry: &Telemetry,
) -> BenchResult<RunRecord> {
    let mut e = Experiment::spec(spec.clone())
        .scheme(scheme)
        .telemetry(telemetry);
    if let Some(limit) = limit {
        e = e.instruction_limit(limit);
    }
    e.run().map_err(crate::BenchError::from)
}

/// Scalar reference digests for every scheme of one spec.
fn reference_digests(
    spec: &WorkloadSpec,
    limit: Option<u64>,
    telemetry: &Telemetry,
) -> BenchResult<Vec<(String, RunRecord, String)>> {
    CORPUS_SCHEMES
        .iter()
        .map(|scheme| {
            let record = run_one(spec, scheme, limit, telemetry)?;
            let digest = record_digest(&record);
            Ok((scheme.to_string(), record, digest))
        })
        .collect()
}

/// Re-evaluates one oracle from scratch on `spec` — the minimizer's
/// predicate. Resolution failures (a candidate that no longer builds)
/// count as "does not reproduce": the minimizer must stay inside the
/// original failure, not wander into unrelated breakage.
fn oracle_fails(spec: &WorkloadSpec, oracle: &str, limit: Option<u64>, jobs: usize) -> bool {
    let off = Telemetry::off();
    let Ok(reference) = reference_digests(spec, limit, &off) else {
        return false;
    };
    match oracle {
        "jobs" => {
            let pool: Vec<Job<String>> = CORPUS_SCHEMES
                .iter()
                .map(|scheme| {
                    let spec = spec.clone();
                    let scheme = *scheme;
                    Job::new(format!("{}/{scheme}", spec.name), move |tel| {
                        run_one(&spec, scheme, limit, tel).map(|r| record_digest(&r))
                    })
                })
                .collect();
            run_jobs(pool, jobs.max(2), &off)
                .into_iter()
                .zip(&reference)
                .any(|(outcome, (_, _, want))| match outcome.result {
                    Ok(digest) => digest != *want,
                    Err(_) => false,
                })
        }
        "lanes" => {
            let batch: Vec<Experiment> = CORPUS_SCHEMES
                .iter()
                .map(|scheme| {
                    let mut e = Experiment::spec(spec.clone()).scheme(*scheme);
                    if let Some(limit) = limit {
                        e = e.instruction_limit(limit);
                    }
                    e
                })
                .collect();
            match Experiment::run_scheme_batch(batch) {
                Ok(runs) => runs
                    .iter()
                    .zip(&reference)
                    .any(|(run, (_, _, want))| record_digest(&run.record) != *want),
                Err(_) => false,
            }
        }
        "counters" => {
            let base = invariant_counters(&reference[0].1);
            reference
                .iter()
                .any(|(_, record, _)| invariant_counters(record) != base)
        }
        _ => false,
    }
}

/// Writes `spec` under `dir` as `<stem>.json`, creating `dir`.
fn write_spec(dir: &Path, stem: &str, spec: &WorkloadSpec) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.json"));
    let json = serde_json::to_string(spec).expect("spec serializes");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Captures one oracle violation: writes the failing spec, minimizes it
/// with the same oracle, writes the reproducer.
fn capture_failure(
    params: &CorpusParams,
    spec: &WorkloadSpec,
    limit: Option<u64>,
    oracle: &str,
    detail: String,
) -> CorpusFailure {
    let stem = format!("{}-{oracle}", spec.name);
    let spec_file = write_spec(&params.fail_dir, &stem, spec)
        .map(|p| p.display().to_string())
        .unwrap_or_else(|e| format!("(unwritable: {e})"));
    let out = minimize(spec, &mut |candidate| {
        oracle_fails(candidate, oracle, limit, params.jobs)
    });
    let minimized_file = (out.accepted > 0).then(|| {
        write_spec(&params.fail_dir, &format!("{stem}-min"), &out.spec)
            .map(|p| p.display().to_string())
            .unwrap_or_else(|e| format!("(unwritable: {e})"))
    });
    CorpusFailure {
        workload: spec.name.clone(),
        oracle: oracle.to_string(),
        detail,
        spec_file,
        minimized_file,
    }
}

/// The workload list one corpus invocation covers: `count` generated
/// specs (scaled), plus the presets when a preset scale is set.
pub fn corpus_specs(params: &CorpusParams) -> Vec<(WorkloadSpec, Option<u64>)> {
    let mut specs: Vec<(WorkloadSpec, Option<u64>)> = (0..params.count)
        .map(|i| {
            let spec = gen(params.seed_base + i as u64, &GenParams::default());
            let spec = if params.scale > 1 {
                spec.scaled(params.scale)
            } else {
                spec
            };
            (spec, Some(params.instruction_limit))
        })
        .collect();
    if let Some(scale) = params.preset_scale {
        for name in ace_workloads::PRESET_NAMES {
            let spec = ace_workloads::preset_spec(name).expect("preset exists");
            // Full-length runs: the scaled presets get no instruction
            // limit — termination is the workload's own.
            specs.push((spec.scaled(scale), None));
        }
    }
    specs
}

/// Runs the corpus: every workload through every scheme under the three
/// differential oracles. Infrastructure errors (a run that fails
/// outright) abort; oracle violations are collected, minimized, and
/// returned.
///
/// # Errors
///
/// Propagates the first failed run — a corpus workload that cannot run
/// at all is a [`ace_workloads::gen`] contract violation, not an oracle
/// finding.
pub fn run_corpus(params: &CorpusParams, telemetry: &Telemetry) -> BenchResult<CorpusOutcome> {
    let specs = corpus_specs(params);
    let mut outcome = CorpusOutcome {
        workloads: specs.len(),
        runs: 0,
        failures: Vec::new(),
        rows: Vec::new(),
    };

    // Pass A: scalar serial references, one digest per (workload, scheme).
    let mut references = Vec::with_capacity(specs.len());
    for (spec, limit) in &specs {
        let reference = reference_digests(spec, *limit, telemetry)?;
        outcome.runs += reference.len();
        references.push(reference);
    }

    // Pass B: the same runs as engine jobs on a jobs=N pool.
    let pool: Vec<Job<String>> = specs
        .iter()
        .flat_map(|(spec, limit)| {
            CORPUS_SCHEMES.iter().map(|scheme| {
                let spec = spec.clone();
                let scheme = *scheme;
                let limit = *limit;
                Job::new(format!("{}/{scheme}", spec.name), move |tel| {
                    run_one(&spec, scheme, limit, tel).map(|r| record_digest(&r))
                })
            })
        })
        .collect();
    let parallel = run_jobs(pool, params.jobs, telemetry);
    outcome.runs += parallel.len();
    let mut parallel = parallel.into_iter();
    for ((spec, limit), reference) in specs.iter().zip(&references) {
        for (scheme, _, want) in reference {
            let job = parallel.next().expect("one outcome per submitted job");
            let got = job.result?;
            if got != *want {
                let detail = format!(
                    "{scheme}: jobs={} digest {got} != scalar reference {want}",
                    params.jobs
                );
                outcome
                    .failures
                    .push(capture_failure(params, spec, *limit, "jobs", detail));
                break;
            }
        }
    }

    // Pass C: per workload, all schemes through the lane-batched driver.
    for ((spec, limit), reference) in specs.iter().zip(&references) {
        let batch: Vec<Experiment> = CORPUS_SCHEMES
            .iter()
            .map(|scheme| {
                let mut e = Experiment::spec(spec.clone())
                    .scheme(*scheme)
                    .telemetry(telemetry);
                if let Some(limit) = limit {
                    e = e.instruction_limit(*limit);
                }
                e
            })
            .collect();
        let runs = Experiment::run_scheme_batch(batch).map_err(crate::BenchError::from)?;
        outcome.runs += runs.len();
        for (run, (scheme, _, want)) in runs.iter().zip(reference) {
            let got = record_digest(&run.record);
            if got != *want {
                let detail = format!("{scheme}: lane-batched digest {got} != scalar {want}");
                outcome
                    .failures
                    .push(capture_failure(params, spec, *limit, "lanes", detail));
                break;
            }
        }
    }

    // Oracle D: scheme-invariant counters, from the pass-A records.
    for ((spec, limit), reference) in specs.iter().zip(&references) {
        let base = invariant_counters(&reference[0].1);
        if let Some((scheme, record, _)) = reference
            .iter()
            .find(|(_, record, _)| invariant_counters(record) != base)
        {
            let detail = format!(
                "{scheme}: reference-stream counters {:?} != baseline's {:?}",
                invariant_counters(record),
                base
            );
            outcome
                .failures
                .push(capture_failure(params, spec, *limit, "counters", detail));
        }
    }

    for ((spec, _), reference) in specs.iter().zip(&references) {
        let fingerprint = fnv(reference
            .iter()
            .flat_map(|(_, _, digest)| digest.bytes().collect::<Vec<_>>()));
        outcome.rows.push((
            spec.name.clone(),
            reference[0].1.instret,
            format!("{fingerprint:016x}"),
        ));
    }
    Ok(outcome)
}

/// Key material of the corpus summary cache entry — everything that
/// determines the digests.
#[derive(Serialize)]
struct CorpusKeyMaterial {
    crate_version: String,
    count: usize,
    seed_base: u64,
    instruction_limit: u64,
    scale: u32,
    preset_scale: Option<u32>,
}

/// Content-addressed summary file name for one parameter set:
/// `gen-corpus-<16 hex>.json` under `results/`.
pub fn summary_file_name(params: &CorpusParams) -> String {
    let material = CorpusKeyMaterial {
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        count: params.count,
        seed_base: params.seed_base,
        instruction_limit: params.instruction_limit,
        scale: params.scale,
        preset_scale: params.preset_scale,
    };
    let json = serde_json::to_string(&material).expect("key material serializes");
    format!("gen-corpus-{:016x}.json", fnv(json.bytes()))
}

/// The `gen-*` cache entries the current build would write: the CI-sized
/// registry corpus and the binary's default acceptance corpus.
/// `check_results` flags any other `gen-` file as stale.
pub fn expected_cache_files() -> Vec<String> {
    let ci = CorpusParams::default();
    let nightly = CorpusParams {
        count: DEFAULT_COUNT,
        ..CorpusParams::default()
    };
    vec![summary_file_name(&ci), summary_file_name(&nightly)]
}

/// The committed summary of a healthy corpus: per-workload fingerprints
/// a future run of the same parameters can be compared against.
#[derive(Debug, Serialize, Deserialize)]
pub struct CorpusSummary {
    /// Workloads covered.
    pub workloads: usize,
    /// Simulator runs executed.
    pub runs: usize,
    /// `(workload, instret, fingerprint)` rows in generation order.
    pub rows: Vec<(String, u64, String)>,
}

/// Writes the `results/gen-corpus-<key>.json` summary for a clean run
/// when the parameter set is one [`expected_cache_files`] blesses (any
/// other set would commit an instantly-stale key).
pub fn write_summary(params: &CorpusParams, outcome: &CorpusOutcome) -> Option<PathBuf> {
    if !outcome.failures.is_empty() {
        return None;
    }
    let name = summary_file_name(params);
    if !expected_cache_files().contains(&name) {
        return None;
    }
    let path = results_dir().join(name);
    let summary = CorpusSummary {
        workloads: outcome.workloads,
        runs: outcome.runs,
        rows: outcome.rows.clone(),
    };
    std::fs::create_dir_all(results_dir()).ok()?;
    std::fs::write(
        &path,
        serde_json::to_string(&summary).expect("serializable") + "\n",
    )
    .ok()?;
    Some(path)
}

/// Renders one corpus outcome into a report body.
pub fn render(params: &CorpusParams, outcome: &CorpusOutcome, out: &mut String) {
    outln!(
        out,
        "Corpus: {} generated workloads (seed base {:#x}), {} schemes, {} runs",
        params.count,
        params.seed_base,
        CORPUS_SCHEMES.len(),
        outcome.runs
    );
    outln!(
        out,
        "oracles: jobs=1 vs jobs={}, scalar vs lane-batched, scheme-invariant counters\n",
        params.jobs
    );
    let rows: Vec<Vec<String>> = outcome
        .rows
        .iter()
        .map(|(name, instret, fingerprint)| {
            vec![name.clone(), format!("{instret}"), fingerprint.clone()]
        })
        .collect();
    outln!(
        out,
        "{}",
        format_table(&["workload", "instret", "fingerprint"], &rows)
    );
    if outcome.failures.is_empty() {
        outln!(
            out,
            "all {} workloads passed every oracle",
            outcome.workloads
        );
    } else {
        outln!(out, "{} ORACLE VIOLATION(S):", outcome.failures.len());
        for f in &outcome.failures {
            outln!(out, "  {} [{}]: {}", f.workload, f.oracle, f.detail);
            outln!(out, "    spec: {}", f.spec_file);
            if let Some(minimized) = &f.minimized_file {
                outln!(out, "    minimized: {}", minimized);
            }
        }
    }
}

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("corpus");
    let params = CorpusParams::default();
    let outcome = run_corpus(&params, &ctx.telemetry)?;
    render(&params, &outcome, &mut report.text);
    if let Some(path) = write_summary(&params, &outcome) {
        outln!(&mut report.text, "summary cached at {}", path.display());
    }
    if !outcome.failures.is_empty() {
        return Err(crate::BenchError::msg(format!(
            "corpus: {} oracle violation(s); specs under {}",
            outcome.failures.len(),
            params.fail_dir.display()
        )));
    }
    Ok(report)
}
