//! **Ablation: BBV sampling interval** (Section 2.3 / 3.2.1).
//!
//! Sweeps the BBV sampling interval. The paper pins it to the L2's 1 M-
//! instruction reconfiguration interval: shorter intervals are rejected by
//! the hardware guard (L2 trials bounce), longer ones blur phases and slow
//! tuning — the "all CUs adapt at the pace of the slowest" limitation that
//! motivates CU decoupling.

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};
use ace_core::{BbvAceManager, BbvManagerConfig, Experiment, RunConfig};
use ace_energy::EnergyModel;
use ace_phase::BbvConfig;
use ace_workloads::PRESET_NAMES;

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ablation_interval");
    let model = EnergyModel::default_180nm();
    let out = &mut report.text;
    outln!(
        out,
        "Ablation: BBV sampling interval sweep (averages over the 7 workloads)\n"
    );
    let mut rows = Vec::new();
    for interval in [250_200u64, 500_200, 1_000_200, 2_000_200, 4_000_200] {
        let mut stats = Vec::new();
        for name in PRESET_NAMES {
            let cfg = RunConfig::default();
            let base = Experiment::preset(name)
                .config(cfg.clone())
                .telemetry(&ctx.telemetry)
                .run()?;
            let mut mgr = BbvAceManager::new(
                BbvManagerConfig {
                    bbv: BbvConfig {
                        interval_instr: interval,
                        ..BbvConfig::default()
                    },
                    ..BbvManagerConfig::default()
                },
                model,
            );
            let r = Experiment::preset(name)
                .config(cfg)
                .telemetry(&ctx.telemetry)
                .run_with(&mut mgr)?;
            let rep = mgr.report();
            stats.push((
                100.0 * rep.stability.stable_fraction(),
                rep.tuned_phases as f64,
                100.0 * (1.0 - r.energy.total_nj() / base.energy.total_nj()),
                100.0 * r.slowdown_vs(&base),
                r.counters.guard_rejections as f64,
            ));
        }
        rows.push(vec![
            format!("{:.2}M", interval as f64 / 1e6),
            format!("{:.0}%", mean(stats.iter().map(|s| s.0))),
            format!("{:.1}", mean(stats.iter().map(|s| s.1))),
            format!("{:.1}", mean(stats.iter().map(|s| s.2))),
            format!("{:.2}", mean(stats.iter().map(|s| s.3))),
            format!("{:.0}", mean(stats.iter().map(|s| s.4))),
        ]);
    }
    outln!(
        out,
        "{}",
        format_table(
            &[
                "interval",
                "stable",
                "tuned phases",
                "energy sav%",
                "slow%",
                "guard rej"
            ],
            &rows
        )
    );
    Ok(report)
}
