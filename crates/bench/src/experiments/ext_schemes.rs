//! **Extension: full scheme comparison** (Section 3.5's qualitative
//! argument, quantified).
//!
//! Five points per workload: the non-adaptive baseline, the original
//! positional scheme (large-procedure boundaries, no DO system), the BBV
//! temporal scheme as evaluated in the paper, BBV *with* the next-phase
//! predictor the paper leaves out, and the DO-based hotspot scheme.

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};
use ace_core::{
    BbvAceManager, BbvManagerConfig, Experiment, HotspotAceManager, HotspotManagerConfig,
    PositionalAceManager, PositionalManagerConfig,
};
use ace_energy::EnergyModel;
use ace_workloads::PRESET_NAMES;

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ext_schemes");
    let model = EnergyModel::default_180nm();
    let mut rows = Vec::new();
    let mut agg: Vec<[f64; 8]> = Vec::new();

    for name in PRESET_NAMES {
        let program = ace_workloads::preset(name).unwrap();
        let base = Experiment::preset(name).telemetry(&ctx.telemetry).run()?;
        let sav =
            |r: &ace_core::RunRecord| 100.0 * (1.0 - r.energy.total_nj() / base.energy.total_nj());
        let slow = |r: &ace_core::RunRecord| 100.0 * r.slowdown_vs(&base);

        let mut pos =
            PositionalAceManager::new(&program, PositionalManagerConfig::default(), model);
        let r_pos = Experiment::preset(name)
            .telemetry(&ctx.telemetry)
            .run_with(&mut pos)?;

        let mut bbv = BbvAceManager::new(BbvManagerConfig::default(), model);
        let r_bbv = Experiment::preset(name)
            .telemetry(&ctx.telemetry)
            .run_with(&mut bbv)?;

        let mut bbv_pred = BbvAceManager::new(
            BbvManagerConfig {
                use_predictor: true,
                ..BbvManagerConfig::default()
            },
            model,
        );
        let r_pred = Experiment::preset(name)
            .telemetry(&ctx.telemetry)
            .run_with(&mut bbv_pred)?;
        let pred_report = bbv_pred.report();

        let mut hs = HotspotAceManager::new(HotspotManagerConfig::default(), model);
        let r_hs = Experiment::preset(name)
            .telemetry(&ctx.telemetry)
            .run_with(&mut hs)?;

        agg.push([
            sav(&r_pos),
            slow(&r_pos),
            sav(&r_bbv),
            slow(&r_bbv),
            sav(&r_pred),
            slow(&r_pred),
            sav(&r_hs),
            slow(&r_hs),
        ]);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}/{:.1}", sav(&r_pos), slow(&r_pos)),
            format!("{:.1}/{:.1}", sav(&r_bbv), slow(&r_bbv)),
            format!("{:.1}/{:.1}", sav(&r_pred), slow(&r_pred)),
            format!("{:.1}/{:.1}", sav(&r_hs), slow(&r_hs)),
            format!(
                "{} ({:.0}%)",
                pred_report.predictions,
                100.0 * pred_report.prediction_accuracy
            ),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!(
            "{:.1}/{:.1}",
            mean(agg.iter().map(|a| a[0])),
            mean(agg.iter().map(|a| a[1]))
        ),
        format!(
            "{:.1}/{:.1}",
            mean(agg.iter().map(|a| a[2])),
            mean(agg.iter().map(|a| a[3]))
        ),
        format!(
            "{:.1}/{:.1}",
            mean(agg.iter().map(|a| a[4])),
            mean(agg.iter().map(|a| a[5]))
        ),
        format!(
            "{:.1}/{:.1}",
            mean(agg.iter().map(|a| a[6])),
            mean(agg.iter().map(|a| a[7]))
        ),
        String::new(),
    ]);
    let out = &mut report.text;
    outln!(
        out,
        "Extension: scheme comparison (total cache energy saving % / slowdown %)"
    );
    outln!(
        out,
        "positional = Huang et al. large-procedure boundaries (no DO system);"
    );
    outln!(
        out,
        "BBV+pred adds the RLE-Markov next-phase predictor the paper omits\n"
    );
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "positional",
                "BBV",
                "BBV+pred",
                "hotspot",
                "predictions (acc)"
            ],
            &rows
        )
    );
    Ok(report)
}
