//! **Robustness: seed sensitivity.**
//!
//! The workloads are synthetic, so a fair question is whether the headline
//! result is an artifact of one particular random stream. This experiment
//! re-runs the hotspot scheme on every workload under several executor
//! seeds (which perturb invocation sizes, loop counts, access addresses,
//! and branch outcomes) and reports the spread.

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};
use ace_core::{Experiment, HotspotAceManager, HotspotManagerConfig, RunConfig};
use ace_energy::EnergyModel;
use ace_sim::OnlineStats;
use ace_workloads::PRESET_NAMES;

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ablation_seeds");
    let model = EnergyModel::default_180nm();
    let seeds = [0u64, 0x5EED_0001, 0x5EED_0002, 0x5EED_0003];
    let mut rows = Vec::new();
    let mut grand = Vec::new();
    for name in PRESET_NAMES {
        let mut savings = OnlineStats::new();
        let mut slowdowns = OnlineStats::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let mut cfg = RunConfig {
                energy: model,
                ..RunConfig::default()
            };
            if i > 0 {
                cfg.workload_seed = Some(seed);
            }
            let base = Experiment::preset(name)
                .config(cfg.clone())
                .telemetry(&ctx.telemetry)
                .run()?;
            let mut mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
            let r = Experiment::preset(name)
                .config(cfg)
                .telemetry(&ctx.telemetry)
                .run_with(&mut mgr)?;
            savings.push(100.0 * (1.0 - r.energy.total_nj() / base.energy.total_nj()));
            slowdowns.push(100.0 * r.slowdown_vs(&base));
        }
        grand.push(savings.mean());
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", savings.mean()),
            format!("{:.1}", savings.min()),
            format!("{:.1}", savings.max()),
            format!("{:.2}", savings.population_stddev()),
            format!("{:.2}", slowdowns.mean()),
            format!("{:.2}", slowdowns.max()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(grand)),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let out = &mut report.text;
    outln!(
        out,
        "Robustness: hotspot-scheme total energy saving across 4 executor seeds\n"
    );
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "sav mean%",
                "min",
                "max",
                "stddev",
                "slow mean%",
                "slow max%"
            ],
            &rows
        )
    );
    Ok(report)
}
