//! **Figure 3** — L1D (a) and L2 (b) cache energy reduction of the BBV and
//! hotspot schemes over the full-size baseline.

use super::{outln, ExpCtx, Report};
use crate::{bar_chart, format_table, mean, BenchResult};

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let all = ctx.headline()?;
    let mut report = Report::new("fig3_energy");
    let out = &mut report.text;

    outln!(
        out,
        "Figure 3(a): L1D cache energy reduction vs baseline (%)"
    );
    outln!(
        out,
        "(paper: BBV avg 32%, hotspot avg 47%, hotspot wins every benchmark,"
    );
    outln!(out, " db the largest hotspot saving at 66%)\n");
    let mut rows = Vec::new();
    for r in &all {
        rows.push(vec![
            r.workload.clone(),
            format!("{:.1}", r.bbv_l1d_saving_pct()),
            format!("{:.1}", r.hotspot_l1d_saving_pct()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(all.iter().map(|r| r.bbv_l1d_saving_pct()))),
        format!(
            "{:.1}",
            mean(all.iter().map(|r| r.hotspot_l1d_saving_pct()))
        ),
    ]);
    let table_a = format_table(&["bench", "BBV", "hotspot"], &rows);
    let labels: Vec<&str> = all.iter().map(|r| r.workload.as_str()).collect();
    let chart_a = bar_chart(
        &labels,
        &[
            ("BBV", all.iter().map(|r| r.bbv_l1d_saving_pct()).collect()),
            (
                "hot",
                all.iter().map(|r| r.hotspot_l1d_saving_pct()).collect(),
            ),
        ],
        42,
    );
    outln!(out, "{table_a}");
    outln!(out, "{chart_a}");
    report.sections.push((
        "Figure 3(a): L1D energy reduction (%)".to_string(),
        format!(
            "{table_a}
{chart_a}"
        ),
    ));

    outln!(
        out,
        "Figure 3(b): L2 cache energy reduction vs baseline (%)"
    );
    outln!(
        out,
        "(paper: BBV avg 52%, hotspot avg 58%, BBV ahead only on jack and mtrt)\n"
    );
    let mut rows = Vec::new();
    for r in &all {
        rows.push(vec![
            r.workload.clone(),
            format!("{:.1}", r.bbv_l2_saving_pct()),
            format!("{:.1}", r.hotspot_l2_saving_pct()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(all.iter().map(|r| r.bbv_l2_saving_pct()))),
        format!("{:.1}", mean(all.iter().map(|r| r.hotspot_l2_saving_pct()))),
    ]);
    let table_b = format_table(&["bench", "BBV", "hotspot"], &rows);
    let chart_b = bar_chart(
        &labels,
        &[
            ("BBV", all.iter().map(|r| r.bbv_l2_saving_pct()).collect()),
            (
                "hot",
                all.iter().map(|r| r.hotspot_l2_saving_pct()).collect(),
            ),
        ],
        42,
    );
    outln!(out, "{table_b}");
    outln!(out, "{chart_b}");
    report.sections.push((
        "Figure 3(b): L2 energy reduction (%)".to_string(),
        format!(
            "{table_b}
{chart_b}"
        ),
    ));
    Ok(report)
}
