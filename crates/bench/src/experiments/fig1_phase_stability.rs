//! **Figure 1** — Distribution of stable vs transitional BBV phases of the
//! SPECjvm98 workloads (a phase is stable if it lasts two or more
//! successive 1 M-instruction sampling intervals).

use super::{outln, ExpCtx, Report};
use crate::{bar_chart, format_table, mean, BenchResult};

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let all = ctx.headline()?;
    let mut report = Report::new("fig1_phase_stability");
    let out = &mut report.text;
    let mut rows = Vec::new();
    for r in &all {
        let s = &r.bbv_report.stability;
        rows.push(vec![
            r.workload.clone(),
            format!("{}", s.total_intervals),
            format!("{:.1}", 100.0 * s.stable_fraction()),
            format!("{:.1}", 100.0 * (1.0 - s.stable_fraction())),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        String::new(),
        format!(
            "{:.1}",
            mean(
                all.iter()
                    .map(|r| 100.0 * r.bbv_report.stability.stable_fraction())
            )
        ),
        format!(
            "{:.1}",
            mean(
                all.iter()
                    .map(|r| 100.0 * (1.0 - r.bbv_report.stability.stable_fraction()))
            )
        ),
    ]);
    outln!(
        out,
        "Figure 1: distribution of stable/transitional BBV phase intervals"
    );
    outln!(
        out,
        "(paper: stable 60-95% per benchmark, ~70-76% average)\n"
    );
    let table = format_table(&["bench", "intervals", "stable %", "transitional %"], &rows);
    let labels: Vec<&str> = all.iter().map(|r| r.workload.as_str()).collect();
    let chart = bar_chart(
        &labels,
        &[(
            "stable",
            all.iter()
                .map(|r| 100.0 * r.bbv_report.stability.stable_fraction())
                .collect(),
        )],
        50,
    );
    outln!(out, "{table}");
    outln!(out, "{chart}");
    report.sections.push((
        "Figure 1: stable BBV phase intervals (%)".to_string(),
        format!(
            "{table}
{chart}"
        ),
    ));
    Ok(report)
}
