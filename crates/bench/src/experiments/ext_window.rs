//! **Extension: a third configurable unit** (Section 4.1: "We are
//! implementing several more CUs, such as the issue window and the
//! reorder buffer").
//!
//! Adds a size-configurable instruction window (64/32/16/8 entries,
//! 10 K-instruction reconfiguration interval) as a third CU. CU decoupling
//! extends naturally: hotspots of 3 K–50 K instructions — the leaf methods,
//! previously too small to adapt anything — tune the window, while the
//! kernel and stage hotspots keep tuning the caches. This demonstrates the
//! scalability claim of Section 3.6: adding a CU adds a hotspot size
//! class, not a multiplicative blow-up of the tuning search.
//!
//! The BBV baseline *cannot* adapt the window at all: its sampling
//! interval is pinned to the slowest CU's 1 M-instruction interval, two
//! orders of magnitude above the window's — exactly the "lost
//! reconfiguration opportunities" argument of Section 2.3.

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};
use ace_core::{Experiment, HotspotAceManager, HotspotManagerConfig, RunConfig};
use ace_energy::EnergyModel;
use ace_runtime::DoConfig;
use ace_workloads::PRESET_NAMES;

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ext_window");
    let model = EnergyModel::default_180nm_with_window();
    let mut rows = Vec::new();
    let mut agg: Vec<[f64; 4]> = Vec::new();

    for name in PRESET_NAMES {
        // Two-CU configuration (the paper's evaluation), window energy
        // counted but not adapted.
        let cfg2 = RunConfig {
            energy: model,
            ..RunConfig::default()
        };
        let base = Experiment::preset(name)
            .config(cfg2.clone())
            .telemetry(&ctx.telemetry)
            .run()?;
        let mut two = HotspotAceManager::new(HotspotManagerConfig::default(), model);
        let r2 = Experiment::preset(name)
            .config(cfg2)
            .telemetry(&ctx.telemetry)
            .run_with(&mut two)?;

        // Three-CU configuration: leaves become window hotspots.
        let cfg3 = RunConfig {
            energy: model,
            do_config: DoConfig::with_window(),
            ..RunConfig::default()
        };
        let mut three = HotspotAceManager::new(HotspotManagerConfig::default(), model);
        let r3 = Experiment::preset(name)
            .config(cfg3)
            .telemetry(&ctx.telemetry)
            .run_with(&mut three)?;
        let rep3 = three.report();

        let sav2 = 100.0 * (1.0 - r2.energy.total_nj() / base.energy.total_nj());
        let sav3 = 100.0 * (1.0 - r3.energy.total_nj() / base.energy.total_nj());
        let win_sav = 100.0 * (1.0 - r3.energy.window_nj / base.energy.window_nj);
        agg.push([
            sav2,
            sav3,
            100.0 * r2.slowdown_vs(&base),
            100.0 * r3.slowdown_vs(&base),
        ]);
        rows.push(vec![
            name.to_string(),
            format!("{sav2:.1}"),
            format!("{sav3:.1}"),
            format!("{win_sav:.1}"),
            format!("{:.2}", 100.0 * r2.slowdown_vs(&base)),
            format!("{:.2}", 100.0 * r3.slowdown_vs(&base)),
            format!("{}", rep3.window_hotspots()),
            format!("{}", rep3.window().tunings),
            format!("{}", rep3.window().reconfigs),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(agg.iter().map(|a| a[0]))),
        format!("{:.1}", mean(agg.iter().map(|a| a[1]))),
        String::new(),
        format!("{:.2}", mean(agg.iter().map(|a| a[2]))),
        format!("{:.2}", mean(agg.iter().map(|a| a[3]))),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let out = &mut report.text;
    outln!(
        out,
        "Extension: two-CU vs three-CU ACE (total configurable-unit energy,"
    );
    outln!(
        out,
        "including the instruction window in both denominators)\n"
    );
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "2CU sav%",
                "3CU sav%",
                "WIN sav%",
                "2CU slow%",
                "3CU slow%",
                "WIN hs",
                "WIN tunings",
                "WIN reconfigs"
            ],
            &rows
        )
    );
    Ok(report)
}
