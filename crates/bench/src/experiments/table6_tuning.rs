//! **Table 6** — Tunings, reconfigurations, and coverage of the hotspot
//! and BBV schemes, per configurable unit.

use super::{outln, ExpCtx, Report};
use crate::{format_table, BenchResult};

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let all = ctx.headline()?;
    let mut report = Report::new("table6_tuning");
    let out = &mut report.text;

    outln!(
        out,
        "Table 6 (hotspot scheme): per-CU tunings / reconfigs / coverage"
    );
    outln!(
        out,
        "(paper: L1D tunings 218-506, reconfigs 2.6K-48K, coverage 71-93%;"
    );
    outln!(
        out,
        " L2 tunings 21-130, reconfigs 396-8514, coverage 57-96%)\n"
    );
    let mut rows = Vec::new();
    for r in &all {
        let h = &r.hotspot_report;
        let instr = r.hotspot.instret as f64;
        rows.push(vec![
            r.workload.clone(),
            format!("{}", h.l1d().tunings),
            format!("{}", h.l1d().reconfigs),
            format!("{:.1}%", 100.0 * h.l1d().covered_instr as f64 / instr),
            format!("{}", h.l2().tunings),
            format!("{}", h.l2().reconfigs),
            format!("{:.1}%", 100.0 * h.l2().covered_instr as f64 / instr),
        ]);
    }
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "L1D tunings",
                "L1D reconfigs",
                "L1D cov",
                "L2 tunings",
                "L2 reconfigs",
                "L2 cov"
            ],
            &rows
        )
    );

    outln!(out, "Table 6 (BBV scheme): tunings / reconfigs / coverage");
    outln!(
        out,
        "(paper: tunings 368-711, reconfigs 192-2018, coverage 48-98%)\n"
    );
    let mut rows = Vec::new();
    for r in &all {
        let b = &r.bbv_report;
        rows.push(vec![
            r.workload.clone(),
            format!("{}", b.tunings),
            format!("{}", b.reconfigs),
            format!(
                "{:.1}%",
                100.0 * b.covered_instr as f64 / r.bbv.instret as f64
            ),
            format!("{}", b.misattributed_trials),
        ]);
    }
    outln!(
        out,
        "{}",
        format_table(
            &["bench", "tunings", "reconfigs", "coverage", "discarded"],
            &rows
        )
    );
    Ok(report)
}
