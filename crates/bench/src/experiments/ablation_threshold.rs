//! **Ablation: hot_threshold** (Section 5.1).
//!
//! Sweeps the DO system's promotion threshold and reports the hotspot
//! identification latency (Table 4's last row) against the energy the
//! scheme still captures: late identification wastes execution at the
//! full-size configuration.

use super::{outln, ExpCtx, Report};
use crate::{format_table, BenchResult};
use ace_core::{Experiment, HotspotAceManager, HotspotManagerConfig, RunConfig};
use ace_energy::EnergyModel;

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ablation_threshold");
    let model = EnergyModel::default_180nm();
    let out = &mut report.text;
    outln!(
        out,
        "Ablation: hot_threshold sweep (identification latency vs captured savings)\n"
    );
    for name in ["compress", "javac"] {
        let base = Experiment::preset(name).telemetry(&ctx.telemetry).run()?;
        let mut rows = Vec::new();
        for threshold in [2u32, 5, 10, 20, 40] {
            let mut cfg = RunConfig::default();
            cfg.do_config.hot_threshold = threshold;
            let mut mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
            let r = Experiment::preset(name)
                .config(cfg)
                .telemetry(&ctx.telemetry)
                .run_with(&mut mgr)?;
            let rep = mgr.report();
            rows.push(vec![
                format!("{threshold}"),
                format!("{}", r.table4.hotspots),
                format!("{:.2}%", r.table4.identification_latency_pct),
                format!("{:.1}%", 100.0 * rep.tuned_fraction()),
                format!("{:.1}", 100.0 * r.l1d_saving_vs(&base)),
                format!("{:.1}", 100.0 * r.l2_saving_vs(&base)),
                format!("{:.2}", 100.0 * r.slowdown_vs(&base)),
            ]);
        }
        outln!(out, "{name}:");
        outln!(
            out,
            "{}",
            format_table(
                &[
                    "threshold",
                    "hotspots",
                    "ident lat",
                    "tuned",
                    "L1D sav%",
                    "L2 sav%",
                    "slow%"
                ],
                &rows
            )
        );
    }
    Ok(report)
}
