//! **Robustness: energy-model sensitivity.**
//!
//! The energy parameters are calibrated to 180 nm-era numbers, but the
//! paper's *conclusion* — hotspot adaptation beats interval adaptation —
//! should not hinge on those constants. This experiment scales the idle
//! (leakage + clock) power of both caches by 0.25x–4x and re-runs the
//! comparison: the tuners see the changed objective and re-decide, so this
//! is a true end-to-end sensitivity study, not a re-pricing of one run.

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};
use ace_core::{
    BbvAceManager, BbvManagerConfig, Experiment, HotspotAceManager, HotspotManagerConfig, RunConfig,
};
use ace_energy::EnergyModel;
use ace_workloads::PRESET_NAMES;

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ablation_energy_model");
    let out = &mut report.text;
    outln!(
        out,
        "Robustness: idle-power scaling sweep (averages over the 7 workloads)\n"
    );
    let mut rows = Vec::new();
    for scale in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let mut model = EnergyModel::default_180nm();
        model.l1d.leak_nj_per_cycle_max *= scale;
        model.l2.leak_nj_per_cycle_max *= scale;
        let mut bbv_sav = Vec::new();
        let mut hot_sav = Vec::new();
        let mut hot_slow = Vec::new();
        for name in PRESET_NAMES {
            let cfg = RunConfig {
                energy: model,
                ..RunConfig::default()
            };
            let base = Experiment::preset(name)
                .config(cfg.clone())
                .telemetry(&ctx.telemetry)
                .run()?;
            let mut b = BbvAceManager::new(BbvManagerConfig::default(), model);
            let rb = Experiment::preset(name)
                .config(cfg.clone())
                .telemetry(&ctx.telemetry)
                .run_with(&mut b)?;
            let mut h = HotspotAceManager::new(HotspotManagerConfig::default(), model);
            let rh = Experiment::preset(name)
                .config(cfg)
                .telemetry(&ctx.telemetry)
                .run_with(&mut h)?;
            bbv_sav.push(100.0 * (1.0 - rb.energy.total_nj() / base.energy.total_nj()));
            hot_sav.push(100.0 * (1.0 - rh.energy.total_nj() / base.energy.total_nj()));
            hot_slow.push(100.0 * rh.slowdown_vs(&base));
        }
        rows.push(vec![
            format!("{scale}x"),
            format!("{:.1}", mean(bbv_sav.iter().copied())),
            format!("{:.1}", mean(hot_sav.iter().copied())),
            format!(
                "{}",
                hot_sav.iter().zip(&bbv_sav).filter(|(h, b)| h > b).count()
            ),
            format!("{:.2}", mean(hot_slow.iter().copied())),
        ]);
    }
    outln!(
        out,
        "{}",
        format_table(
            &[
                "idle power",
                "BBV sav%",
                "hotspot sav%",
                "hotspot wins (of 7)",
                "hot slow%"
            ],
            &rows
        )
    );
    outln!(
        out,
        "\nThe ordering (hotspot > BBV) must hold across the whole sweep; the"
    );
    outln!(
        out,
        "absolute savings legitimately grow with idle power, since downsizing"
    );
    outln!(
        out,
        "an idle structure is exactly what adaptation monetizes."
    );
    Ok(report)
}
