//! **Ablation: CU decoupling** (Section 3.2's central claim).
//!
//! Runs the hotspot scheme twice per workload: with CU decoupling (each
//! hotspot tunes only the CU matching its size: 4 configurations) and
//! without (every adaptable hotspot walks all 16 combinatorial
//! configurations, with small hotspots' L2 requests mostly bouncing off
//! the 1 M-instruction hardware guard).

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};
use ace_core::{Experiment, HotspotAceManager, HotspotManagerConfig, RunConfig};
use ace_energy::EnergyModel;
use ace_workloads::PRESET_NAMES;

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("ablation_decoupling");
    let cfg = RunConfig::default();
    let model = EnergyModel::default_180nm();
    let mut rows = Vec::new();
    let mut agg: Vec<(f64, f64, f64, f64)> = Vec::new();

    for name in PRESET_NAMES {
        let base = Experiment::preset(name)
            .config(cfg.clone())
            .telemetry(&ctx.telemetry)
            .run()?;

        let run_one = |decouple: bool| -> BenchResult<(f64, f64, f64, f64, u64)> {
            let mut mgr = HotspotAceManager::new(
                HotspotManagerConfig {
                    decouple,
                    ..HotspotManagerConfig::default()
                },
                model,
            );
            let r = Experiment::preset(name)
                .config(cfg.clone())
                .telemetry(&ctx.telemetry)
                .run_with(&mut mgr)?;
            let rep = mgr.report();
            Ok((
                100.0 * (1.0 - r.energy.total_nj() / base.energy.total_nj()),
                100.0 * r.slowdown_vs(&base),
                100.0 * rep.tuned_fraction(),
                (rep.l1d().tunings + rep.l2().tunings) as f64,
                r.counters.guard_rejections,
            ))
        };
        let (s_on, sl_on, t_on, tr_on, _) = run_one(true)?;
        let (s_off, sl_off, t_off, tr_off, rej_off) = run_one(false)?;
        agg.push((s_on, s_off, sl_on, sl_off));
        rows.push(vec![
            name.to_string(),
            format!("{s_on:.1}"),
            format!("{s_off:.1}"),
            format!("{sl_on:.2}"),
            format!("{sl_off:.2}"),
            format!("{t_on:.0}%"),
            format!("{t_off:.0}%"),
            format!("{tr_on:.0}"),
            format!("{tr_off:.0}"),
            format!("{rej_off}"),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(agg.iter().map(|a| a.0))),
        format!("{:.1}", mean(agg.iter().map(|a| a.1))),
        format!("{:.2}", mean(agg.iter().map(|a| a.2))),
        format!("{:.2}", mean(agg.iter().map(|a| a.3))),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let out = &mut report.text;
    outln!(
        out,
        "Ablation: CU decoupling on vs off (total cache energy saving %, slowdown %,"
    );
    outln!(
        out,
        "tuned hotspot fraction, configuration trials, guard rejections)\n"
    );
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "savON",
                "savOFF",
                "slowON",
                "slowOFF",
                "tunedON",
                "tunedOFF",
                "trialsON",
                "trialsOFF",
                "rejOFF"
            ],
            &rows
        )
    );
    Ok(report)
}
