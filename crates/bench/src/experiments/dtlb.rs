//! **Extension: the DTLB as a registry-registered configurable unit**
//! (the Section 3.6 scalability claim, proven end to end).
//!
//! The 128-entry data TLB becomes a third adapted CU purely by data:
//! [`ace_sim::MachineConfig::dtlb_configurable`] registers a descriptor
//! (4-level ladder, 10 K-instruction reconfiguration interval,
//! invalidate-all flush semantics) with the machine's CU registry, the
//! DO system derives its hotspot grain from that descriptor, the tuner
//! walks `single_cu_list(CuId::Dtlb)`, and the energy model prices its
//! lookups, comparator leakage, and flush refills. No scheme code knows
//! the DTLB exists — which is the point.
//!
//! Hotspots of 10 K–50 K instructions — previously too small to adapt
//! anything — now tune the DTLB, while the kernel and stage hotspots
//! keep tuning the caches exactly as in the paper's evaluation.

use super::{outln, ExpCtx, Report};
use crate::{format_table, mean, BenchResult};
use ace_core::{Experiment, HotspotAceManager, HotspotManagerConfig, RunConfig};
use ace_energy::EnergyModel;
use ace_runtime::DoConfig;
use ace_sim::{CuId, MachineConfig};
use ace_workloads::PRESET_NAMES;

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let mut report = Report::new("dtlb");
    let model = EnergyModel::default_180nm_with_dtlb();

    // The DTLB joins by registration, not by code: flipping this flag
    // adds its descriptor to `MachineConfig::cu_registry()`.
    let mut machine = MachineConfig::table2();
    machine.dtlb_configurable = true;

    // Hotspot grains derived from the registry's descriptors. The window
    // CU stays vestigial (as in the paper's two-CU evaluation), so the
    // adapted set is L1D + L2 + DTLB.
    let mut do_config = DoConfig::for_registry(&machine.cu_registry());
    do_config.grains.retain(|g| g.cu != CuId::Window);

    let mut rows = Vec::new();
    let mut agg: Vec<[f64; 4]> = Vec::new();
    for name in PRESET_NAMES {
        let cfg = RunConfig {
            machine: machine.clone(),
            do_config: do_config.clone(),
            energy: model,
            ..RunConfig::default()
        };
        let base = Experiment::preset(name)
            .config(cfg.clone())
            .telemetry(&ctx.telemetry)
            .run()?;

        // The paper's two-CU manager on the same machine (DTLB counted,
        // never adapted) isolates what the third unit adds.
        let cfg2 = RunConfig {
            machine: machine.clone(),
            energy: model,
            ..RunConfig::default()
        };
        let mut two = HotspotAceManager::new(HotspotManagerConfig::default(), model);
        let r2 = Experiment::preset(name)
            .config(cfg2)
            .telemetry(&ctx.telemetry)
            .run_with(&mut two)?;

        let mut three = HotspotAceManager::new(HotspotManagerConfig::default(), model);
        let r3 = Experiment::preset(name)
            .config(cfg)
            .telemetry(&ctx.telemetry)
            .run_with(&mut three)?;
        let rep3 = three.report();

        let sav2 = 100.0 * (1.0 - r2.energy.total_nj() / base.energy.total_nj());
        let sav3 = 100.0 * (1.0 - r3.energy.total_nj() / base.energy.total_nj());
        let tlb_sav = 100.0 * (1.0 - r3.energy.dtlb_nj / base.energy.dtlb_nj);
        agg.push([
            sav2,
            sav3,
            100.0 * r2.slowdown_vs(&base),
            100.0 * r3.slowdown_vs(&base),
        ]);
        rows.push(vec![
            name.to_string(),
            format!("{sav2:.1}"),
            format!("{sav3:.1}"),
            format!("{tlb_sav:.1}"),
            format!("{:.2}", 100.0 * r2.slowdown_vs(&base)),
            format!("{:.2}", 100.0 * r3.slowdown_vs(&base)),
            format!("{}", rep3.hotspots_of(CuId::Dtlb)),
            format!("{}", rep3.dtlb().tunings),
            format!("{}", rep3.dtlb().reconfigs),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(agg.iter().map(|a| a[0]))),
        format!("{:.1}", mean(agg.iter().map(|a| a[1]))),
        String::new(),
        format!("{:.2}", mean(agg.iter().map(|a| a[2]))),
        format!("{:.2}", mean(agg.iter().map(|a| a[3]))),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let out = &mut report.text;
    outln!(
        out,
        "Extension: DTLB registered as a configurable unit (total CU energy,"
    );
    outln!(out, "including the DTLB in both denominators)\n");
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "2CU sav%",
                "+DTLB sav%",
                "TLB sav%",
                "2CU slow%",
                "+DTLB slow%",
                "TLB hs",
                "TLB tunings",
                "TLB reconfigs"
            ],
            &rows
        )
    );
    Ok(report)
}
