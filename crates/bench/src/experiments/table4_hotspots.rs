//! **Table 4** — Runtime hotspot characteristics of the SPECjvm98
//! workloads: dynamic instruction count, number of hotspots, average
//! hotspot size, % of code in hotspots, average invocations per hotspot,
//! and hotspot identification latency as % of total execution.

use super::{outln, ExpCtx, Report};
use crate::{format_table, BenchResult};

pub(super) fn run(ctx: &ExpCtx) -> BenchResult<Report> {
    let all = ctx.headline()?;
    let mut report = Report::new("table4_hotspots");
    let out = &mut report.text;
    let mut rows = Vec::new();
    for r in &all {
        let t = &r.hotspot.table4;
        rows.push(vec![
            r.workload.clone(),
            format!("{:.2e}", t.dynamic_instr as f64),
            format!("{}", t.hotspots),
            format!("{}", t.avg_hotspot_size),
            format!("{:.2}%", t.pct_code_in_hotspots),
            format!("{:.0}", t.avg_invocations),
            format!("{:.2}%", t.identification_latency_pct),
        ]);
    }
    outln!(out, "Table 4: runtime hotspot characteristics");
    outln!(
        out,
        "(paper at ~100x scale: 5-11e9 instr, 299-685 hotspots, sizes 15-82K,"
    );
    outln!(
        out,
        " >99% code in hotspots, 823-13091 invocations, latency 0.2-3.7%)\n"
    );
    outln!(
        out,
        "{}",
        format_table(
            &[
                "bench",
                "dyn instr",
                "hotspots",
                "avg size",
                "in hotspots",
                "invocs",
                "ident lat"
            ],
            &rows
        )
    );
    Ok(report)
}
