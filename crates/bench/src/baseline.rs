//! The perf-baseline file format (`BENCH_run.json`).
//!
//! `run_all --bench-out <path>` serializes one [`BenchRun`] per
//! invocation: one [`BenchEntry`] per headline workload (wall-clock plus
//! the headline energy/slowdown metrics) and one per sibling experiment
//! (wall-clock only). CI stores the file as an artifact; a later run can
//! load both files and compare — the metric fields are deterministic, so
//! any metric delta is a real behaviour change, while the wall fields
//! track harness cost over time.
//!
//! The format is versioned ([`BenchRun::SCHEMA_VERSION`]) and
//! append-friendly: readers must ignore entries whose `kind` they do not
//! know.

use crate::{BenchResult, WorkloadOutcome};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Deterministic headline metrics of one workload (from
/// [`crate::SchemeResults`]); everything here is schedule- and
/// machine-independent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadlineMetrics {
    /// Baseline-run IPC.
    pub baseline_ipc: f64,
    /// Hotspot-scheme L1D energy saving vs baseline, percent.
    pub hotspot_l1d_saving_pct: f64,
    /// Hotspot-scheme L2 energy saving vs baseline, percent.
    pub hotspot_l2_saving_pct: f64,
    /// Hotspot-scheme slowdown vs baseline, percent.
    pub hotspot_slowdown_pct: f64,
    /// BBV-scheme L1D energy saving vs baseline, percent.
    pub bbv_l1d_saving_pct: f64,
    /// BBV-scheme L2 energy saving vs baseline, percent.
    pub bbv_l2_saving_pct: f64,
    /// BBV-scheme slowdown vs baseline, percent.
    pub bbv_slowdown_pct: f64,
}

/// Throughput metrics of one fleet pass — wall-clock-derived, so they
/// live beside `wall_ms` in the baseline (never in deterministic report
/// text) and let `perf_gate` catch fleet throughput regressions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Machines completed per second of pass wall-clock.
    pub machines_per_sec: f64,
    /// Machines shed by the admission bound (deterministic).
    pub shed: u64,
    /// Store hit rate of the pass in `[0, 1]` (deterministic).
    pub warm_hit_rate: f64,
}

/// One timed unit of `run_all` work.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Entry kind: `"workload"`, `"experiment"`, `"fleet"`, or
    /// `"microbench"`. Readers must ignore kinds they do not know.
    pub kind: String,
    /// Workload preset or experiment name.
    pub name: String,
    /// Worker wall-clock in milliseconds (0 for cache hits).
    /// `microbench` entries carry ns/iter here instead — the gate only
    /// ever compares this field against the same entry in another run,
    /// so the unit just has to be consistent per kind.
    pub wall_ms: f64,
    /// Whether the result came from the content-addressed cache.
    pub cached: bool,
    /// Headline metrics — present for workload entries only.
    pub headline: Option<HeadlineMetrics>,
    /// Fleet throughput metrics — present for fleet entries only.
    #[serde(default)]
    pub fleet: Option<FleetMetrics>,
}

/// One `run_all` invocation's perf baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRun {
    /// Format version ([`BenchRun::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Version of the bench crate that produced the file.
    pub crate_version: String,
    /// Worker-pool width the run used.
    pub jobs: usize,
    /// One entry per timed unit, in run order.
    pub entries: Vec<BenchEntry>,
}

impl BenchRun {
    /// Current file-format version.
    pub const SCHEMA_VERSION: u32 = 1;

    /// An empty baseline for a run at `jobs` width.
    pub fn new(jobs: usize) -> BenchRun {
        BenchRun {
            schema_version: BenchRun::SCHEMA_VERSION,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            jobs,
            entries: Vec::new(),
        }
    }

    /// Appends one headline workload's outcome.
    pub fn push_workload(&mut self, outcome: &WorkloadOutcome) {
        let r = &outcome.results;
        self.entries.push(BenchEntry {
            kind: "workload".to_string(),
            name: r.workload.clone(),
            wall_ms: outcome.wall.as_secs_f64() * 1_000.0,
            cached: outcome.cached,
            headline: Some(HeadlineMetrics {
                baseline_ipc: r.baseline.ipc,
                hotspot_l1d_saving_pct: r.hotspot_l1d_saving_pct(),
                hotspot_l2_saving_pct: r.hotspot_l2_saving_pct(),
                hotspot_slowdown_pct: r.hotspot_slowdown_pct(),
                bbv_l1d_saving_pct: r.bbv_l1d_saving_pct(),
                bbv_l2_saving_pct: r.bbv_l2_saving_pct(),
                bbv_slowdown_pct: r.bbv_slowdown_pct(),
            }),
            fleet: None,
        });
    }

    /// Appends one sibling experiment's timing.
    pub fn push_experiment(&mut self, name: &str, wall: std::time::Duration) {
        self.entries.push(BenchEntry {
            kind: "experiment".to_string(),
            name: name.to_string(),
            wall_ms: wall.as_secs_f64() * 1_000.0,
            cached: false,
            headline: None,
            fleet: None,
        });
    }

    /// Appends one fleet pass: wall-clock plus throughput metrics, so
    /// the gate can compare fleet runtime and machines/sec between
    /// baselines. A cache-served pass passes `wall` zero and `cached`
    /// true; it times nothing and the gate skips it.
    pub fn push_fleet(
        &mut self,
        name: &str,
        wall: std::time::Duration,
        cached: bool,
        metrics: FleetMetrics,
    ) {
        self.entries.push(BenchEntry {
            kind: "fleet".to_string(),
            name: name.to_string(),
            wall_ms: wall.as_secs_f64() * 1_000.0,
            cached,
            headline: None,
            fleet: Some(metrics),
        });
    }

    /// Writes the baseline as JSON, atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Fails when the parent directory cannot be created or the file
    /// cannot be written.
    pub fn write(&self, path: impl AsRef<Path>) -> BenchResult<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, serde_json::to_string(self).expect("serializable"))?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a previously written baseline.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a file that does not parse as a
    /// [`BenchRun`].
    pub fn load(path: impl AsRef<Path>) -> BenchResult<BenchRun> {
        let path = path.as_ref();
        let data = std::fs::read_to_string(path)?;
        serde_json::from_str(&data)
            .map_err(|e| crate::BenchError::msg(format!("{}: {e}", path.display())))
    }

    /// Loads the JSONL stream the vendored criterion appends when
    /// `ACE_MICROBENCH_JSON` is set (one
    /// `{"name":"<group>/<bench>","ns_per_iter":N}` line per measured
    /// benchmark) into a [`BenchRun`] of `"microbench"` entries, ns/iter
    /// carried in `wall_ms`. The file is append-mode, so when a name
    /// repeats (stale lines from an earlier `cargo bench`), the **last**
    /// measurement wins.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or any line that is not a microbench record.
    pub fn load_microbench_jsonl(path: impl AsRef<Path>) -> BenchResult<BenchRun> {
        #[derive(Deserialize)]
        struct MicrobenchRecord {
            name: String,
            ns_per_iter: f64,
        }
        let path = path.as_ref();
        let data = std::fs::read_to_string(path)?;
        let mut run = BenchRun::new(1);
        for line in data.lines().filter(|l| !l.trim().is_empty()) {
            let record: MicrobenchRecord = serde_json::from_str(line)
                .map_err(|e| crate::BenchError::msg(format!("{}: {e}", path.display())))?;
            match run.entries.iter_mut().find(|e| e.name == record.name) {
                Some(entry) => entry.wall_ms = record.ns_per_iter,
                None => run.entries.push(BenchEntry {
                    kind: "microbench".to_string(),
                    name: record.name,
                    wall_ms: record.ns_per_iter,
                    cached: false,
                    headline: None,
                    fleet: None,
                }),
            }
        }
        Ok(run)
    }
}

/// One workload's wall-clock comparison between two baselines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateRow {
    /// Workload name.
    pub name: String,
    /// Committed-baseline wall-clock, milliseconds.
    pub baseline_ms: f64,
    /// Current-run wall-clock, milliseconds.
    pub current_ms: f64,
    /// `current / baseline - 1`, as a percentage (positive = slower).
    pub delta_pct: f64,
    /// Whether this row exceeds the gate threshold.
    pub regressed: bool,
}

/// Result of gating a current [`BenchRun`] against a committed baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateReport {
    /// Threshold used, percent.
    pub threshold_pct: f64,
    /// One row per headline workload present (uncached) in both runs.
    pub rows: Vec<GateRow>,
    /// Workload entries that could not be compared (cached or missing on
    /// one side) — informational, never gating.
    pub skipped: Vec<String>,
}

impl GateReport {
    /// `true` if any compared workload regressed beyond the threshold.
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }
}

/// Compares the headline-workload, fleet-pass, and microbench timings
/// of `current` against `baseline`, flagging any entry more than
/// `threshold_pct` percent slower; fleet entries additionally gate on a
/// machines/sec drop of the same magnitude. Cache-hit entries time
/// nothing and are skipped, as are entries present on only one side;
/// sibling-experiment entries never gate (they time report generation,
/// not the simulator).
pub fn gate_against_baseline(
    baseline: &BenchRun,
    current: &BenchRun,
    threshold_pct: f64,
) -> GateReport {
    let gated = |run: &BenchRun| -> Vec<BenchEntry> {
        run.entries
            .iter()
            .filter(|e| e.kind == "workload" || e.kind == "fleet" || e.kind == "microbench")
            .cloned()
            .collect()
    };
    let base_entries = gated(baseline);
    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    for cur in gated(current) {
        let Some(base) = base_entries
            .iter()
            .find(|e| e.name == cur.name && e.kind == cur.kind)
        else {
            skipped.push(format!("{} (not in baseline)", cur.name));
            continue;
        };
        if cur.cached || base.cached || base.wall_ms <= 0.0 {
            skipped.push(format!("{} (cached)", cur.name));
            continue;
        }
        let delta_pct = (cur.wall_ms / base.wall_ms - 1.0) * 100.0;
        rows.push(GateRow {
            name: cur.name.clone(),
            baseline_ms: base.wall_ms,
            current_ms: cur.wall_ms,
            delta_pct,
            regressed: delta_pct > threshold_pct,
        });
        // Fleet throughput: a machines/sec drop is the same regression
        // seen from the other side of the division, but it survives
        // wall-clock noise differently (throughput covers both passes'
        // useful work), so it gates as its own row.
        if let (Some(base_fleet), Some(cur_fleet)) = (&base.fleet, &cur.fleet) {
            if base_fleet.machines_per_sec > 0.0 && cur_fleet.machines_per_sec > 0.0 {
                let drop_pct =
                    (base_fleet.machines_per_sec / cur_fleet.machines_per_sec - 1.0) * 100.0;
                rows.push(GateRow {
                    name: format!("{} (machines/sec)", cur.name),
                    baseline_ms: base_fleet.machines_per_sec,
                    current_ms: cur_fleet.machines_per_sec,
                    delta_pct: drop_pct,
                    regressed: drop_pct > threshold_pct,
                });
            }
        }
    }
    for base in &base_entries {
        if !current
            .entries
            .iter()
            .any(|e| e.kind == base.kind && e.name == base.name)
        {
            skipped.push(format!("{} (not in current run)", base.name));
        }
    }
    GateReport {
        threshold_pct,
        rows,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn run_with_workloads(entries: &[(&str, f64, bool)]) -> BenchRun {
        let mut run = BenchRun::new(1);
        for &(name, wall_ms, cached) in entries {
            run.entries.push(BenchEntry {
                kind: "workload".to_string(),
                name: name.to_string(),
                wall_ms,
                cached,
                headline: None,
                fleet: None,
            });
        }
        run
    }

    #[test]
    fn gate_passes_within_threshold() {
        let base = run_with_workloads(&[("db", 1000.0, false), ("compress", 2000.0, false)]);
        let cur = run_with_workloads(&[("db", 1200.0, false), ("compress", 1900.0, false)]);
        let report = gate_against_baseline(&base, &cur, 25.0);
        assert!(!report.regressed());
        assert_eq!(report.rows.len(), 2);
        assert!((report.rows[0].delta_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn gate_fails_beyond_threshold() {
        let base = run_with_workloads(&[("db", 1000.0, false)]);
        let cur = run_with_workloads(&[("db", 1300.0, false)]);
        let report = gate_against_baseline(&base, &cur, 25.0);
        assert!(report.regressed());
        assert!(report.rows[0].regressed);
    }

    #[test]
    fn gate_skips_cached_and_unmatched_entries() {
        let base = run_with_workloads(&[("db", 1000.0, false), ("gone", 500.0, false)]);
        let cur = run_with_workloads(&[("db", 900.0, true), ("new", 700.0, false)]);
        let report = gate_against_baseline(&base, &cur, 25.0);
        assert!(report.rows.is_empty());
        assert!(!report.regressed(), "nothing comparable, nothing gates");
        assert_eq!(report.skipped.len(), 3);
    }

    #[test]
    fn experiments_never_gate() {
        let mut base = run_with_workloads(&[]);
        base.push_experiment("sensitivity", Duration::from_millis(100));
        let mut cur = run_with_workloads(&[]);
        cur.push_experiment("sensitivity", Duration::from_millis(100_000));
        let report = gate_against_baseline(&base, &cur, 25.0);
        assert!(!report.regressed());
    }

    #[test]
    fn fleet_entries_gate_wall_and_throughput() {
        let fleet = |wall_ms: f64, mps: f64| {
            let mut run = BenchRun::new(2);
            run.push_fleet(
                "fleet/smoke",
                Duration::from_secs_f64(wall_ms / 1_000.0),
                false,
                FleetMetrics {
                    machines_per_sec: mps,
                    shed: 0,
                    warm_hit_rate: 0.8,
                },
            );
            run
        };
        let base = fleet(10_000.0, 12.8);

        // Same wall, big throughput drop: only the throughput row flags.
        let slow_throughput = fleet(10_000.0, 6.4);
        let report = gate_against_baseline(&base, &slow_throughput, 25.0);
        assert!(report.regressed());
        let flagged: Vec<&str> = report
            .rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(flagged, vec!["fleet/smoke (machines/sec)"]);

        // Slower wall clock flags the wall row too.
        let slow_wall = fleet(20_000.0, 12.8);
        let report = gate_against_baseline(&base, &slow_wall, 25.0);
        assert!(report
            .rows
            .iter()
            .any(|r| r.name == "fleet/smoke" && r.regressed));

        // Within threshold: nothing flags.
        let fine = fleet(10_500.0, 12.0);
        assert!(!gate_against_baseline(&base, &fine, 25.0).regressed());

        // A baseline without fleet entries skips them (no false gating).
        let old_baseline = run_with_workloads(&[("db", 1000.0, false)]);
        let report = gate_against_baseline(&old_baseline, &fleet(10_000.0, 12.8), 25.0);
        assert!(!report.regressed());
        assert!(report.skipped.iter().any(|s| s.contains("fleet/smoke")));
    }

    #[test]
    fn microbench_jsonl_loads_and_gates() {
        let dir = std::env::temp_dir().join(format!("ace_bench_micro_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("micro.jsonl");
        // Append-mode file with a stale first measurement of exec_block:
        // the last line for a name must win.
        std::fs::write(
            &path,
            concat!(
                "{\"name\":\"exec_block/hits\",\"ns_per_iter\":120.0}\n",
                "{\"name\":\"batch/lanes8\",\"ns_per_iter\":60.0}\n",
                "{\"name\":\"exec_block/hits\",\"ns_per_iter\":100.0}\n",
            ),
        )
        .unwrap();
        let base = BenchRun::load_microbench_jsonl(&path).unwrap();
        assert_eq!(base.entries.len(), 2);
        assert!(base.entries.iter().all(|e| e.kind == "microbench"));
        assert_eq!(base.entries[0].wall_ms, 100.0, "last measurement wins");

        // 10% slower passes a 50% gate; 2x slower fails it.
        let mut ok = base.clone();
        ok.entries[0].wall_ms = 110.0;
        assert!(!gate_against_baseline(&base, &ok, 50.0).regressed());
        let mut slow = base.clone();
        slow.entries[1].wall_ms = 125.0;
        let report = gate_against_baseline(&base, &slow, 50.0);
        assert!(report.regressed());
        let flagged: Vec<&str> = report
            .rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(flagged, vec!["batch/lanes8"]);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let mut run = BenchRun::new(4);
        run.push_experiment("sensitivity", Duration::from_millis(1500));
        let dir = std::env::temp_dir().join(format!("ace_bench_out_{}", std::process::id()));
        let path = dir.join("BENCH_run.json");
        run.write(&path).unwrap();
        let back = BenchRun::load(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(back.schema_version, BenchRun::SCHEMA_VERSION);
        assert_eq!(back.jobs, 4);
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].kind, "experiment");
        assert_eq!(back.entries[0].name, "sensitivity");
        assert!((back.entries[0].wall_ms - 1500.0).abs() < 1e-9);
        assert!(back.entries[0].headline.is_none());
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("ace_bench_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json").unwrap();
        let err = BenchRun::load(&path).unwrap_err();
        let _ = std::fs::remove_dir_all(&dir);
        assert!(err.to_string().contains("bad.json"));
    }
}
