//! # Work-stealing experiment engine
//!
//! Every unit of evaluation work — one (workload × scheme) run, one
//! sibling experiment — becomes a [`Job`] with a deterministic key. Jobs
//! fan out across a fixed-size pool of scoped OS threads pulling from a
//! shared queue ([`run_jobs`]); results and telemetry are merged back **in
//! submission order**, so every output table, cached JSON file, and
//! telemetry summary is byte-identical to a serial (`--jobs 1`) run.
//!
//! Determinism recipe:
//!
//! * workers only *compute*; nothing is printed or written from inside a
//!   job,
//! * each job records into its own buffered [`Telemetry`] child handle
//!   ([`Telemetry::buffered`]),
//! * after the pool drains, children are absorbed into the parent handle
//!   in job-submission order ([`Telemetry::absorb_child`]),
//! * panics are caught per job and surface as [`BenchError`]s, so one
//!   crashing experiment cannot take down the pool.

use ace_core::ExperimentError;
use ace_telemetry::Telemetry;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Error type of the bench harness: a message, optionally chained from an
/// experiment or I/O failure.
#[derive(Debug, Clone)]
pub struct BenchError(String);

impl BenchError {
    /// Wraps a message.
    pub fn msg(text: impl Into<String>) -> BenchError {
        BenchError(text.into())
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BenchError {}

impl From<String> for BenchError {
    fn from(s: String) -> BenchError {
        BenchError(s)
    }
}

impl From<&str> for BenchError {
    fn from(s: &str) -> BenchError {
        BenchError(s.to_string())
    }
}

impl From<ExperimentError> for BenchError {
    fn from(e: ExperimentError) -> BenchError {
        BenchError(e.to_string())
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> BenchError {
        BenchError(e.to_string())
    }
}

/// Result alias used across the harness.
pub type BenchResult<T> = Result<T, BenchError>;

/// One schedulable unit of work with a deterministic key.
///
/// The closure receives the job's own telemetry handle — a buffered child
/// of the pool's parent handle when tracing is on, [`Telemetry::off`]
/// otherwise — and must route any events through it rather than a shared
/// handle, or cross-job interleaving would become schedule-dependent.
pub struct Job<T> {
    key: String,
    #[allow(clippy::type_complexity)]
    work: Box<dyn FnOnce(&Telemetry) -> BenchResult<T> + Send>,
}

impl<T> Job<T> {
    /// A job named `key` running `work`.
    pub fn new(
        key: impl Into<String>,
        work: impl FnOnce(&Telemetry) -> BenchResult<T> + Send + 'static,
    ) -> Job<T> {
        Job {
            key: key.into(),
            work: Box::new(work),
        }
    }

    /// The job's deterministic key (e.g. `"javac/hotspot"`).
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// The outcome of one [`Job`], in submission order.
pub struct JobOutcome<T> {
    /// The job's key.
    pub key: String,
    /// Computed value, or the failure/panic message.
    pub result: BenchResult<T>,
    /// Wall-clock time the job spent on its worker.
    pub wall: Duration,
    /// Time the job sat in the queue before a worker dequeued it.
    pub queue_wait: Duration,
}

/// Bucket bounds (milliseconds) for the engine's scheduling histograms.
/// Spans sub-millisecond dequeues up to minute-long experiment jobs.
const MS_BUCKETS: [f64; 10] = [
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 15_000.0, 60_000.0,
];

/// Worker-pool width: `ACE_JOBS` if set and positive, else the machine's
/// available parallelism, else 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("ACE_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `jobs` on a pool of at most `width` scoped threads and returns
/// their outcomes **in submission order**, having absorbed each job's
/// buffered telemetry into `telemetry` in that same order.
///
/// A job that returns `Err` or panics yields an `Err` outcome; the other
/// jobs are unaffected. `width` is clamped to `1..=jobs.len()`.
pub fn run_jobs<T: Send>(
    jobs: Vec<Job<T>>,
    width: usize,
    telemetry: &Telemetry,
) -> Vec<JobOutcome<T>> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let width = width.max(1).min(n);

    struct Done<T> {
        key: String,
        result: BenchResult<T>,
        child: Telemetry,
        events: Vec<ace_telemetry::Event>,
        wall: Duration,
        queue_wait: Duration,
    }

    let queue: Mutex<VecDeque<(usize, Job<T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let mut slots: Vec<Option<Done<T>>> = (0..n).map(|_| None).collect();
    let pool_start = Instant::now();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|_| {
                let queue = &queue;
                let parent = telemetry;
                scope.spawn(move || {
                    let mut done: Vec<(usize, Done<T>)> = Vec::new();
                    loop {
                        let next = queue.lock().expect("job queue").pop_front();
                        let Some((index, job)) = next else { break };
                        let queue_wait = pool_start.elapsed();
                        let (child, buffer) = if parent.is_enabled() {
                            let (tel, sink) = Telemetry::buffered();
                            (tel, Some(sink))
                        } else {
                            (Telemetry::off(), None)
                        };
                        let Job { key, work } = job;
                        let start = Instant::now();
                        let result = match catch_unwind(AssertUnwindSafe(|| work(&child))) {
                            Ok(r) => r,
                            Err(panic) => Err(BenchError::msg(format!(
                                "job {key} panicked: {}",
                                panic_text(&*panic)
                            ))),
                        };
                        let wall = start.elapsed();
                        let events = buffer.map(|b| b.drain()).unwrap_or_default();
                        done.push((
                            index,
                            Done {
                                key,
                                result,
                                child,
                                events,
                                wall,
                                queue_wait,
                            },
                        ));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (index, done) in handle.join().expect("worker thread") {
                slots[index] = Some(done);
            }
        }
    });

    // Merge phase, strictly in submission order: telemetry replay here is
    // what makes a parallel run byte-identical to a serial one. Scheduling
    // histograms live in the metrics registry (the wall-clock domain), so
    // recording them here does not perturb the deterministic event stream.
    let histograms = telemetry.metrics().map(|m| {
        m.counter("engine.jobs").add(n as u64);
        (
            m.histogram("engine.job_wall_ms", &MS_BUCKETS),
            m.histogram("engine.queue_wait_ms", &MS_BUCKETS),
        )
    });
    slots
        .into_iter()
        .map(|slot| {
            let done = slot.expect("every job ran");
            telemetry.absorb_child(&done.child, &done.events);
            if let Some((wall_hist, wait_hist)) = &histograms {
                wall_hist.record(done.wall.as_secs_f64() * 1_000.0);
                wait_hist.record(done.queue_wait.as_secs_f64() * 1_000.0);
            }
            JobOutcome {
                key: done.key,
                result: done.result,
                wall: done.wall,
                queue_wait: done.queue_wait,
            }
        })
        .collect()
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_telemetry::{Event, EventKind, Scope};

    fn tuning_event(i: u64) -> Event {
        Event::TuningStarted {
            scope: Scope::Hotspot { method: i as u32 },
            configs: 4,
            instret: i,
        }
    }

    #[test]
    fn outcomes_preserve_submission_order() {
        let jobs: Vec<Job<u64>> = (0..32)
            .map(|i| Job::new(format!("job{i}"), move |_t| Ok(i * i)))
            .collect();
        let out = run_jobs(jobs, 8, &Telemetry::off());
        assert_eq!(out.len(), 32);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.key, format!("job{i}"));
            assert_eq!(*o.result.as_ref().unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn failures_and_panics_are_collected_not_fatal() {
        let jobs: Vec<Job<u32>> = vec![
            Job::new("ok", |_t| Ok(1)),
            Job::new("err", |_t| Err(BenchError::msg("deliberate"))),
            Job::new("boom", |_t| panic!("kaboom")),
            Job::new("also-ok", |_t| Ok(2)),
        ];
        let out = run_jobs(jobs, 4, &Telemetry::off());
        assert_eq!(*out[0].result.as_ref().unwrap(), 1);
        assert!(out[1]
            .result
            .as_ref()
            .unwrap_err()
            .to_string()
            .contains("deliberate"));
        let boom = out[2].result.as_ref().unwrap_err().to_string();
        assert!(boom.contains("boom") && boom.contains("kaboom"), "{boom}");
        assert_eq!(*out[3].result.as_ref().unwrap(), 2);
    }

    #[test]
    fn telemetry_replays_in_submission_order_at_any_width() {
        let streams: Vec<Vec<Event>> = (0..3)
            .map(|_| {
                let jobs: Vec<Job<()>> = (0..12u64)
                    .map(|i| {
                        Job::new(format!("j{i}"), move |t: &Telemetry| {
                            t.emit(|| tuning_event(i));
                            t.metrics().unwrap().counter("jobs_run").inc();
                            Ok(())
                        })
                    })
                    .collect();
                let (parent, ring) = Telemetry::ring(64);
                let out = run_jobs(jobs, 5, &parent);
                assert!(out.iter().all(|o| o.result.is_ok()));
                assert_eq!(parent.count(EventKind::TuningStarted), 12);
                assert_eq!(parent.metrics().unwrap().counter("jobs_run").get(), 12);
                ring.snapshot()
            })
            .collect();
        // Same order every time, and the order is submission order.
        assert_eq!(streams[0], streams[1]);
        assert_eq!(streams[1], streams[2]);
        let serial: Vec<Event> = (0..12u64).map(tuning_event).collect();
        assert_eq!(streams[0], serial);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn scheduling_histograms_record_one_sample_per_job() {
        let jobs: Vec<Job<()>> = (0..6)
            .map(|i| Job::new(format!("j{i}"), |_t| Ok(())))
            .collect();
        let tel = Telemetry::counting();
        let out = run_jobs(jobs, 3, &tel);
        assert_eq!(out.len(), 6);
        let metrics = tel.metrics().unwrap();
        let wall = metrics.histogram("engine.job_wall_ms", &MS_BUCKETS);
        let wait = metrics.histogram("engine.queue_wait_ms", &MS_BUCKETS);
        assert_eq!(wall.count(), 6);
        assert_eq!(wait.count(), 6);
        assert_eq!(metrics.counter("engine.jobs").get(), 6);
        // Queue wait is measured from pool start, so it is monotone in
        // dequeue order and the sum must cover every sample.
        assert!(wait.sum() >= 0.0);
    }

    #[test]
    fn disabled_telemetry_records_no_histograms() {
        let jobs: Vec<Job<()>> = vec![Job::new("solo", |_t| Ok(()))];
        let out = run_jobs(jobs, 1, &Telemetry::off());
        assert!(out[0].result.is_ok());
        assert!(out[0].wall >= Duration::ZERO);
    }
}
