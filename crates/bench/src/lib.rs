//! # ace-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section.
//! Each experiment is a binary (see `src/bin/`); this library holds the
//! shared machinery: running one workload under the three schemes
//! (non-adaptive baseline, BBV, hotspot), caching results as JSON under
//! `results/`, and formatting report tables.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p ace-bench --bin run_all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ace_core::{
    run_with_manager, BbvAceManager, BbvManagerConfig, BbvReport, HotspotAceManager,
    HotspotManagerConfig, HotspotReport, NullManager, RunConfig, RunRecord,
};
use ace_energy::EnergyModel;
use ace_telemetry::Telemetry;
use ace_workloads::PRESET_NAMES;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Bump when any change invalidates cached results.
pub const RESULT_VERSION: u32 = 2;

/// The three runs of one workload plus the scheme reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeResults {
    /// Cache-format version stamp.
    pub version: u32,
    /// Workload name.
    pub workload: String,
    /// Non-adaptive run (maximum cache sizes).
    pub baseline: RunRecord,
    /// BBV + tune-all-combinations run.
    pub bbv: RunRecord,
    /// BBV scheme report.
    pub bbv_report: BbvReport,
    /// Hotspot (DO-based) run.
    pub hotspot: RunRecord,
    /// Hotspot scheme report.
    pub hotspot_report: HotspotReport,
}

impl SchemeResults {
    /// L1D energy saving of the hotspot scheme vs baseline, in percent.
    pub fn hotspot_l1d_saving_pct(&self) -> f64 {
        100.0 * self.hotspot.l1d_saving_vs(&self.baseline)
    }

    /// L2 energy saving of the hotspot scheme vs baseline, in percent.
    pub fn hotspot_l2_saving_pct(&self) -> f64 {
        100.0 * self.hotspot.l2_saving_vs(&self.baseline)
    }

    /// L1D energy saving of the BBV scheme vs baseline, in percent.
    pub fn bbv_l1d_saving_pct(&self) -> f64 {
        100.0 * self.bbv.l1d_saving_vs(&self.baseline)
    }

    /// L2 energy saving of the BBV scheme vs baseline, in percent.
    pub fn bbv_l2_saving_pct(&self) -> f64 {
        100.0 * self.bbv.l2_saving_vs(&self.baseline)
    }

    /// Hotspot-scheme slowdown vs baseline, in percent.
    pub fn hotspot_slowdown_pct(&self) -> f64 {
        100.0 * self.hotspot.slowdown_vs(&self.baseline)
    }

    /// BBV-scheme slowdown vs baseline, in percent.
    pub fn bbv_slowdown_pct(&self) -> f64 {
        100.0 * self.bbv.slowdown_vs(&self.baseline)
    }
}

/// Standard run configuration used by every experiment.
pub fn standard_run_config() -> RunConfig {
    RunConfig::default()
}

/// Runs one workload under all three schemes (no caching).
///
/// # Panics
///
/// Panics if `name` is not one of [`PRESET_NAMES`] (the Table 2 machine
/// configuration itself is statically valid).
pub fn run_workload(name: &str) -> SchemeResults {
    run_workload_with(name, &Telemetry::off())
}

/// [`run_workload`] with an observability handle: all three scheme runs
/// share it, so the event stream interleaves baseline promotions with the
/// adaptive managers' decisions.
///
/// # Panics
///
/// Panics if `name` is not one of [`PRESET_NAMES`].
pub fn run_workload_with(name: &str, telemetry: &Telemetry) -> SchemeResults {
    let program = ace_workloads::preset(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let cfg = RunConfig {
        telemetry: telemetry.clone(),
        ..standard_run_config()
    };
    let model = EnergyModel::default_180nm();

    let baseline = run_with_manager(&program, &cfg, &mut NullManager).expect("baseline run");

    let mut bbv_mgr = BbvAceManager::new(BbvManagerConfig::default(), model);
    let bbv = run_with_manager(&program, &cfg, &mut bbv_mgr).expect("bbv run");
    let bbv_report = bbv_mgr.report();

    let mut hs_mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let hotspot = run_with_manager(&program, &cfg, &mut hs_mgr).expect("hotspot run");
    let mut hotspot_report = hs_mgr.report();
    hotspot_report.guard_rejections = hotspot.counters.guard_rejections;

    SchemeResults {
        version: RESULT_VERSION,
        workload: name.to_string(),
        baseline,
        bbv,
        bbv_report,
        hotspot,
        hotspot_report,
    }
}

/// Directory where cached results live.
pub fn results_dir() -> PathBuf {
    let root = std::env::var("ACE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(root)
}

fn cache_path(name: &str) -> PathBuf {
    results_dir().join(format!("{name}.json"))
}

/// Loads cached results for `name`, or runs and caches them. Set
/// `ACE_FRESH=1` to force re-running.
pub fn load_or_run(name: &str) -> SchemeResults {
    load_or_run_with(name, &Telemetry::off())
}

/// [`load_or_run`] with an observability handle. A cache hit returns the
/// stored record without re-running, so it emits no events; set
/// `ACE_FRESH=1` to force fresh (and therefore fully traced) runs.
pub fn load_or_run_with(name: &str, telemetry: &Telemetry) -> SchemeResults {
    let path = cache_path(name);
    if std::env::var("ACE_FRESH").is_err() {
        if let Some(cached) = try_load(&path) {
            return cached;
        }
    }
    let results = run_workload_with(name, telemetry);
    if let Err(e) = save(&path, &results) {
        eprintln!("warning: could not cache {}: {e}", path.display());
    }
    results
}

fn try_load(path: &Path) -> Option<SchemeResults> {
    let data = std::fs::read_to_string(path).ok()?;
    let parsed: SchemeResults = serde_json::from_str(&data).ok()?;
    (parsed.version == RESULT_VERSION).then_some(parsed)
}

fn save(path: &Path, results: &SchemeResults) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, serde_json::to_string(results).expect("serializable"))
}

/// Runs (or loads) all seven workloads, in parallel across workloads.
pub fn load_or_run_all() -> Vec<SchemeResults> {
    load_or_run_all_with(&Telemetry::off())
}

/// [`load_or_run_all`] with an observability handle shared by every
/// worker thread (the sinks are internally synchronised).
pub fn load_or_run_all_with(telemetry: &Telemetry) -> Vec<SchemeResults> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = PRESET_NAMES
            .iter()
            .map(|name| scope.spawn(move || load_or_run_with(name, telemetry)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
}

/// Parses the shared `--telemetry <path>` CLI flag: returns a JSONL-file
/// handle when present, [`Telemetry::off`] otherwise. Exits with a
/// message if the path cannot be created. Cached results skip their runs
/// and therefore their events — combine with `ACE_FRESH=1` for a full
/// trace.
pub fn telemetry_from_args() -> Telemetry {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--telemetry" {
            let Some(path) = args.next() else {
                eprintln!("--telemetry requires a file path");
                std::process::exit(2);
            };
            match Telemetry::jsonl(&path) {
                Ok(tel) => return tel,
                Err(e) => {
                    eprintln!("cannot open telemetry file {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    Telemetry::off()
}

/// Flushes and prints the telemetry summary (event counts + metrics) to
/// stderr when the handle is enabled; silent otherwise.
pub fn print_telemetry_summary(telemetry: &Telemetry) {
    if telemetry.is_enabled() {
        telemetry.flush();
        eprint!("{}", telemetry.summary());
    }
}

/// Formats a row-major table with a header, aligning columns.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders grouped horizontal bars (one row per label, one bar per
/// series) — the closest a terminal gets to the paper's figures.
///
/// `series` pairs a short name with one value per label. Values are
/// scaled to `width` columns against the maximum across all series;
/// negative values render as a left-pointing bar.
pub fn bar_chart(labels: &[&str], series: &[(&str, Vec<f64>)], width: usize) -> String {
    let mut out = String::new();
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter())
        .fold(1e-9f64, |m, &v| m.max(v.abs()));
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(4).max(4);
    let name_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(3);
    for (i, label) in labels.iter().enumerate() {
        for (j, (name, values)) in series.iter().enumerate() {
            let v = values.get(i).copied().unwrap_or(0.0);
            let cols = ((v.abs() / max) * width as f64).round() as usize;
            let bar: String = std::iter::repeat_n(if j == 0 { '█' } else { '▒' }, cols).collect();
            let sign = if v < 0.0 { "-" } else { "" };
            out.push_str(&format!(
                "{:>label_w$} {:<name_w$} |{sign}{bar} {v:.1}
",
                if j == 0 { label } else { "" },
                name,
            ));
        }
    }
    out
}

/// Appends one experiment's formatted output to `results/SUMMARY.md`.
pub fn append_summary(section: &str, body: &str) {
    let path = results_dir().join("SUMMARY.md");
    let _ = std::fs::create_dir_all(results_dir());
    let mut text = std::fs::read_to_string(&path).unwrap_or_default();
    // Replace an existing section of the same name, else append.
    let header = format!(
        "## {section}
"
    );
    if let Some(start) = text.find(&header) {
        let rest = &text[start + header.len()..];
        let end = rest
            .find(
                "
## ",
            )
            .map(|e| start + header.len() + e + 1)
            .unwrap_or(text.len());
        text.replace_range(start..end, "");
    }
    text.push_str(&header);
    text.push_str(
        "
```text
",
    );
    text.push_str(body.trim_end());
    text.push_str(
        "
```

",
    );
    let _ = std::fs::write(&path, text);
}

/// Arithmetic mean (the paper's "avg" rows average percentages).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_table_aligns() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "123456".into()],
            ],
        );
        assert!(t.contains("long-name"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }

    #[test]
    fn bar_chart_scales_and_labels() {
        let chart = bar_chart(
            &["db", "jess"],
            &[("BBV", vec![10.0, 20.0]), ("hot", vec![40.0, -5.0])],
            20,
        );
        assert!(chart.contains("db"));
        assert!(chart.contains("jess"));
        assert!(chart.contains("40.0"));
        assert!(
            chart.contains("-▒ 5.0") || chart.contains("-5.0"),
            "{chart}"
        );
        // The largest value spans the full width (second series uses ▒).
        let max_line = chart.lines().find(|l| l.contains("40.0")).unwrap();
        assert_eq!(max_line.matches('▒').count(), 20);
    }

    #[test]
    fn summary_section_replacement() {
        let dir = std::env::temp_dir().join(format!("ace_sum_{}", std::process::id()));
        std::env::set_var("ACE_RESULTS_DIR", &dir);
        append_summary("Alpha", "first");
        append_summary("Beta", "second");
        append_summary("Alpha", "updated");
        let text = std::fs::read_to_string(dir.join("SUMMARY.md")).unwrap();
        std::env::remove_var("ACE_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(!text.contains("first"));
        assert!(text.contains("updated"));
        assert!(text.contains("second"));
        assert_eq!(text.matches("## Alpha").count(), 1);
    }
}
