//! # ace-bench — parallel deterministic experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section.
//! Each experiment lives in [`experiments`] as a library entry point (the
//! binaries under `src/bin/` are one-line wrappers); this library holds
//! the shared machinery:
//!
//! * [`engine`] — the work-stealing job pool every run fans out on,
//! * [`ExperimentSet`] — the builder running workload presets under the
//!   three headline schemes with content-addressed result caching,
//! * table/figure formatting helpers.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p ace-bench --bin run_all -- --jobs 8
//! ```
//!
//! ## Determinism
//!
//! Parallel runs are **byte-identical** to serial ones: jobs are keyed and
//! merged in submission order, each job traces into its own buffered
//! telemetry handle which the engine replays in that same order, and
//! cached results are only written from the ordered merge phase. See
//! [`engine`] for the recipe.
//!
//! ## Caching
//!
//! A run's cache file name embeds a hash of everything that determines
//! its outcome ([`cache_key`]): the workload, the crate version, and the
//! full run configuration. Change any input and the key changes, so stale
//! results can never be mistaken for fresh ones; pass `--fresh` (or
//! [`ExperimentSet::fresh`]) to re-run anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod experiments;

pub use baseline::{
    gate_against_baseline, BenchEntry, BenchRun, FleetMetrics, GateReport, GateRow, HeadlineMetrics,
};
pub use engine::{default_jobs, run_jobs, BenchError, BenchResult, Job, JobOutcome};

use ace_core::{
    BbvReport, Experiment, HotspotReport, RunConfig, RunRecord, Scheme, SchemeExt, SchemeRun,
};
use ace_telemetry::Telemetry;
use ace_workloads::PRESET_NAMES;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The three runs of one workload plus the scheme reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeResults {
    /// Workload name.
    pub workload: String,
    /// Non-adaptive run (maximum cache sizes).
    pub baseline: RunRecord,
    /// BBV + tune-all-combinations run.
    pub bbv: RunRecord,
    /// BBV scheme report.
    pub bbv_report: BbvReport,
    /// Hotspot (DO-based) run.
    pub hotspot: RunRecord,
    /// Hotspot scheme report.
    pub hotspot_report: HotspotReport,
}

impl SchemeResults {
    /// L1D energy saving of the hotspot scheme vs baseline, in percent.
    pub fn hotspot_l1d_saving_pct(&self) -> f64 {
        100.0 * self.hotspot.l1d_saving_vs(&self.baseline)
    }

    /// L2 energy saving of the hotspot scheme vs baseline, in percent.
    pub fn hotspot_l2_saving_pct(&self) -> f64 {
        100.0 * self.hotspot.l2_saving_vs(&self.baseline)
    }

    /// L1D energy saving of the BBV scheme vs baseline, in percent.
    pub fn bbv_l1d_saving_pct(&self) -> f64 {
        100.0 * self.bbv.l1d_saving_vs(&self.baseline)
    }

    /// L2 energy saving of the BBV scheme vs baseline, in percent.
    pub fn bbv_l2_saving_pct(&self) -> f64 {
        100.0 * self.bbv.l2_saving_vs(&self.baseline)
    }

    /// Hotspot-scheme slowdown vs baseline, in percent.
    pub fn hotspot_slowdown_pct(&self) -> f64 {
        100.0 * self.hotspot.slowdown_vs(&self.baseline)
    }

    /// BBV-scheme slowdown vs baseline, in percent.
    pub fn bbv_slowdown_pct(&self) -> f64 {
        100.0 * self.bbv.slowdown_vs(&self.baseline)
    }
}

/// The schemes [`ExperimentSet`] runs, in run order.
pub const HEADLINE_SCHEMES: [Scheme; 3] = [Scheme::Baseline, Scheme::Bbv, Scheme::Hotspot];

/// One workload's results plus how they were obtained — the unit of the
/// perf-baseline pipeline (`run_all --bench-out`).
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// The three scheme runs.
    pub results: SchemeResults,
    /// Total worker wall-clock across the workload's scheme jobs
    /// ([`Duration::ZERO`] for cache hits).
    pub wall: Duration,
    /// Whether the results came from the content-addressed cache.
    pub cached: bool,
}

/// Builder running a set of preset workloads under the three headline
/// schemes on the parallel [`engine`], with content-addressed caching.
///
/// ```no_run
/// use ace_bench::{ExperimentSet, HEADLINE_SCHEMES};
///
/// let results = ExperimentSet::all_presets()
///     .schemes(&HEADLINE_SCHEMES)
///     .run_parallel(4)?;
/// for r in &results {
///     println!("{}: {:.1}% L1D saved", r.workload, r.hotspot_l1d_saving_pct());
/// }
/// # Ok::<(), ace_bench::BenchError>(())
/// ```
#[derive(Clone)]
pub struct ExperimentSet {
    presets: Vec<String>,
    schemes: Vec<Scheme>,
    base: RunConfig,
    fresh: bool,
    telemetry: Telemetry,
    results_dir: Option<PathBuf>,
    lanes: usize,
}

impl ExperimentSet {
    /// A set over all seven paper workloads ([`PRESET_NAMES`]).
    pub fn all_presets() -> ExperimentSet {
        ExperimentSet::presets(PRESET_NAMES.iter().copied())
    }

    /// A set over the given preset names (order is preserved in the
    /// returned results).
    pub fn presets<I, S>(names: I) -> ExperimentSet
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ExperimentSet {
            presets: names.into_iter().map(Into::into).collect(),
            schemes: HEADLINE_SCHEMES.to_vec(),
            base: RunConfig::default(),
            fresh: false,
            telemetry: Telemetry::off(),
            results_dir: None,
            lanes: 1,
        }
    }

    /// Groups up to `lanes` consecutive runs into one lane-batched job
    /// ([`ace_core::run_batch`]): the runs advance round-robin through
    /// one machine batch, overlapping their dependency chains on a
    /// single core. Results, caches, and the telemetry event stream are
    /// byte-identical to `lanes = 1` — each lane traces into its own
    /// buffered child, absorbed in member order. Only the engine's
    /// scheduling metrics (`engine.jobs`, wall histograms) see the
    /// different job shape. Default 1 (scalar); values are clamped to at
    /// least 1.
    pub fn lanes(mut self, lanes: usize) -> ExperimentSet {
        self.lanes = lanes.max(1);
        self
    }

    /// Selects the schemes to run. [`SchemeResults`] records exactly the
    /// baseline/BBV/hotspot trio, so the set must equal
    /// [`HEADLINE_SCHEMES`] (any order) — anything else is rejected at
    /// [`ExperimentSet::run_parallel`] time.
    pub fn schemes(mut self, schemes: &[Scheme]) -> ExperimentSet {
        self.schemes = schemes.to_vec();
        self
    }

    /// Base [`RunConfig`] shared by every run (default
    /// [`RunConfig::default`]). Its telemetry handle is ignored; use
    /// [`ExperimentSet::telemetry`].
    pub fn config(mut self, base: RunConfig) -> ExperimentSet {
        self.base = base;
        self
    }

    /// Forces fresh runs even when cached results exist.
    pub fn fresh(mut self, fresh: bool) -> ExperimentSet {
        self.fresh = fresh;
        self
    }

    /// Attaches an observability handle; traced events and metrics arrive
    /// in deterministic (workload, scheme) order regardless of the pool
    /// width. Cache hits skip their runs and therefore emit nothing.
    pub fn telemetry(mut self, telemetry: &Telemetry) -> ExperimentSet {
        self.telemetry = telemetry.clone();
        self
    }

    /// Overrides the cache directory (default: [`results_dir`], i.e. the
    /// `ACE_RESULTS_DIR` env var or `results/`).
    pub fn results_dir(mut self, dir: impl Into<PathBuf>) -> ExperimentSet {
        self.results_dir = Some(dir.into());
        self
    }

    /// [`ExperimentSet::run_parallel`] at [`default_jobs`] width.
    ///
    /// # Errors
    ///
    /// See [`ExperimentSet::run_parallel`].
    pub fn run(self) -> BenchResult<Vec<SchemeResults>> {
        let width = default_jobs();
        self.run_parallel(width)
    }

    /// Runs every (workload × scheme) pair as a job on a pool of `jobs`
    /// workers and returns one [`SchemeResults`] per preset, in preset
    /// order — byte-identical at any pool width.
    ///
    /// # Errors
    ///
    /// Fails on unknown preset names, a scheme set other than
    /// [`HEADLINE_SCHEMES`], or when any run fails; every job still runs,
    /// and the error aggregates all failures.
    pub fn run_parallel(self, jobs: usize) -> BenchResult<Vec<SchemeResults>> {
        Ok(self
            .run_detailed(jobs)?
            .into_iter()
            .map(|o| o.results)
            .collect())
    }

    /// [`ExperimentSet::run_parallel`], but each workload's results come
    /// with its worker wall-clock and cache provenance — the raw material
    /// of `run_all --bench-out`. Results are identical to `run_parallel`;
    /// only the wall-clock annotations vary run to run.
    ///
    /// # Errors
    ///
    /// See [`ExperimentSet::run_parallel`].
    pub fn run_detailed(self, jobs: usize) -> BenchResult<Vec<WorkloadOutcome>> {
        {
            let mut want: Vec<&str> = HEADLINE_SCHEMES.iter().map(|s| s.name()).collect();
            let mut got: Vec<&str> = self.schemes.iter().map(|s| s.name()).collect();
            want.sort_unstable();
            got.sort_unstable();
            if got != want {
                return Err(BenchError::msg(format!(
                    "ExperimentSet runs exactly the baseline/bbv/hotspot trio \
                     (SchemeResults records those three runs); got {got:?}"
                )));
            }
        }

        let dir = self.results_dir.clone().unwrap_or_else(results_dir);

        // Phase 1: resolve caches; collect (workload, scheme) runs for
        // the misses, in submission order.
        let mut cached: Vec<Option<SchemeResults>> = Vec::with_capacity(self.presets.len());
        let mut misses: Vec<(String, Scheme)> = Vec::new();
        for name in &self.presets {
            let path = dir.join(cache_file_name(name, &self.base));
            if !self.fresh {
                if let Some(hit) = try_load(&path) {
                    cached.push(Some(hit));
                    continue;
                }
            }
            cached.push(None);
            for scheme in HEADLINE_SCHEMES {
                misses.push((name.clone(), scheme));
            }
        }

        // Phase 2: fan out. Consecutive runs group into lane-batched
        // jobs of up to `self.lanes` members (see [`ExperimentSet::lanes`]).
        let groups: Vec<Vec<(String, Scheme)>> = misses
            .chunks(self.lanes.max(1))
            .map(<[(String, Scheme)]>::to_vec)
            .collect();
        let mut pool: Vec<Job<Vec<SchemeRun>>> = Vec::with_capacity(groups.len());
        for group in &groups {
            let key = match group.as_slice() {
                [(name, scheme)] => format!("{name}/{}", scheme.name()),
                _ => {
                    let (first, last) = (&group[0], &group[group.len() - 1]);
                    format!(
                        "{}/{}..{}/{} [{} lanes]",
                        first.0,
                        first.1.name(),
                        last.0,
                        last.1.name(),
                        group.len()
                    )
                }
            };
            let group = group.clone();
            let base = self.base.clone();
            pool.push(Job::new(key, move |tel| run_lane_group(&group, &base, tel)));
        }
        let outcomes = run_jobs(pool, jobs, &self.telemetry);

        // Flatten group outcomes back to one outcome per run, dividing
        // each group's worker wall-clock evenly across its members.
        let mut flat: Vec<(String, BenchResult<SchemeRun>, Duration)> =
            Vec::with_capacity(misses.len());
        for (group, outcome) in groups.iter().zip(outcomes) {
            let share = outcome.wall / group.len().max(1) as u32;
            match outcome.result {
                Ok(runs) => {
                    for ((name, scheme), run) in group.iter().zip(runs) {
                        flat.push((format!("{name}/{}", scheme.name()), Ok(run), share));
                    }
                }
                Err(e) => {
                    for (name, scheme) in group {
                        flat.push((format!("{name}/{}", scheme.name()), Err(e.clone()), share));
                    }
                }
            }
        }

        // Phase 3: merge in preset order; write caches; aggregate errors.
        let mut outcomes = flat.into_iter();
        let mut results = Vec::with_capacity(self.presets.len());
        let mut failures: Vec<String> = Vec::new();
        for (name, hit) in self.presets.iter().zip(cached) {
            if let Some(hit) = hit {
                results.push(WorkloadOutcome {
                    results: hit,
                    wall: Duration::ZERO,
                    cached: true,
                });
                continue;
            }
            let mut runs = Vec::with_capacity(HEADLINE_SCHEMES.len());
            let mut wall = Duration::ZERO;
            for _ in HEADLINE_SCHEMES {
                let (key, result, run_wall) = outcomes.next().expect("one outcome per run");
                wall += run_wall;
                match result {
                    Ok(run) => runs.push(run),
                    Err(e) => failures.push(format!("{key}: {e}")),
                }
            }
            if runs.len() != HEADLINE_SCHEMES.len() {
                continue; // failure already recorded
            }
            let mut runs = runs.into_iter();
            let baseline = runs.next().expect("baseline run");
            let bbv = runs.next().expect("bbv run");
            let hotspot = runs.next().expect("hotspot run");
            let (SchemeExt::Bbv(bbv_report), SchemeExt::Hotspot(hotspot_report)) =
                (bbv.report.ext, hotspot.report.ext)
            else {
                unreachable!("scheme order is fixed by HEADLINE_SCHEMES")
            };
            let assembled = SchemeResults {
                workload: name.clone(),
                baseline: baseline.record,
                bbv: bbv.record,
                bbv_report,
                hotspot: hotspot.record,
                hotspot_report,
            };
            let path = dir.join(cache_file_name(name, &self.base));
            if let Err(e) = save(&path, &assembled) {
                eprintln!("warning: could not cache {}: {e}", path.display());
            }
            results.push(WorkloadOutcome {
                results: assembled,
                wall,
                cached: false,
            });
        }
        if !failures.is_empty() {
            return Err(BenchError::msg(failures.join("; ")));
        }
        Ok(results)
    }
}

/// Runs one lane group inside an engine job. A single member runs
/// scalar; two or more advance round-robin through the lane-batched
/// driver ([`Experiment::run_scheme_batch`]). Each lane traces into its
/// own buffered telemetry child, absorbed into the job's handle in
/// member order, so the event stream the parent sees is byte-identical
/// to the same runs executed scalar.
fn run_lane_group(
    group: &[(String, Scheme)],
    base: &RunConfig,
    tel: &Telemetry,
) -> BenchResult<Vec<SchemeRun>> {
    let experiment = |name: &str, scheme: Scheme, t: &Telemetry| {
        Experiment::preset(name)
            .config(base.clone())
            .scheme(scheme)
            .telemetry(t)
    };
    if let [(name, scheme)] = group {
        return Ok(vec![experiment(name, *scheme, tel).run_scheme()?]);
    }
    let lanes: Vec<_> = group
        .iter()
        .map(|_| {
            if tel.is_enabled() {
                let (child, sink) = Telemetry::buffered();
                (child, Some(sink))
            } else {
                (Telemetry::off(), None)
            }
        })
        .collect();
    let runs = Experiment::run_scheme_batch(
        group
            .iter()
            .zip(&lanes)
            .map(|((name, scheme), (child, _))| experiment(name, *scheme, child))
            .collect(),
    )?;
    for (child, sink) in &lanes {
        let events = sink.as_ref().map(|s| s.drain()).unwrap_or_default();
        tel.absorb_child(child, &events);
    }
    Ok(runs)
}

/// Directory where cached results live: the `ACE_RESULTS_DIR` env var, or
/// `results/`.
pub fn results_dir() -> PathBuf {
    let root = std::env::var("ACE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(root)
}

/// Everything that determines a run's outcome, serialized into the hash.
/// Fields are owned because the vendored serde derive does not handle
/// generic (lifetime-parameterised) structs.
#[derive(Serialize)]
struct KeyMaterial {
    workload: String,
    crate_version: String,
    machine: ace_sim::MachineConfig,
    do_config: ace_runtime::DoConfig,
    energy: ace_energy::EnergyModel,
    instruction_limit: Option<u64>,
    workload_seed: Option<u64>,
}

/// Content-addressed cache key for one workload's [`SchemeResults`]:
/// 16 hex digits of FNV-1a over the serialized run inputs (workload name,
/// crate version, machine/DO/energy configuration, instruction limit,
/// seed). Two configs differing in any of those fields get different
/// keys; the telemetry handle does not participate (observability never
/// changes results).
pub fn cache_key(workload: &str, cfg: &RunConfig) -> String {
    let material = KeyMaterial {
        workload: workload.to_string(),
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        machine: cfg.machine.clone(),
        do_config: cfg.do_config.clone(),
        energy: cfg.energy,
        instruction_limit: cfg.instruction_limit,
        workload_seed: cfg.workload_seed,
    };
    let bytes = serde_json::to_string(&material).expect("key material serializes");
    // FNV-1a 64, dependency-free and stable across platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    format!("{hash:016x}")
}

fn cache_file_name(workload: &str, cfg: &RunConfig) -> String {
    format!("{workload}-{}.json", cache_key(workload, cfg))
}

fn try_load(path: &Path) -> Option<SchemeResults> {
    let data = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&data).ok()
}

fn save(path: &Path, results: &SchemeResults) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    // Atomic publish: a reader (or a concurrent run) never sees a torn file.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, serde_json::to_string(results).expect("serializable"))?;
    std::fs::rename(&tmp, path)
}

/// Parses the shared `--telemetry <path>` CLI flag: returns a JSONL-file
/// handle when present, [`Telemetry::off`] otherwise. Exits with a
/// message if the path cannot be created. Cached results skip their runs
/// and therefore their events — combine with `--fresh` for a full trace.
pub fn telemetry_from_args() -> Telemetry {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--telemetry" {
            let Some(path) = args.next() else {
                eprintln!("--telemetry requires a file path");
                std::process::exit(2);
            };
            match Telemetry::jsonl(&path) {
                Ok(tel) => return tel,
                Err(e) => {
                    eprintln!("cannot open telemetry file {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    Telemetry::off()
}

/// Flushes and prints the telemetry summary (event counts + metrics) to
/// stderr when the handle is enabled; silent otherwise.
pub fn print_telemetry_summary(telemetry: &Telemetry) {
    if telemetry.is_enabled() {
        telemetry.flush();
        eprint!("{}", telemetry.summary());
    }
}

/// Formats a row-major table with a header, aligning columns.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders grouped horizontal bars (one row per label, one bar per
/// series) — the closest a terminal gets to the paper's figures.
///
/// `series` pairs a short name with one value per label. Values are
/// scaled to `width` columns against the maximum across all series;
/// negative values render as a left-pointing bar.
pub fn bar_chart(labels: &[&str], series: &[(&str, Vec<f64>)], width: usize) -> String {
    let mut out = String::new();
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter())
        .fold(1e-9f64, |m, &v| m.max(v.abs()));
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(4).max(4);
    let name_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(3);
    for (i, label) in labels.iter().enumerate() {
        for (j, (name, values)) in series.iter().enumerate() {
            let v = values.get(i).copied().unwrap_or(0.0);
            let cols = ((v.abs() / max) * width as f64).round() as usize;
            let bar: String = std::iter::repeat_n(if j == 0 { '█' } else { '▒' }, cols).collect();
            let sign = if v < 0.0 { "-" } else { "" };
            out.push_str(&format!(
                "{:>label_w$} {:<name_w$} |{sign}{bar} {v:.1}
",
                if j == 0 { label } else { "" },
                name,
            ));
        }
    }
    out
}

/// Appends one experiment's formatted output to `results/SUMMARY.md`.
///
/// Not thread-safe (read-modify-write): call it from the ordered merge
/// phase — e.g. via [`experiments::commit_report`] — never from inside a
/// job.
pub fn append_summary(section: &str, body: &str) {
    let path = results_dir().join("SUMMARY.md");
    let _ = std::fs::create_dir_all(results_dir());
    let mut text = std::fs::read_to_string(&path).unwrap_or_default();
    // Replace an existing section of the same name, else append.
    let header = format!(
        "## {section}
"
    );
    if let Some(start) = text.find(&header) {
        let rest = &text[start + header.len()..];
        let end = rest
            .find(
                "
## ",
            )
            .map(|e| start + header.len() + e + 1)
            .unwrap_or(text.len());
        text.replace_range(start..end, "");
    }
    text.push_str(&header);
    text.push_str(
        "
```text
",
    );
    text.push_str(body.trim_end());
    text.push_str(
        "
```

",
    );
    let _ = std::fs::write(&path, text);
}

/// Arithmetic mean (the paper's "avg" rows average percentages).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_table_aligns() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "123456".into()],
            ],
        );
        assert!(t.contains("long-name"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }

    #[test]
    fn bar_chart_scales_and_labels() {
        let chart = bar_chart(
            &["db", "jess"],
            &[("BBV", vec![10.0, 20.0]), ("hot", vec![40.0, -5.0])],
            20,
        );
        assert!(chart.contains("db"));
        assert!(chart.contains("jess"));
        assert!(chart.contains("40.0"));
        assert!(
            chart.contains("-▒ 5.0") || chart.contains("-5.0"),
            "{chart}"
        );
        // The largest value spans the full width (second series uses ▒).
        let max_line = chart.lines().find(|l| l.contains("40.0")).unwrap();
        assert_eq!(max_line.matches('▒').count(), 20);
    }

    #[test]
    fn summary_section_replacement() {
        let dir = std::env::temp_dir().join(format!("ace_sum_{}", std::process::id()));
        std::env::set_var("ACE_RESULTS_DIR", &dir);
        append_summary("Alpha", "first");
        append_summary("Beta", "second");
        append_summary("Alpha", "updated");
        let text = std::fs::read_to_string(dir.join("SUMMARY.md")).unwrap();
        std::env::remove_var("ACE_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(!text.contains("first"));
        assert!(text.contains("updated"));
        assert!(text.contains("second"));
        assert_eq!(text.matches("## Alpha").count(), 1);
    }

    #[test]
    fn cache_key_tracks_config_fields() {
        let base = RunConfig::default();
        let key = cache_key("db", &base);
        assert_eq!(key.len(), 16);
        // Identical inputs → identical key.
        assert_eq!(key, cache_key("db", &RunConfig::default()));
        // Any varying input → different key.
        let limited = RunConfig {
            instruction_limit: Some(1_000_000),
            ..RunConfig::default()
        };
        assert_ne!(key, cache_key("db", &limited));
        let seeded = RunConfig {
            workload_seed: Some(7),
            ..RunConfig::default()
        };
        assert_ne!(key, cache_key("db", &seeded));
        assert_ne!(key, cache_key("jess", &base));
        // Telemetry is observability, not an input: same key either way.
        let traced = RunConfig {
            telemetry: Telemetry::counting(),
            ..RunConfig::default()
        };
        assert_eq!(key, cache_key("db", &traced));
    }

    #[test]
    fn scheme_set_must_be_the_headline_trio() {
        let err = ExperimentSet::presets(["db"])
            .schemes(&[Scheme::Baseline, Scheme::Positional, Scheme::Hotspot])
            .run_parallel(1)
            .unwrap_err();
        assert!(err.to_string().contains("trio"), "{err}");
        // Order does not matter, membership does.
        let reordered = [Scheme::Hotspot, Scheme::Baseline, Scheme::Bbv];
        assert!(ExperimentSet::presets(Vec::<String>::new())
            .schemes(&reordered)
            .run_parallel(1)
            .is_ok());
    }

    #[test]
    fn unknown_preset_fails_with_context() {
        let dir = std::env::temp_dir().join(format!("ace_unknown_{}", std::process::id()));
        let err = ExperimentSet::presets(["not-a-workload"])
            .results_dir(dir.clone())
            .run_parallel(2)
            .unwrap_err();
        let _ = std::fs::remove_dir_all(&dir);
        assert!(err.to_string().contains("not-a-workload"), "{err}");
    }
}
