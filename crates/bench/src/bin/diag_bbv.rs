//! Diagnostic: BBV phase history and per-phase tuner state for one workload.

use ace_core::{BbvAceManager, BbvManagerConfig, Experiment};
use ace_energy::EnergyModel;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_string());
    let mut mgr = BbvAceManager::new(BbvManagerConfig::default(), EnergyModel::default_180nm());
    let _ = Experiment::preset(name.as_str())
        .run_with(&mut mgr)
        .expect("preset run");
    let r = mgr.report();
    println!(
        "{name}: phases {} tuned {} stable {:.0}% tunings {} misattributed {}",
        r.phases,
        r.tuned_phases,
        100.0 * r.stability.stable_fraction(),
        r.tunings,
        r.misattributed_trials
    );
    let hist: Vec<String> = mgr
        .phase_history()
        .iter()
        .map(|p| p.0.to_string())
        .collect();
    println!("history: {}", hist.join(" "));
    for (i, (t, d)) in mgr.tuner_states().enumerate() {
        println!(
            "phase {i}: trials {} done {} best {:?} dist-sum-ipc {:?}",
            t.trials(),
            t.is_done(),
            t.best().map(|b| b.to_string()),
            d
        );
    }
}
