//! Verifies the committed `results/` cache against the *current* cache
//! keys.
//!
//! Cached workload results are content-addressed as
//! `results/<workload>-<key>.json`, where the key hashes everything that
//! determines a run's outcome ([`ace_bench::cache_key`]). When the run
//! inputs grow — a new `MachineConfig` field, a restructured `DoConfig` —
//! every key changes, and previously committed entries become dead weight
//! that `run_all` silently ignores forever. This check fails CI when that
//! happens, forcing the stale files to be purged (and optionally
//! regenerated) in the same change that shifted the keys.
//!
//! Rules, applied to every `*.json` in [`ace_bench::results_dir`]:
//!
//! - `<workload>-<key>.json` for a known preset: `key` must equal the
//!   current headline key for that workload (the default [`RunConfig`]).
//! - Bare `<workload>.json` for a known preset: always stale — the
//!   pre-content-addressing cache format.
//! - `fleet-<key>.json`: a fleet result cache — recognized here but
//!   validated by its owner (`cargo run -p ace-fleet --bin fleet --
//!   --check-cache`), which knows the fleet cache keys.
//! - `pdm-<workload>-<key>.json`: the pdm experiment's cache namespace —
//!   the full file name must be one the current build would write
//!   ([`ace_bench::experiments::pdm::expected_cache_files`]).
//! - `gen-corpus-<key>.json`: the corpus experiment's summary namespace —
//!   the full file name must be one the current parameters would write
//!   ([`ace_bench::experiments::corpus::expected_cache_files`]).
//! - Anything else `.json`: unknown, flagged (results/ holds only the
//!   headline cache plus `.txt`/`.md` reports).
//!
//! Run it before any experiment has executed (CI does), so only committed
//! entries are on disk; a warm local cache written by the current binary
//! passes by construction.

use ace_bench::{cache_key, results_dir};
use ace_core::RunConfig;
use ace_workloads::PRESET_NAMES;
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = results_dir();
    let base = RunConfig::default();
    let current: Vec<(String, String)> = PRESET_NAMES
        .iter()
        .map(|name| ((*name).to_string(), cache_key(name, &base)))
        .collect();
    let pdm_expected = ace_bench::experiments::pdm::expected_cache_files();
    let gen_expected = ace_bench::experiments::corpus::expected_cache_files();

    let entries = match std::fs::read_dir(&dir) {
        Ok(it) => it,
        Err(_) => {
            println!("{}: no results directory, nothing to check", dir.display());
            return ExitCode::SUCCESS;
        }
    };

    let mut stale = Vec::new();
    let mut checked = 0usize;
    let mut delegated = 0usize;
    for entry in entries.flatten() {
        let file = entry.file_name();
        let Some(name) = file.to_str() else { continue };
        let Some(stem) = name.strip_suffix(".json") else {
            continue;
        };
        // `fleet-*`: the fleet subsystem's cache namespace. Key currency
        // is checked by `fleet --check-cache` (ace-bench cannot depend on
        // ace-fleet without a cycle); here it is merely recognized so a
        // fleet cache is never flagged as an unknown entry.
        if stem.starts_with("fleet-") {
            delegated += 1;
            continue;
        }
        checked += 1;
        // `pdm-<workload>-<key>`: the pdm experiment's namespace. Must be
        // checked before the generic keyed parse — `pdm-pdm_drift-<key>`
        // would otherwise mis-parse as workload `pdm-pdm_drift`.
        if stem.starts_with("pdm-") {
            if pdm_expected.iter().any(|f| f == name) {
                continue;
            }
            stale.push(format!(
                "{name}: superseded pdm cache entry (current set: {pdm_expected:?})"
            ));
            continue;
        }
        // `gen-*`: the generated-corpus namespace. Like `pdm-`, checked
        // before the generic keyed parse — `gen-corpus-<key>` would
        // otherwise mis-parse as workload `gen-corpus`.
        if stem.starts_with("gen-") {
            if gen_expected.iter().any(|f| f == name) {
                continue;
            }
            stale.push(format!(
                "{name}: superseded corpus cache entry (current set: {gen_expected:?})"
            ));
            continue;
        }
        // `<workload>-<16 hex digits>`: a content-addressed cache entry.
        let keyed = stem
            .rsplit_once('-')
            .filter(|(_, key)| key.len() == 16 && key.bytes().all(|b| b.is_ascii_hexdigit()));
        if let Some((workload, key)) = keyed {
            match current.iter().find(|(w, _)| w == workload) {
                Some((_, want)) if want == key => continue,
                Some((_, want)) => stale.push(format!(
                    "{name}: superseded cache key (current key for {workload} is {want})"
                )),
                None => stale.push(format!("{name}: unknown workload {workload:?}")),
            }
        } else if current.iter().any(|(w, _)| w == stem) {
            stale.push(format!(
                "{name}: pre-content-addressing cache format (expected {stem}-<key>.json)"
            ));
        } else {
            stale.push(format!("{name}: not a recognized cache entry"));
        }
    }

    if stale.is_empty() {
        println!(
            "{}: {checked} cache entr{} match current keys{}",
            dir.display(),
            if checked == 1 { "y" } else { "ies" },
            if delegated > 0 {
                format!(
                    " ({delegated} fleet entr{} delegated to fleet --check-cache)",
                    if delegated == 1 { "y" } else { "ies" }
                )
            } else {
                String::new()
            }
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "{}: {} stale cache entr{} (run inputs changed; purge or regenerate):",
        dir.display(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" }
    );
    for line in &stale {
        eprintln!("  {line}");
    }
    ExitCode::FAILURE
}
