//! **Extension** — full scheme comparison.
//!
//! One-line wrapper over the library entry point in
//! `ace_bench::experiments`; accepts `--telemetry <path>`. See
//! `run_all` to regenerate everything on the parallel engine.

fn main() -> std::process::ExitCode {
    ace_bench::experiments::cli_main("ext_schemes")
}
