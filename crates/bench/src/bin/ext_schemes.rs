//! **Extension: full scheme comparison** (Section 3.5's qualitative
//! argument, quantified).
//!
//! Five points per workload: the non-adaptive baseline, the original
//! positional scheme (large-procedure boundaries, no DO system), the BBV
//! temporal scheme as evaluated in the paper, BBV *with* the next-phase
//! predictor the paper leaves out, and the DO-based hotspot scheme.

use ace_bench::{format_table, mean, standard_run_config};
use ace_core::{
    run_with_manager, BbvAceManager, BbvManagerConfig, HotspotAceManager, HotspotManagerConfig,
    NullManager, PositionalAceManager, PositionalManagerConfig,
};
use ace_energy::EnergyModel;
use ace_workloads::PRESET_NAMES;

fn main() {
    let cfg = standard_run_config();
    let model = EnergyModel::default_180nm();
    let mut rows = Vec::new();
    let mut agg: Vec<[f64; 8]> = Vec::new();

    for name in PRESET_NAMES {
        let program = ace_workloads::preset(name).unwrap();
        let base = run_with_manager(&program, &cfg, &mut NullManager).unwrap();
        let sav =
            |r: &ace_core::RunRecord| 100.0 * (1.0 - r.energy.total_nj() / base.energy.total_nj());
        let slow = |r: &ace_core::RunRecord| 100.0 * r.slowdown_vs(&base);

        let mut pos =
            PositionalAceManager::new(&program, PositionalManagerConfig::default(), model);
        let r_pos = run_with_manager(&program, &cfg, &mut pos).unwrap();

        let mut bbv = BbvAceManager::new(BbvManagerConfig::default(), model);
        let r_bbv = run_with_manager(&program, &cfg, &mut bbv).unwrap();

        let mut bbv_pred = BbvAceManager::new(
            BbvManagerConfig {
                use_predictor: true,
                ..BbvManagerConfig::default()
            },
            model,
        );
        let r_pred = run_with_manager(&program, &cfg, &mut bbv_pred).unwrap();
        let pred_report = bbv_pred.report();

        let mut hs = HotspotAceManager::new(HotspotManagerConfig::default(), model);
        let r_hs = run_with_manager(&program, &cfg, &mut hs).unwrap();

        agg.push([
            sav(&r_pos),
            slow(&r_pos),
            sav(&r_bbv),
            slow(&r_bbv),
            sav(&r_pred),
            slow(&r_pred),
            sav(&r_hs),
            slow(&r_hs),
        ]);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}/{:.1}", sav(&r_pos), slow(&r_pos)),
            format!("{:.1}/{:.1}", sav(&r_bbv), slow(&r_bbv)),
            format!("{:.1}/{:.1}", sav(&r_pred), slow(&r_pred)),
            format!("{:.1}/{:.1}", sav(&r_hs), slow(&r_hs)),
            format!(
                "{} ({:.0}%)",
                pred_report.predictions,
                100.0 * pred_report.prediction_accuracy
            ),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!(
            "{:.1}/{:.1}",
            mean(agg.iter().map(|a| a[0])),
            mean(agg.iter().map(|a| a[1]))
        ),
        format!(
            "{:.1}/{:.1}",
            mean(agg.iter().map(|a| a[2])),
            mean(agg.iter().map(|a| a[3]))
        ),
        format!(
            "{:.1}/{:.1}",
            mean(agg.iter().map(|a| a[4])),
            mean(agg.iter().map(|a| a[5]))
        ),
        format!(
            "{:.1}/{:.1}",
            mean(agg.iter().map(|a| a[6])),
            mean(agg.iter().map(|a| a[7]))
        ),
        String::new(),
    ]);
    println!("Extension: scheme comparison (total cache energy saving % / slowdown %)");
    println!("positional = Huang et al. large-procedure boundaries (no DO system);");
    println!("BBV+pred adds the RLE-Markov next-phase predictor the paper omits\n");
    println!(
        "{}",
        format_table(
            &[
                "bench",
                "positional",
                "BBV",
                "BBV+pred",
                "hotspot",
                "predictions (acc)"
            ],
            &rows
        )
    );
}
