//! **Figure 3** — L1D (a) and L2 (b) cache energy reduction of the BBV and
//! hotspot schemes over the full-size baseline.

use ace_bench::{append_summary, bar_chart, format_table, load_or_run_all, mean};

fn main() {
    let all = load_or_run_all();

    println!("Figure 3(a): L1D cache energy reduction vs baseline (%)");
    println!("(paper: BBV avg 32%, hotspot avg 47%, hotspot wins every benchmark,");
    println!(" db the largest hotspot saving at 66%)\n");
    let mut rows = Vec::new();
    for r in &all {
        rows.push(vec![
            r.workload.clone(),
            format!("{:.1}", r.bbv_l1d_saving_pct()),
            format!("{:.1}", r.hotspot_l1d_saving_pct()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(all.iter().map(|r| r.bbv_l1d_saving_pct()))),
        format!(
            "{:.1}",
            mean(all.iter().map(|r| r.hotspot_l1d_saving_pct()))
        ),
    ]);
    let table_a = format_table(&["bench", "BBV", "hotspot"], &rows);
    let labels: Vec<&str> = all.iter().map(|r| r.workload.as_str()).collect();
    let chart_a = bar_chart(
        &labels,
        &[
            ("BBV", all.iter().map(|r| r.bbv_l1d_saving_pct()).collect()),
            (
                "hot",
                all.iter().map(|r| r.hotspot_l1d_saving_pct()).collect(),
            ),
        ],
        42,
    );
    println!("{table_a}");
    println!("{chart_a}");
    append_summary(
        "Figure 3(a): L1D energy reduction (%)",
        &format!(
            "{table_a}
{chart_a}"
        ),
    );

    println!("Figure 3(b): L2 cache energy reduction vs baseline (%)");
    println!("(paper: BBV avg 52%, hotspot avg 58%, BBV ahead only on jack and mtrt)\n");
    let mut rows = Vec::new();
    for r in &all {
        rows.push(vec![
            r.workload.clone(),
            format!("{:.1}", r.bbv_l2_saving_pct()),
            format!("{:.1}", r.hotspot_l2_saving_pct()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(all.iter().map(|r| r.bbv_l2_saving_pct()))),
        format!("{:.1}", mean(all.iter().map(|r| r.hotspot_l2_saving_pct()))),
    ]);
    let table_b = format_table(&["bench", "BBV", "hotspot"], &rows);
    let chart_b = bar_chart(
        &labels,
        &[
            ("BBV", all.iter().map(|r| r.bbv_l2_saving_pct()).collect()),
            (
                "hot",
                all.iter().map(|r| r.hotspot_l2_saving_pct()).collect(),
            ),
        ],
        42,
    );
    println!("{table_b}");
    println!("{chart_b}");
    append_summary(
        "Figure 3(b): L2 energy reduction (%)",
        &format!(
            "{table_b}
{chart_b}"
        ),
    );
}
