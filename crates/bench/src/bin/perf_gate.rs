//! CI throughput gate: compares a fresh `BENCH_run.json` against the
//! committed baseline and fails (exit 1) when any headline workload's
//! wall-clock regressed beyond the threshold.
//!
//! ```text
//! perf_gate <baseline.json> <current.json> [--threshold-pct <N>]
//! ```
//!
//! Only uncached `workload` and `fleet` entries gate (fleet entries also
//! gate on a machines/sec drop); sibling experiments and
//! cache-hit entries (which time nothing) are reported as skipped. Wall
//! clocks are machine-dependent, so the default threshold (25 %) is
//! deliberately loose — it catches order-of-magnitude slips and
//! accidental de-optimization, not noise.

use ace_bench::{gate_against_baseline, BenchRun};
use std::process::ExitCode;

struct Args {
    baseline: String,
    current: String,
    threshold_pct: f64,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut threshold_pct = 25.0;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold-pct" => {
                let value = it.next().and_then(|v| v.parse::<f64>().ok());
                match value {
                    Some(n) if n > 0.0 => threshold_pct = n,
                    _ => {
                        eprintln!("--threshold-pct requires a positive number");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: perf_gate <baseline.json> <current.json> [--threshold-pct <N>]");
                std::process::exit(0);
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        eprintln!("usage: perf_gate <baseline.json> <current.json> [--threshold-pct <N>]");
        std::process::exit(2);
    }
    let mut it = positional.into_iter();
    Args {
        baseline: it.next().unwrap(),
        current: it.next().unwrap(),
        threshold_pct,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let baseline = match BenchRun::load(&args.baseline) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("perf_gate: cannot load baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match BenchRun::load(&args.current) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("perf_gate: cannot load current run: {e}");
            return ExitCode::from(2);
        }
    };
    let report = gate_against_baseline(&baseline, &current, args.threshold_pct);

    println!(
        "perf gate: threshold +{:.0}% (baseline jobs={}, current jobs={})",
        report.threshold_pct, baseline.jobs, current.jobs
    );
    println!(
        "{:<12} {:>12} {:>12} {:>8}  verdict",
        "workload", "baseline ms", "current ms", "delta"
    );
    for row in &report.rows {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>+7.1}%  {}",
            row.name,
            row.baseline_ms,
            row.current_ms,
            row.delta_pct,
            if row.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for s in &report.skipped {
        println!("skipped: {s}");
    }
    if report.rows.is_empty() {
        println!("perf gate: nothing comparable — pass (vacuous)");
        return ExitCode::SUCCESS;
    }
    if report.regressed() {
        eprintln!(
            "perf gate: FAIL — workload wall-clock regressed more than {:.0}%",
            report.threshold_pct
        );
        return ExitCode::FAILURE;
    }
    println!("perf gate: pass");
    ExitCode::SUCCESS
}
