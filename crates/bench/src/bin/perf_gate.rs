//! CI throughput gate: compares a fresh `BENCH_run.json` against the
//! committed baseline and fails (exit 1) when any headline workload's
//! wall-clock regressed beyond the threshold.
//!
//! ```text
//! perf_gate <baseline.json> <current.json> [--threshold-pct <N>]
//!           [--micro <baseline.jsonl> <current.jsonl>] [--micro-threshold-pct <N>]
//! ```
//!
//! Only uncached `workload` and `fleet` entries gate (fleet entries also
//! gate on a machines/sec drop); sibling experiments and
//! cache-hit entries (which time nothing) are reported as skipped. Wall
//! clocks are machine-dependent, so the default threshold (25 %) is
//! deliberately loose — it catches order-of-magnitude slips and
//! accidental de-optimization, not noise.
//!
//! `--micro` adds the microbench trajectory gate: both operands are
//! `ACE_MICROBENCH_JSON` JSONL streams (see the vendored criterion), and
//! each benchmark's ns/iter gates under its own, even looser threshold
//! (default 50 %) — single-digit-nanosecond loops swing harder with host
//! state than whole-workload walls do.

use ace_bench::{gate_against_baseline, BenchRun, GateReport};
use std::process::ExitCode;

const USAGE: &str = "usage: perf_gate <baseline.json> <current.json> [--threshold-pct <N>] \
     [--micro <baseline.jsonl> <current.jsonl>] [--micro-threshold-pct <N>]";

struct Args {
    baseline: String,
    current: String,
    threshold_pct: f64,
    micro: Option<(String, String)>,
    micro_threshold_pct: f64,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut threshold_pct = 25.0;
    let mut micro = None;
    let mut micro_threshold_pct = 50.0;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold-pct" | "--micro-threshold-pct" => {
                let value = it.next().and_then(|v| v.parse::<f64>().ok());
                match value {
                    Some(n) if n > 0.0 => {
                        if arg == "--threshold-pct" {
                            threshold_pct = n;
                        } else {
                            micro_threshold_pct = n;
                        }
                    }
                    _ => {
                        eprintln!("{arg} requires a positive number");
                        std::process::exit(2);
                    }
                }
            }
            "--micro" => match (it.next(), it.next()) {
                (Some(base), Some(cur)) => micro = Some((base, cur)),
                _ => {
                    eprintln!("--micro requires two JSONL paths (baseline, current)");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let mut it = positional.into_iter();
    Args {
        baseline: it.next().unwrap(),
        current: it.next().unwrap(),
        threshold_pct,
        micro,
        micro_threshold_pct,
    }
}

fn print_report(report: &GateReport, label: &str) {
    println!(
        "{:<32} {:>12} {:>12} {:>8}  verdict",
        label, "baseline", "current", "delta"
    );
    for row in &report.rows {
        println!(
            "{:<32} {:>12.1} {:>12.1} {:>+7.1}%  {}",
            row.name,
            row.baseline_ms,
            row.current_ms,
            row.delta_pct,
            if row.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for s in &report.skipped {
        println!("skipped: {s}");
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let baseline = match BenchRun::load(&args.baseline) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("perf_gate: cannot load baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match BenchRun::load(&args.current) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("perf_gate: cannot load current run: {e}");
            return ExitCode::from(2);
        }
    };
    let report = gate_against_baseline(&baseline, &current, args.threshold_pct);

    println!(
        "perf gate: threshold +{:.0}% (baseline jobs={}, current jobs={})",
        report.threshold_pct, baseline.jobs, current.jobs
    );
    print_report(&report, "workload (ms)");

    let micro_report = match &args.micro {
        None => None,
        Some((base_path, cur_path)) => {
            let load = |path: &str| match BenchRun::load_microbench_jsonl(path) {
                Ok(run) => Some(run),
                Err(e) => {
                    eprintln!("perf_gate: cannot load microbench stream: {e}");
                    None
                }
            };
            let (Some(micro_base), Some(micro_cur)) = (load(base_path), load(cur_path)) else {
                return ExitCode::from(2);
            };
            let micro = gate_against_baseline(&micro_base, &micro_cur, args.micro_threshold_pct);
            println!("\nmicrobench gate: threshold +{:.0}%", micro.threshold_pct);
            print_report(&micro, "benchmark (ns/iter)");
            Some(micro)
        }
    };

    let comparable =
        !report.rows.is_empty() || micro_report.as_ref().is_some_and(|m| !m.rows.is_empty());
    if !comparable {
        println!("perf gate: nothing comparable — pass (vacuous)");
        return ExitCode::SUCCESS;
    }
    if report.regressed() {
        eprintln!(
            "perf gate: FAIL — workload wall-clock regressed more than {:.0}%",
            report.threshold_pct
        );
        return ExitCode::FAILURE;
    }
    if micro_report.as_ref().is_some_and(GateReport::regressed) {
        eprintln!(
            "perf gate: FAIL — a microbench regressed more than {:.0}% ns/iter",
            args.micro_threshold_pct
        );
        return ExitCode::FAILURE;
    }
    println!("perf gate: pass");
    ExitCode::SUCCESS
}
