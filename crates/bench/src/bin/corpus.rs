//! The corpus binary: differential oracles over a generated-workload
//! corpus, at sizes the registry entry's CI run does not attempt.
//!
//! Flags:
//!
//! * `--count <N>` — generated workloads (default 64, the acceptance
//!   size; the nightly stress tier runs larger).
//! * `--seed-base <N>` — generation seed base (workload `i` uses
//!   `seed_base + i`; default pinned, see
//!   [`ace_bench::experiments::corpus::DEFAULT_SEED_BASE`]).
//! * `--limit <instr>` — per-run instruction budget for generated
//!   workloads (default 2M).
//! * `--scale <N>` — multiply every generated spec's `outer_iters`.
//! * `--preset-scale <N>` — also run the seven presets at N-times their
//!   natural length (full runs, no instruction limit) through the same
//!   oracles — the nightly "100x presets" tier.
//! * `--jobs <N>` — pool width of the jobs=N differential pass (default:
//!   `ACE_JOBS` or available parallelism).
//! * `--fail-dir <path>` — where failing specs and their minimized
//!   reproducers are written (default `results/corpus-failures`).
//! * `--telemetry <path>` — stream decision events as JSONL.
//!
//! Exit status is nonzero when any oracle is violated; the failing and
//! minimized specs are on disk for triage (commit the reproducer under
//! `crates/workloads/fixtures/regressions/` once the bug is understood).

use ace_bench::experiments::corpus::{run_corpus, write_summary, CorpusParams, DEFAULT_COUNT};
use ace_bench::{default_jobs, print_telemetry_summary, telemetry_from_args};
use std::path::PathBuf;
use std::process::ExitCode;

fn parse_args() -> CorpusParams {
    let mut params = CorpusParams {
        count: DEFAULT_COUNT,
        jobs: default_jobs(),
        ..CorpusParams::default()
    };
    let mut it = std::env::args().skip(1);
    let take = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    let parse_u64 = |flag: &str, value: String| -> u64 {
        value.parse().unwrap_or_else(|_| {
            eprintln!("{flag} requires a non-negative integer");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--count" => params.count = parse_u64(&arg, take(&mut it, &arg)) as usize,
            "--seed-base" => params.seed_base = parse_u64(&arg, take(&mut it, &arg)),
            "--limit" => params.instruction_limit = parse_u64(&arg, take(&mut it, &arg)).max(1),
            "--scale" => params.scale = parse_u64(&arg, take(&mut it, &arg)).max(1) as u32,
            "--preset-scale" => {
                params.preset_scale = Some(parse_u64(&arg, take(&mut it, &arg)).max(1) as u32);
            }
            "--jobs" => params.jobs = (parse_u64(&arg, take(&mut it, &arg)).max(1)) as usize,
            "--fail-dir" => params.fail_dir = PathBuf::from(take(&mut it, &arg)),
            "--telemetry" => {
                it.next(); // handled by telemetry_from_args
            }
            other => {
                eprintln!("unknown flag {other}; see the corpus binary docs");
                std::process::exit(2);
            }
        }
    }
    if params.count == 0 && params.preset_scale.is_none() {
        eprintln!("--count 0 without --preset-scale leaves nothing to run");
        std::process::exit(2);
    }
    params
}

fn main() -> ExitCode {
    let params = parse_args();
    let telemetry = telemetry_from_args();
    eprintln!(
        "corpus: {} generated workload(s){} x {} schemes, jobs={}",
        params.count,
        params
            .preset_scale
            .map(|s| format!(" + 7 presets at {s}x"))
            .unwrap_or_default(),
        ace_bench::experiments::corpus::CORPUS_SCHEMES.len(),
        params.jobs
    );
    let outcome = match run_corpus(&params, &telemetry) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("corpus failed to run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut text = String::new();
    ace_bench::experiments::corpus::render(&params, &outcome, &mut text);
    print!("{text}");
    if let Some(path) = write_summary(&params, &outcome) {
        eprintln!("summary cached at {}", path.display());
    }
    print_telemetry_summary(&telemetry);
    if outcome.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "corpus: {} oracle violation(s); specs under {}",
            outcome.failures.len(),
            params.fail_dir.display()
        );
        ExitCode::FAILURE
    }
}
