//! **Ablation: hot_threshold** (Section 5.1).
//!
//! Sweeps the DO system's promotion threshold and reports the hotspot
//! identification latency (Table 4's last row) against the energy the
//! scheme still captures: late identification wastes execution at the
//! full-size configuration.

use ace_bench::{format_table, standard_run_config};
use ace_core::{run_with_manager, HotspotAceManager, HotspotManagerConfig, NullManager};
use ace_energy::EnergyModel;

fn main() {
    let model = EnergyModel::default_180nm();
    println!("Ablation: hot_threshold sweep (identification latency vs captured savings)\n");
    for name in ["compress", "javac"] {
        let program = ace_workloads::preset(name).unwrap();
        let base = run_with_manager(&program, &standard_run_config(), &mut NullManager).unwrap();
        let mut rows = Vec::new();
        for threshold in [2u32, 5, 10, 20, 40] {
            let mut cfg = standard_run_config();
            cfg.do_config.hot_threshold = threshold;
            let mut mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
            let r = run_with_manager(&program, &cfg, &mut mgr).unwrap();
            let rep = mgr.report();
            rows.push(vec![
                format!("{threshold}"),
                format!("{}", r.table4.hotspots),
                format!("{:.2}%", r.table4.identification_latency_pct),
                format!("{:.1}%", 100.0 * rep.tuned_fraction()),
                format!("{:.1}", 100.0 * r.l1d_saving_vs(&base)),
                format!("{:.1}", 100.0 * r.l2_saving_vs(&base)),
                format!("{:.2}", 100.0 * r.slowdown_vs(&base)),
            ]);
        }
        println!("{name}:");
        println!(
            "{}",
            format_table(
                &[
                    "threshold",
                    "hotspots",
                    "ident lat",
                    "tuned",
                    "L1D sav%",
                    "L2 sav%",
                    "slow%"
                ],
                &rows
            )
        );
    }
}
