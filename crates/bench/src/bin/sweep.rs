//! Diagnostic: fixed-configuration sweep of one workload over all 16 cache
//! configurations (the static oracle grid). Prints IPC and per-cache
//! energy for each point.

use ace_core::{AceConfig, Experiment, Scheme};
use ace_sim::SizeLevel;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "jess".to_string());
    let base = Experiment::preset(name.as_str()).run().expect("preset");
    println!("{name}: baseline ipc {:.4}", base.ipc);
    for l1d in 0..4u8 {
        for l2 in 0..4u8 {
            let fixed = AceConfig::both(SizeLevel::new(l1d).unwrap(), SizeLevel::new(l2).unwrap());
            let r = Experiment::preset(name.as_str())
                .scheme(Scheme::Fixed(fixed))
                .run()
                .unwrap();
            println!(
                "L1D={l1d} L2={l2}: ipc {:.4} (slow {:+.2}%)  E_l1d {:.3e} ({:+.1}%)  E_l2 {:.3e} ({:+.1}%)  l1dMiss% {:.2}  l2Miss% {:.2}",
                r.ipc,
                100.0 * (1.0 - r.ipc / base.ipc),
                r.energy.l1d_nj,
                100.0 * (r.energy.l1d_nj / base.energy.l1d_nj - 1.0),
                r.energy.l2_nj,
                100.0 * (r.energy.l2_nj / base.energy.l2_nj - 1.0),
                100.0 * r.counters.l1d.miss_ratio(),
                100.0 * r.counters.l2.miss_ratio(),
            );
        }
    }
}
