//! **Extension** — Phase Distance Mapping, prediction vs search.
//!
//! Wrapper over `ace_bench::experiments::pdm`. Unlike the one-line
//! sibling wrappers it accepts `--jobs <N>` (results are byte-identical
//! at any width) and `--fresh` (ignore the `results/pdm-*` caches —
//! required for a complete `--telemetry` trace, since cache hits skip
//! their runs).

use ace_bench::experiments::{commit_report, pdm};
use ace_bench::{default_jobs, print_telemetry_summary, telemetry_from_args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut jobs = default_jobs();
    let mut fresh = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = n,
                _ => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--fresh" => fresh = true,
            "--telemetry" => {
                it.next(); // handled by telemetry_from_args
            }
            other => {
                eprintln!("unknown flag {other}; pdm takes --jobs, --fresh, --telemetry");
                return ExitCode::from(2);
            }
        }
    }
    let telemetry = telemetry_from_args();
    let opts = pdm::PdmOptions {
        jobs,
        fresh,
        telemetry: telemetry.clone(),
        ..pdm::PdmOptions::default()
    };
    match pdm::run_pdm(&opts) {
        Ok(results) => {
            let report = pdm::render(&results);
            print!("{}", report.text);
            commit_report(&report);
            print_telemetry_summary(&telemetry);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pdm: {e}");
            ExitCode::FAILURE
        }
    }
}
