//! **Figure 4** — Performance degradation of the adaptation schemes over
//! the non-adaptive baseline.

use ace_bench::{append_summary, bar_chart, format_table, load_or_run_all, mean};

fn main() {
    let all = load_or_run_all();
    println!("Figure 4: slowdown vs baseline (%)");
    println!("(paper: BBV 1.34-2.38% avg 1.87%; hotspot 0.4-2.47% avg 1.56%)\n");
    let mut rows = Vec::new();
    for r in &all {
        rows.push(vec![
            r.workload.clone(),
            format!("{:.2}", r.bbv_slowdown_pct()),
            format!("{:.2}", r.hotspot_slowdown_pct()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.2}", mean(all.iter().map(|r| r.bbv_slowdown_pct()))),
        format!("{:.2}", mean(all.iter().map(|r| r.hotspot_slowdown_pct()))),
    ]);
    let table = format_table(&["bench", "BBV", "hotspot"], &rows);
    let labels: Vec<&str> = all.iter().map(|r| r.workload.as_str()).collect();
    let chart = bar_chart(
        &labels,
        &[
            ("BBV", all.iter().map(|r| r.bbv_slowdown_pct()).collect()),
            (
                "hot",
                all.iter().map(|r| r.hotspot_slowdown_pct()).collect(),
            ),
        ],
        42,
    );
    println!("{table}");
    println!("{chart}");
    append_summary(
        "Figure 4: slowdown (%)",
        &format!(
            "{table}
{chart}"
        ),
    );
}
