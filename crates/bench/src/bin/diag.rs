//! Diagnostic tool: per-hotspot chosen configurations, trial measurements,
//! and energy composition for one workload. Not part of the paper's
//! tables; used to understand and calibrate the reproduction.

use ace_core::{Experiment, HotspotAceManager, HotspotManagerConfig};
use ace_energy::EnergyModel;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "jess".to_string());
    let program = ace_workloads::preset(&name).expect("preset");
    let model = EnergyModel::default_180nm();

    let base = Experiment::program(program.clone()).run().unwrap();
    let mut mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
    let hot = Experiment::program(program.clone())
        .run_with(&mut mgr)
        .unwrap();

    println!(
        "== {name}: baseline ipc {:.3}, hotspot ipc {:.3} (slowdown {:.2}%)",
        base.ipc,
        hot.ipc,
        100.0 * hot.slowdown_vs(&base)
    );
    let be = &base.energy;
    let he = &hot.energy;
    println!(
        "baseline: L1D dyn {:.2e} leak {:.2e} rc {:.2e} | L2 dyn {:.2e} leak {:.2e} rc {:.2e}",
        be.l1d_dynamic_nj,
        be.l1d_leak_nj,
        be.l1d_reconfig_nj,
        be.l2_dynamic_nj,
        be.l2_leak_nj,
        be.l2_reconfig_nj
    );
    println!(
        "hotspot : L1D dyn {:.2e} leak {:.2e} rc {:.2e} | L2 dyn {:.2e} leak {:.2e} rc {:.2e}",
        he.l1d_dynamic_nj,
        he.l1d_leak_nj,
        he.l1d_reconfig_nj,
        he.l2_dynamic_nj,
        he.l2_leak_nj,
        he.l2_reconfig_nj
    );
    println!(
        "L1D accesses base {} hot {} | L2 accesses base {} hot {}",
        base.counters.l1d.total_accesses(),
        hot.counters.l1d.total_accesses(),
        base.counters.l2.total_accesses(),
        hot.counters.l2.total_accesses()
    );
    println!(
        "L1D misses base {} hot {} | L2 misses base {} hot {}",
        base.counters.l1d.total_misses(),
        hot.counters.l1d.total_misses(),
        base.counters.l2.total_misses(),
        hot.counters.l2.total_misses()
    );
    println!(
        "L1D flush-wb {} | L2 flush-wb {} | L1D resizes {:?} | L2 resizes {:?} | guard rejects {}",
        hot.counters.l1d.flush_writebacks.iter().sum::<u64>(),
        hot.counters.l2.flush_writebacks.iter().sum::<u64>(),
        hot.counters.l1d.resizes,
        hot.counters.l2.resizes,
        hot.counters.guard_rejections
    );
    println!(
        "cycles base {} hot {} (+{:.2}%)",
        base.cycles,
        hot.cycles,
        100.0 * (hot.cycles as f64 / base.cycles as f64 - 1.0)
    );

    let mut details: Vec<_> = mgr.hotspot_details().collect();
    details.sort_by_key(|(m, ..)| m.0);
    for (m, class, tuner, mean_ipc, cov, n) in details {
        let method = program.method(m);
        print!(
            "{:28} {:5} inv={:4} ipc={:.3} cov={:.3} best={:?} trials=[",
            method.name,
            class.to_string(),
            n,
            mean_ipc,
            cov,
            tuner.best().map(|b| b.to_string())
        );
        for (c, mm) in tuner.configs().iter().zip(tuner.measurements()) {
            if let Some(mm) = mm {
                print!(" {}:ipc={:.3},epi={:.3}", c, mm.ipc, mm.epi_nj);
            }
        }
        println!(" ]");
    }
}
