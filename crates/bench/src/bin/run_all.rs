//! Regenerates every experiment on the parallel engine: runs all seven
//! workloads under the three schemes (results are content-address-cached
//! under `results/`), prints the headline summary, then schedules every
//! registered sibling experiment as a job, saving each one's output under
//! `results/<name>.txt` and its sections into `results/SUMMARY.md`.
//!
//! Flags:
//!
//! * `--jobs <N>` — worker-pool width (default: `ACE_JOBS` or the
//!   machine's available parallelism). Output is byte-identical at any
//!   width.
//! * `--lanes <N>` — headline runs per lane-batched job (default 1,
//!   i.e. scalar stepping). Grouped runs advance round-robin through
//!   one machine batch, overlapping their dependency chains on a
//!   single core; results, caches, and the telemetry event stream are
//!   byte-identical at any lane count. Headline jobs mix workloads, so
//!   batching them measured throughput-neutral — the win exists for
//!   same-workload lanes only (see `benchmarks/JOURNAL.md`).
//! * `--fresh` — ignore cached results and re-run everything.
//! * `--headline-only` — skip the sibling experiments.
//! * `--list` — print the experiment registry and every registered
//!   workload name, then exit (nothing runs).
//! * `--telemetry <path>` — stream decision events (tuning,
//!   reconfiguration, promotion) as JSONL and print a summary at the end.
//!   Cached results skip their runs, so combine with `--fresh` for a
//!   complete trace.
//! * `--bench-out <path>` — write a perf-baseline JSON file
//!   (`BENCH_run.json`) with one timed entry per headline workload and
//!   per sibling experiment; see `ace_bench::baseline`.
//!
//! Any failing experiment is reported at the end and the process exits
//! nonzero.

use ace_bench::experiments::{commit_report, ExpCtx, Report, REGISTRY};
use ace_bench::{
    default_jobs, format_table, mean, print_telemetry_summary, results_dir, run_jobs,
    telemetry_from_args, BenchRun, ExperimentSet, Job,
};
use std::process::ExitCode;

struct Args {
    jobs: usize,
    lanes: usize,
    fresh: bool,
    headline_only: bool,
    list: bool,
    bench_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: default_jobs(),
        lanes: 1,
        fresh: false,
        headline_only: false,
        list: false,
        bench_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let value = it.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n > 0 => args.jobs = n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--lanes" => {
                let value = it.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n > 0 => args.lanes = n,
                    _ => {
                        eprintln!("--lanes requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--fresh" => args.fresh = true,
            "--headline-only" => args.headline_only = true,
            "--list" => args.list = true,
            "--telemetry" => {
                it.next(); // handled by telemetry_from_args
            }
            "--bench-out" => match it.next() {
                Some(path) => args.bench_out = Some(path),
                None => {
                    eprintln!("--bench-out requires a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}; see the run_all docs");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.list {
        println!("experiments ({}):", REGISTRY.len());
        for def in REGISTRY {
            println!("  {:<24} {}", def.name, def.summary);
        }
        let workloads = ace_workloads::WorkloadRegistry::builtin();
        let names = workloads.names();
        println!("workloads ({}):", names.len());
        for name in names {
            println!("  {name}");
        }
        println!("(workload names also accept a path to a WorkloadSpec JSON file)");
        return ExitCode::SUCCESS;
    }
    let telemetry = telemetry_from_args();

    let outcomes = match ExperimentSet::all_presets()
        .fresh(args.fresh)
        .lanes(args.lanes)
        .telemetry(&telemetry)
        .run_detailed(args.jobs)
    {
        Ok(outcomes) => outcomes,
        Err(e) => {
            eprintln!("headline runs failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut bench_run = BenchRun::new(args.jobs);
    for outcome in &outcomes {
        bench_run.push_workload(outcome);
    }
    let all: Vec<_> = outcomes.into_iter().map(|o| o.results).collect();

    let mut rows = Vec::new();
    for r in &all {
        rows.push(vec![
            r.workload.clone(),
            format!("{}", r.baseline.instret),
            format!("{:.3}", r.baseline.ipc),
            format!("{:.1}", r.bbv_l1d_saving_pct()),
            format!("{:.1}", r.hotspot_l1d_saving_pct()),
            format!("{:.1}", r.bbv_l2_saving_pct()),
            format!("{:.1}", r.hotspot_l2_saving_pct()),
            format!("{:.2}", r.bbv_slowdown_pct()),
            format!("{:.2}", r.hotspot_slowdown_pct()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        String::new(),
        String::new(),
        format!("{:.1}", mean(all.iter().map(|r| r.bbv_l1d_saving_pct()))),
        format!(
            "{:.1}",
            mean(all.iter().map(|r| r.hotspot_l1d_saving_pct()))
        ),
        format!("{:.1}", mean(all.iter().map(|r| r.bbv_l2_saving_pct()))),
        format!("{:.1}", mean(all.iter().map(|r| r.hotspot_l2_saving_pct()))),
        format!("{:.2}", mean(all.iter().map(|r| r.bbv_slowdown_pct()))),
        format!("{:.2}", mean(all.iter().map(|r| r.hotspot_slowdown_pct()))),
    ]);
    println!("=== Summary (Fig 3 + Fig 4): energy savings % and slowdown % ===");
    println!(
        "{}",
        format_table(
            &[
                "bench", "instr", "baseIPC", "L1Dbbv", "L1Dhot", "L2bbv", "L2hot", "slowBBV",
                "slowHot"
            ],
            &rows
        )
    );

    println!("=== Detection / tuning detail ===");
    let mut rows = Vec::new();
    for r in &all {
        let h = &r.hotspot_report;
        let b = &r.bbv_report;
        rows.push(vec![
            r.workload.clone(),
            format!("{}", r.hotspot.table4.hotspots),
            format!("{}", h.l1d_hotspots()),
            format!("{}", h.l2_hotspots()),
            format!("{:.0}%", 100.0 * h.tuned_fraction()),
            format!(
                "{:.1}%",
                100.0 * h.l1d().covered_instr as f64 / r.hotspot.instret as f64
            ),
            format!(
                "{:.1}%",
                100.0 * h.l2().covered_instr as f64 / r.hotspot.instret as f64
            ),
            format!("{}", b.phases),
            format!("{}", b.tuned_phases),
            format!("{:.0}%", 100.0 * b.tuned_interval_fraction()),
            format!("{:.0}%", 100.0 * b.stability.stable_fraction()),
            format!(
                "{:.1}%",
                100.0 * b.covered_instr as f64 / r.bbv.instret as f64
            ),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "bench", "hs", "hsL1D", "hsL2", "tuned", "covL1D", "covL2", "phases", "tunedPh",
                "tunedInt", "stable", "covBBV"
            ],
            &rows
        )
    );

    let mut failed = Vec::new();
    if !args.headline_only {
        eprintln!(
            "regenerating every experiment artifact ({} jobs):",
            args.jobs
        );
        let pool: Vec<Job<Report>> = REGISTRY
            .iter()
            .map(|def| {
                let run = def.run;
                Job::new(def.name, move |tel| {
                    run(&ExpCtx {
                        telemetry: tel.clone(),
                    })
                })
            })
            .collect();
        let _ = std::fs::create_dir_all(results_dir());
        for outcome in run_jobs(pool, args.jobs, &telemetry) {
            bench_run.push_experiment(&outcome.key, outcome.wall);
            match outcome.result {
                Ok(report) => {
                    let path = results_dir().join(format!("{}.txt", report.name));
                    if let Err(e) = std::fs::write(&path, &report.text) {
                        eprintln!("  {:<24} cannot write {}: {e}", report.name, path.display());
                    }
                    commit_report(&report);
                    eprintln!(
                        "  {:<24} ok ({:.1}s) -> {}",
                        report.name,
                        outcome.wall.as_secs_f32(),
                        path.display()
                    );
                }
                Err(e) => {
                    eprintln!("  {:<24} FAILED: {e}", outcome.key);
                    failed.push(outcome.key);
                }
            }
        }
        eprintln!("done; see results/ and results/SUMMARY.md");
    }

    if let Some(path) = &args.bench_out {
        match bench_run.write(path) {
            Ok(()) => eprintln!(
                "wrote perf baseline ({} entries) to {path}",
                bench_run.entries.len()
            ),
            Err(e) => {
                eprintln!("cannot write bench baseline {path}: {e}");
                failed.push("--bench-out".to_string());
            }
        }
    }

    print_telemetry_summary(&telemetry);

    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        ExitCode::FAILURE
    }
}
