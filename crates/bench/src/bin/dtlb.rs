//! Extension: the DTLB as a registry-registered third configurable unit.

fn main() -> std::process::ExitCode {
    ace_bench::experiments::cli_main("dtlb")
}
