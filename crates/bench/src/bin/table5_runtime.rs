//! **Table 5** — Runtime characteristics of the hotspot and BBV schemes:
//! hotspot counts per CU class, tuned fractions, per-/inter-hotspot IPC
//! CoVs; BBV phase counts, tuned phases, % of intervals in tuned phases,
//! per-/inter-phase IPC CoVs.
//!
//! Accepts `--telemetry <path>` to stream decision events as JSONL (see
//! `run_all`); cached results emit no events, so use `ACE_FRESH=1` for a
//! complete trace.

use ace_bench::{format_table, load_or_run_all_with, print_telemetry_summary, telemetry_from_args};

fn main() {
    let telemetry = telemetry_from_args();
    let all = load_or_run_all_with(&telemetry);

    println!("Table 5 (hotspot scheme)");
    println!("(paper: 85-141 hotspots, 81-94% tuned, per-hotspot CoV 5-10%, inter 43-52%)\n");
    let mut rows = Vec::new();
    for r in &all {
        let h = &r.hotspot_report;
        rows.push(vec![
            r.workload.clone(),
            format!("{}", h.l1d_hotspots),
            format!("{}", h.l2_hotspots),
            format!("{}", h.l1d_hotspots + h.l2_hotspots + h.small_hotspots),
            format!("{}", h.tuned_hotspots),
            format!("{:.1}%", 100.0 * h.tuned_fraction()),
            format!("{:.2}%", 100.0 * h.per_hotspot_ipc_cov),
            format!("{:.2}%", 100.0 * h.inter_hotspot_ipc_cov),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "bench",
                "L1D hs",
                "L2 hs",
                "total hs",
                "tuned",
                "tuned %",
                "per-hs CoV",
                "inter-hs CoV"
            ],
            &rows
        )
    );

    println!("Table 5 (BBV scheme)");
    println!("(paper: 50-84 phases, 13-35 tuned, 40-93% of intervals in tuned phases,");
    println!(" per-phase CoV 4-9%, inter-phase 20-38%)\n");
    let mut rows = Vec::new();
    for r in &all {
        let b = &r.bbv_report;
        rows.push(vec![
            r.workload.clone(),
            format!("{}", b.phases),
            format!("{}", b.tuned_phases),
            format!("{:.1}%", 100.0 * b.tuned_interval_fraction()),
            format!("{:.2}%", 100.0 * b.per_phase_ipc_cov),
            format!("{:.2}%", 100.0 * b.inter_phase_ipc_cov),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "bench",
                "phases",
                "tuned",
                "tuned intervals",
                "per-ph CoV",
                "inter-ph CoV"
            ],
            &rows
        )
    );

    print_telemetry_summary(&telemetry);
}
