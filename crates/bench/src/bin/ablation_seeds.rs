//! **Robustness: seed sensitivity.**
//!
//! The workloads are synthetic, so a fair question is whether the headline
//! result is an artifact of one particular random stream. This experiment
//! re-runs the hotspot scheme on every workload under several executor
//! seeds (which perturb invocation sizes, loop counts, access addresses,
//! and branch outcomes) and reports the spread.

use ace_bench::{format_table, mean, standard_run_config};
use ace_core::{run_with_manager, HotspotAceManager, HotspotManagerConfig, NullManager};
use ace_energy::EnergyModel;
use ace_sim::OnlineStats;
use ace_workloads::PRESET_NAMES;

fn main() {
    let model = EnergyModel::default_180nm();
    let seeds = [0u64, 0x5EED_0001, 0x5EED_0002, 0x5EED_0003];
    let mut rows = Vec::new();
    let mut grand = Vec::new();
    for name in PRESET_NAMES {
        let program = ace_workloads::preset(name).unwrap();
        let mut savings = OnlineStats::new();
        let mut slowdowns = OnlineStats::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let mut cfg = standard_run_config();
            cfg.energy = model;
            if i > 0 {
                cfg.workload_seed = Some(seed);
            }
            let base = run_with_manager(&program, &cfg, &mut NullManager).unwrap();
            let mut mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
            let r = run_with_manager(&program, &cfg, &mut mgr).unwrap();
            savings.push(100.0 * (1.0 - r.energy.total_nj() / base.energy.total_nj()));
            slowdowns.push(100.0 * r.slowdown_vs(&base));
        }
        grand.push(savings.mean());
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", savings.mean()),
            format!("{:.1}", savings.min()),
            format!("{:.1}", savings.max()),
            format!("{:.2}", savings.population_stddev()),
            format!("{:.2}", slowdowns.mean()),
            format!("{:.2}", slowdowns.max()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", mean(grand)),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    println!("Robustness: hotspot-scheme total energy saving across 4 executor seeds\n");
    println!(
        "{}",
        format_table(
            &[
                "bench",
                "sav mean%",
                "min",
                "max",
                "stddev",
                "slow mean%",
                "slow max%"
            ],
            &rows
        )
    );
}
