//! Machine configuration: cache geometries, pipeline parameters, and the
//! baseline configuration from Table 2 of the paper.
//!
//! The simulated processor is a 4-wide superscalar clocked at 1 GHz / 2 V
//! with a 64-entry instruction window, a 2K-entry combined branch predictor
//! (3-cycle misprediction penalty), split 64 KB L1 caches, a 1 MB unified
//! L2, and a 128-entry DTLB. The L1 data cache and the L2 cache are
//! *configurable units*: each supports four sizes selected at runtime via a
//! control register (see [`crate::machine::Machine`]).

use crate::cu::{CuDescriptor, CuId, CuRegistry, FlushSemantics};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of selectable sizes per configurable cache (Table 2: four sizes).
pub const NUM_SIZE_LEVELS: usize = 4;

/// A selectable size level of a configurable cache.
///
/// Level 0 is the **largest** (baseline) size; each subsequent level halves
/// the capacity. The tuning algorithms walk levels from 0 upward, so the
/// first configuration tested is always the full-size baseline.
///
/// # Examples
///
/// ```
/// use ace_sim::SizeLevel;
/// let lvl = SizeLevel::new(2).unwrap();
/// assert_eq!(lvl.index(), 2);
/// assert_eq!(SizeLevel::LARGEST.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SizeLevel(u8);

impl SizeLevel {
    /// The largest (baseline) size.
    pub const LARGEST: SizeLevel = SizeLevel(0);
    /// The smallest selectable size.
    pub const SMALLEST: SizeLevel = SizeLevel((NUM_SIZE_LEVELS - 1) as u8);

    /// Creates a size level, returning `None` if `index` is out of range.
    pub fn new(index: u8) -> Option<SizeLevel> {
        if (index as usize) < NUM_SIZE_LEVELS {
            Some(SizeLevel(index))
        } else {
            None
        }
    }

    /// The level index in `0..NUM_SIZE_LEVELS` (0 = largest).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next smaller level, if any.
    pub fn smaller(self) -> Option<SizeLevel> {
        SizeLevel::new(self.0 + 1)
    }

    /// The next larger level, if any.
    pub fn larger(self) -> Option<SizeLevel> {
        self.0.checked_sub(1).map(SizeLevel)
    }

    /// Iterates over all levels from largest to smallest.
    pub fn all() -> impl Iterator<Item = SizeLevel> {
        (0..NUM_SIZE_LEVELS as u8).map(SizeLevel)
    }
}

impl Default for SizeLevel {
    fn default() -> Self {
        SizeLevel::LARGEST
    }
}

impl fmt::Display for SizeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Static geometry of one cache at its **maximum** size.
///
/// A configurable cache shrinks by halving its set count, keeping
/// associativity and block size fixed; level `k` has `max_size >> k` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Capacity in bytes at the largest size level.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: u32,
    /// Line size in bytes (a power of two).
    pub block_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheGeometry {
    /// Number of sets at the largest size level.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways or block size).
    pub fn max_sets(&self) -> u32 {
        assert!(self.ways > 0 && self.block_bytes > 0, "degenerate geometry");
        (self.size_bytes / (self.ways as u64 * self.block_bytes as u64)) as u32
    }

    /// Number of sets at `level` (half per level below the largest).
    pub fn sets_at(&self, level: SizeLevel) -> u32 {
        self.max_sets() >> level.index()
    }

    /// Capacity in bytes at `level`.
    pub fn size_at(&self, level: SizeLevel) -> u64 {
        self.size_bytes >> level.index()
    }

    /// Validates that the geometry supports all [`NUM_SIZE_LEVELS`] levels.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.block_bytes.is_power_of_two() {
            return Err(ConfigError::new("block size must be a power of two"));
        }
        if self.ways == 0 {
            return Err(ConfigError::new("cache must have at least one way"));
        }
        let line = self.ways as u64 * self.block_bytes as u64;
        if !self.size_bytes.is_multiple_of(line) {
            return Err(ConfigError::new(
                "capacity must be a multiple of ways * block size",
            ));
        }
        let sets = self.max_sets();
        if !sets.is_power_of_two() {
            return Err(ConfigError::new("set count must be a power of two"));
        }
        if (sets >> (NUM_SIZE_LEVELS - 1)) == 0 {
            return Err(ConfigError::new(
                "cache too small to support all size levels",
            ));
        }
        Ok(())
    }
}

/// Error returned when a machine or cache configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    msg: &'static str,
}

impl ConfigError {
    pub(crate) fn new(msg: &'static str) -> ConfigError {
        ConfigError { msg }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.msg)
    }
}

impl std::error::Error for ConfigError {}

/// Full machine configuration (Table 2 of the paper by default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Instruction issue/commit width (instructions per cycle).
    pub issue_width: u32,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u32,
    /// Entries in each branch predictor table (power of two).
    pub predictor_entries: u32,
    /// L1 instruction cache geometry (not configurable).
    pub l1i: CacheGeometry,
    /// L1 data cache geometry at its largest size (configurable unit).
    pub l1d: CacheGeometry,
    /// Unified L2 cache geometry at its largest size (configurable unit).
    pub l2: CacheGeometry,
    /// Main memory access latency in cycles.
    pub mem_latency: u32,
    /// DTLB entries (16-way set-associative approximation of fully assoc.).
    pub dtlb_entries: u32,
    /// DTLB miss penalty in cycles (software-walked at this era).
    pub tlb_miss_penalty: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Percent of the *memory-latency* portion of a data miss that is
    /// actually exposed as stall cycles — the complement of the
    /// memory-level parallelism the 64-entry window extracts.
    pub miss_exposure_pct: u32,
    /// Percent of the L2-hit latency of an L1D miss that is exposed. Short
    /// fills hide almost completely under out-of-order execution.
    pub l2_hit_exposure_pct: u32,
    /// Percent of a load's miss penalty charged for a store miss
    /// (stores retire through the write buffer and rarely stall commit).
    pub store_stall_pct: u32,
    /// Cycles charged per dirty line written back during a resize flush.
    pub flush_writeback_cycles: u32,
    /// Minimum instructions between L1D reconfigurations (paper: 100 K).
    pub l1d_reconfig_interval: u64,
    /// Minimum instructions between L2 reconfigurations (paper: 1 M).
    pub l2_reconfig_interval: u64,
    /// Instruction-window (issue queue + ROB) entries at the largest
    /// level; each level halves the entries. The window is the third
    /// configurable unit the paper reports as in progress ("we are
    /// implementing several more CUs, such as the issue window and the
    /// reorder buffer").
    pub window_entries: u32,
    /// Minimum instructions between window reconfigurations: draining the
    /// pipeline is cheap, so the interval is short — the paper's Section
    /// 2.1 puts reorder-buffer adaptation at "thousands of instructions".
    pub window_reconfig_interval: u64,
    /// Per-mille multiplier applied to exposed data-miss stalls at each
    /// window level: a smaller window extracts less memory-level
    /// parallelism, so code with misses suffers while hit-dominated code
    /// is unaffected.
    pub window_exposure_permille: [u32; NUM_SIZE_LEVELS],
    /// Whether the DTLB is exposed as a configurable unit. `false`
    /// reproduces the paper's machine (the DTLB exists but is fixed at
    /// 128 entries); `true` registers it as a third real CU with a
    /// four-level entry ladder.
    #[serde(default)]
    pub dtlb_configurable: bool,
    /// Minimum instructions between DTLB reconfigurations. Invalidating
    /// a TLB is cheap (nothing is written back), so the interval sits
    /// between the window's and the L1D's.
    #[serde(default)]
    pub dtlb_reconfig_interval: u64,
}

impl MachineConfig {
    /// The baseline configuration of Table 2.
    ///
    /// # Examples
    ///
    /// ```
    /// use ace_sim::MachineConfig;
    /// let cfg = MachineConfig::table2();
    /// assert_eq!(cfg.l1d.size_bytes, 64 * 1024);
    /// assert_eq!(cfg.l2.size_bytes, 1024 * 1024);
    /// cfg.validate().unwrap();
    /// ```
    pub fn table2() -> MachineConfig {
        MachineConfig {
            issue_width: 4,
            mispredict_penalty: 3,
            predictor_entries: 2048,
            l1i: CacheGeometry {
                size_bytes: 64 * 1024,
                ways: 2,
                block_bytes: 64,
                hit_latency: 1,
            },
            l1d: CacheGeometry {
                size_bytes: 64 * 1024,
                ways: 2,
                block_bytes: 64,
                hit_latency: 1,
            },
            l2: CacheGeometry {
                size_bytes: 1024 * 1024,
                ways: 4,
                block_bytes: 128,
                hit_latency: 10,
            },
            mem_latency: 100,
            dtlb_entries: 128,
            tlb_miss_penalty: 30,
            page_bytes: 4096,
            miss_exposure_pct: 25,
            l2_hit_exposure_pct: 12,
            store_stall_pct: 30,
            flush_writeback_cycles: 2,
            l1d_reconfig_interval: 100_000,
            l2_reconfig_interval: 1_000_000,
            window_entries: 64,
            window_reconfig_interval: 5_000,
            window_exposure_permille: [1000, 1150, 1400, 1850],
            dtlb_configurable: false,
            dtlb_reconfig_interval: 10_000,
        }
    }

    /// The registered configurable units this machine exposes, derived
    /// from the configuration: the paper's two caches, the vestigial
    /// window, and — when [`MachineConfig::dtlb_configurable`] — the
    /// DTLB. Each descriptor carries the hardware guard interval and the
    /// hotspot-grain floor the size-class rule bins against.
    pub fn cu_registry(&self) -> CuRegistry {
        let mut reg = CuRegistry::new();
        reg.register(CuDescriptor::new(
            CuId::Window,
            self.window_reconfig_interval,
            5_000,
            FlushSemantics::DrainPipeline,
        ));
        reg.register(CuDescriptor::new(
            CuId::L1d,
            self.l1d_reconfig_interval,
            50_000,
            FlushSemantics::WritebackDirty,
        ));
        reg.register(CuDescriptor::new(
            CuId::L2,
            self.l2_reconfig_interval,
            500_000,
            FlushSemantics::WritebackDirty,
        ));
        if self.dtlb_configurable {
            reg.register(CuDescriptor::new(
                CuId::Dtlb,
                self.dtlb_reconfig_interval,
                10_000,
                FlushSemantics::InvalidateAll,
            ));
        }
        reg
    }

    /// Validates every field, returning the first problem found.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any geometry is malformed or a pipeline
    /// parameter is zero where that would be meaningless.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.issue_width == 0 {
            return Err(ConfigError::new("issue width must be nonzero"));
        }
        if !self.predictor_entries.is_power_of_two() {
            return Err(ConfigError::new("predictor entries must be a power of two"));
        }
        if !self.page_bytes.is_power_of_two() {
            return Err(ConfigError::new("page size must be a power of two"));
        }
        if self.dtlb_entries == 0 || !self.dtlb_entries.is_multiple_of(16) {
            return Err(ConfigError::new(
                "DTLB entries must be a nonzero multiple of 16",
            ));
        }
        if self.miss_exposure_pct > 100
            || self.l2_hit_exposure_pct > 100
            || self.store_stall_pct > 100
        {
            return Err(ConfigError::new("percentages must be at most 100"));
        }
        if self.l1d_reconfig_interval == 0
            || self.l2_reconfig_interval == 0
            || self.window_reconfig_interval == 0
        {
            return Err(ConfigError::new(
                "reconfiguration intervals must be nonzero",
            ));
        }
        if self.window_entries == 0 || (self.window_entries >> (NUM_SIZE_LEVELS - 1)) == 0 {
            return Err(ConfigError::new(
                "window too small to support all size levels",
            ));
        }
        if self.window_exposure_permille.iter().any(|&m| m < 1000) {
            return Err(ConfigError::new(
                "window exposure multipliers must be at least 1000 per-mille",
            ));
        }
        if self.dtlb_configurable {
            if self.dtlb_reconfig_interval == 0 {
                return Err(ConfigError::new(
                    "reconfiguration intervals must be nonzero",
                ));
            }
            if (self.dtlb_entries / 16) >> (NUM_SIZE_LEVELS - 1) == 0 {
                return Err(ConfigError::new(
                    "DTLB too small to support all size levels",
                ));
            }
        }
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2.validate()?;
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_valid() {
        MachineConfig::table2().validate().unwrap();
    }

    #[test]
    fn size_levels_cover_paper_sizes() {
        let cfg = MachineConfig::table2();
        let l1d_sizes: Vec<u64> = SizeLevel::all().map(|l| cfg.l1d.size_at(l)).collect();
        assert_eq!(l1d_sizes, vec![65536, 32768, 16384, 8192]);
        let l2_sizes: Vec<u64> = SizeLevel::all().map(|l| cfg.l2.size_at(l)).collect();
        assert_eq!(l2_sizes, vec![1 << 20, 512 << 10, 256 << 10, 128 << 10]);
    }

    #[test]
    fn sets_at_levels_halve() {
        let g = MachineConfig::table2().l1d;
        assert_eq!(g.max_sets(), 512);
        assert_eq!(g.sets_at(SizeLevel::new(1).unwrap()), 256);
        assert_eq!(g.sets_at(SizeLevel::SMALLEST), 64);
    }

    #[test]
    fn size_level_bounds() {
        assert!(SizeLevel::new(3).is_some());
        assert!(SizeLevel::new(4).is_none());
        assert_eq!(SizeLevel::LARGEST.larger(), None);
        assert_eq!(SizeLevel::SMALLEST.smaller(), None);
        assert_eq!(SizeLevel::LARGEST.smaller(), SizeLevel::new(1));
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut g = MachineConfig::table2().l1d;
        g.block_bytes = 48;
        assert!(g.validate().is_err());
        let mut g2 = MachineConfig::table2().l1d;
        g2.size_bytes = 1024; // only 8 sets at 2-way/64B -> level 3 would be 1 set: ok
        assert!(g2.validate().is_ok());
        g2.size_bytes = 256; // 2 sets -> level 3 has 0 sets
        assert!(g2.validate().is_err());
    }

    #[test]
    fn invalid_machine_rejected() {
        let mut cfg = MachineConfig::table2();
        cfg.issue_width = 0;
        assert!(cfg.validate().is_err());
        let mut cfg2 = MachineConfig::table2();
        cfg2.miss_exposure_pct = 150;
        assert!(cfg2.validate().is_err());
    }

    #[test]
    fn display_and_ordering() {
        assert_eq!(SizeLevel::LARGEST.to_string(), "L0");
        assert!(SizeLevel::LARGEST < SizeLevel::SMALLEST);
    }

    #[test]
    fn registry_tracks_dtlb_configurability() {
        let cfg = MachineConfig::table2();
        let reg = cfg.cu_registry();
        assert_eq!(reg.len(), 3, "paper machine registers window+L1D+L2");
        assert!(!reg.contains(CuId::Dtlb));
        assert_eq!(reg.get(CuId::L2).unwrap().reconfig_interval, 1_000_000);

        let mut cfg = MachineConfig::table2();
        cfg.dtlb_configurable = true;
        cfg.validate().unwrap();
        let reg = cfg.cu_registry();
        assert_eq!(reg.len(), 4);
        assert_eq!(reg.get(CuId::Dtlb).unwrap().reconfig_interval, 10_000);

        cfg.dtlb_entries = 64; // 4 sets: level 3 would have half a set
        assert!(cfg.validate().is_err());
        cfg.dtlb_entries = 128;
        cfg.dtlb_reconfig_interval = 0;
        assert!(cfg.validate().is_err());
    }
}
