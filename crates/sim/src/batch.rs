//! Lane-batched machine stepping: independent machines advance through
//! one shared step loop, one block per lane per call.
//!
//! # Why batch on a block-level simulator — and at what granularity
//!
//! Successive [`Machine::exec_block`] calls on *one* machine form a
//! loop-carried dependency chain: counters, stall accumulators, and
//! replacement state feed every next block. Different machines share no
//! state, so rotating between lanes at **block granularity** breaks that
//! chain — the out-of-order core overlaps the tail of lane A's block
//! with the head of lane B's. Measured on the CI substrate, stepping 4+
//! independent lanes round-robin retires blocks ~1.8× faster than
//! re-stepping a single machine (≈61 vs ≈109 ns/block, hit-dominated).
//!
//! A finer **reference-major** schedule — every lane executes data
//! reference `r` before any lane moves to `r + 1` — was built and
//! measured first, and *rejected*: per-lane cursor state (MRU memo,
//! stall accumulators) no longer fits in registers when the loop rotates
//! lanes each reference, and the resulting spills cost 1.3–1.65× at
//! every lane count above one (see `benchmarks/JOURNAL.md`). The per-ref
//! work of this simulator is simply too small to amortise a software
//! pipeline; block granularity captures the cross-lane ILP for free.
//!
//! # The divergence rule
//!
//! The batched path never duplicates simulator semantics. A lane leaves
//! the shared loop and is handled on the scalar path exactly when it
//! diverges from the common schedule:
//!
//! * **block end** — each lane's block retires fully before the rotation
//!   moves on; uneven block lengths never stall other lanes;
//! * **reconfig boundary / resize** — resizes and manager decisions only
//!   happen *between* blocks, so the caller simply steps that lane
//!   scalar for the boundary and re-admits it on the next batch call.
//!
//! Both paths execute the same `Machine::exec_block`, assembled from the
//! same `pub(crate)` pieces (`fetch_stalls`, `data_ref`,
//! `retire_block`), so batched and scalar stepping are byte-identical by
//! construction — the differential proptests in
//! `tests/batch_equivalence.rs` pin this.

use crate::machine::Machine;
use crate::trace::Block;

/// Recommended widest lane group. Wider groups are legal — the schedule
/// is lane-major, so correctness never depends on width — but past ~16
/// lanes the combined simulator state outgrows the host's L2 and the
/// cross-lane ILP win turns into cache thrash. Group-forming callers
/// (the fleet driver, the bench harness) use this as their default cap.
pub const MAX_LANES: usize = 16;

/// A group of independent machines stepped round-robin.
///
/// # Examples
///
/// ```
/// use ace_sim::{Block, Machine, MachineBatch, MachineConfig, MemAccess};
/// let machines: Vec<Machine> = (0..4)
///     .map(|_| Machine::new(MachineConfig::table2()).unwrap())
///     .collect();
/// let mut batch = MachineBatch::new(machines);
/// let block = Block {
///     pc: 0x400,
///     ninstr: 16,
///     accesses: vec![MemAccess::load(0x8000)],
///     branch: None,
/// };
/// // Lanes 0 and 2 have a block ready this step; 1 and 3 sit out.
/// batch.exec_blocks(&[(0, &block), (2, &block)]);
/// assert_eq!(batch.lane_mut(0).counters().instret, 16);
/// assert_eq!(batch.lane_mut(1).counters().instret, 0);
/// ```
#[derive(Debug)]
pub struct MachineBatch {
    lanes: Vec<Machine>,
}

impl MachineBatch {
    /// Wraps `machines` as the batch's lanes (any count; [`MAX_LANES`]
    /// is the recommended cap, not a hard limit).
    pub fn new(machines: Vec<Machine>) -> MachineBatch {
        MachineBatch { lanes: machines }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Shared view of lane `i`'s machine.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lane(&self, i: usize) -> &Machine {
        &self.lanes[i]
    }

    /// Exclusive view of lane `i`'s machine — this is how the caller
    /// runs scalar boundary work (manager callbacks, resizes, counter
    /// reads) between batched steps.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lane_mut(&mut self, i: usize) -> &mut Machine {
        &mut self.lanes[i]
    }

    /// Dissolves the batch back into its machines, in lane order.
    pub fn into_machines(self) -> Vec<Machine> {
        self.lanes
    }

    /// Executes one block on each listed lane: `work` pairs a lane index
    /// with the block that lane retires this step (lanes not listed sit
    /// the step out). Identical to calling [`Machine::exec_block`] per
    /// lane — same counters, same cache and TLB state, same statistics —
    /// scheduled lane-major so each block's dependency chain overlaps
    /// the next lane's independent one in the out-of-order window.
    ///
    /// # Panics
    ///
    /// Panics if a lane index is out of range or repeated (two blocks on
    /// one lane in a single step would race the lane against itself).
    pub fn exec_blocks(&mut self, work: &[(usize, &Block)]) {
        for (i, &(lane, block)) in work.iter().enumerate() {
            assert!(
                work[..i].iter().all(|&(prev, _)| prev != lane),
                "lane {lane} listed twice in one batched step"
            );
            self.lanes[lane].exec_block(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::trace::{BranchEvent, MemAccess};

    fn machines(n: usize) -> Vec<Machine> {
        (0..n)
            .map(|_| Machine::new(MachineConfig::table2()).unwrap())
            .collect()
    }

    fn block(pc: u64, ninstr: u32, accesses: Vec<MemAccess>) -> Block {
        Block {
            pc,
            ninstr,
            accesses,
            branch: None,
        }
    }

    #[test]
    fn batched_equals_scalar_on_mixed_blocks() {
        // Four lanes with different block shapes, including an empty
        // access list and a branch.
        let blocks = [
            block(0x400, 16, vec![MemAccess::load(0x8000)]),
            block(
                0x800,
                8,
                (0..37)
                    .map(|i| MemAccess::load(0x2_0000 + i * 64))
                    .collect(),
            ),
            block(0xc00, 4, vec![]),
            Block {
                pc: 0x1000,
                ninstr: 12,
                accesses: vec![MemAccess::store(0x4_0000), MemAccess::load(0x4_0008)],
                branch: Some(BranchEvent {
                    pc: 0x1040,
                    taken: true,
                }),
            },
        ];
        let mut scalar = machines(4);
        let mut batch = MachineBatch::new(machines(4));
        for round in 0..50 {
            for (i, b) in blocks.iter().enumerate() {
                scalar[i].exec_block(b);
            }
            // Alternate submission order across rounds: lanes are
            // independent, so order must not matter.
            let work: Vec<(usize, &Block)> = if round % 3 == 0 {
                blocks.iter().enumerate().collect()
            } else {
                blocks.iter().enumerate().rev().collect()
            };
            batch.exec_blocks(&work);
        }
        for (i, machine) in scalar.iter_mut().enumerate() {
            assert_eq!(
                machine.counters(),
                batch.lane_mut(i).counters(),
                "lane {i} diverged"
            );
        }
    }

    #[test]
    fn single_lane_and_empty_steps_are_fine() {
        let mut batch = MachineBatch::new(machines(2));
        batch.exec_blocks(&[]);
        let b = block(0x400, 16, vec![MemAccess::load(0x1000)]);
        batch.exec_blocks(&[(1, &b)]);
        assert_eq!(batch.lane_mut(0).counters().instret, 0);
        assert_eq!(batch.lane_mut(1).counters().instret, 16);
    }

    #[test]
    fn chunking_handles_more_than_max_lanes() {
        let n = MAX_LANES + 5;
        let mut scalar = machines(n);
        let mut batch = MachineBatch::new(machines(n));
        let blocks: Vec<Block> = (0..n)
            .map(|i| {
                block(
                    0x400 + i as u64 * 0x40,
                    8,
                    vec![MemAccess::load(0x1_0000 + i as u64 * 4096)],
                )
            })
            .collect();
        for _ in 0..10 {
            for (i, b) in blocks.iter().enumerate() {
                scalar[i].exec_block(b);
            }
            let work: Vec<(usize, &Block)> = blocks.iter().enumerate().collect();
            batch.exec_blocks(&work);
        }
        for (i, s) in scalar.iter_mut().enumerate() {
            assert_eq!(s.counters(), batch.lane_mut(i).counters(), "lane {i}");
        }
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_lane_is_rejected() {
        let mut batch = MachineBatch::new(machines(2));
        let b = block(0x400, 8, vec![MemAccess::load(0x1000)]);
        batch.exec_blocks(&[(0, &b), (0, &b)]);
    }
}
