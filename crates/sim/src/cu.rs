//! Configurable-unit identity, descriptors, and the registry.
//!
//! The paper's central scalability claim (Section 3.2.1) is that CU
//! decoupling grows the tuning space *linearly* in the number of
//! configurable units. That only holds if adding a unit is data, not
//! code: a new CU is described by a [`CuDescriptor`] and registered with
//! the machine, and everything downstream — hotspot binning, tuning
//! search lists, energy accounting, trace residency — consumes the
//! registry instead of matching on a closed enum.
//!
//! [`CuId`] is a small index type rather than an enum precisely so the
//! set of units is open-ended. The well-known units ship as associated
//! constants ([`CuId::Window`], [`CuId::L1d`], [`CuId::L2`],
//! [`CuId::Dtlb`]) whose spellings match the historical `CuKind` enum
//! variants; `CuKind` itself survives as a type alias.

use crate::config::NUM_SIZE_LEVELS;
use serde::{Deserialize, Error, Serialize, Value};

/// Maximum number of configurable units a machine can register.
///
/// Counter arrays indexed by [`CuId`] (`last_reconfig`, per-CU scheme
/// statistics, trace residency tables) are sized by this constant.
pub const MAX_CUS: usize = 4;

/// Identifier of one configurable unit: a dense index into the machine's
/// [`CuRegistry`].
///
/// # Examples
///
/// ```
/// use ace_sim::CuId;
/// assert_eq!(CuId::L1d.name(), "l1d");
/// assert_eq!(CuId::from_name("l1d"), Some(CuId::L1d));
/// assert_eq!(CuId::L1d.to_string(), "L1D");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CuId(u8);

#[allow(non_upper_case_globals)]
impl CuId {
    /// The instruction window / ROB (the extension CU of Section 4.1).
    pub const Window: CuId = CuId(0);
    /// The L1 data cache.
    pub const L1d: CuId = CuId(1);
    /// The unified L2 cache.
    pub const L2: CuId = CuId(2);
    /// The data TLB (the registry-proving third CU).
    pub const Dtlb: CuId = CuId(3);

    /// All assignable identifiers, in tuning order (cheapest first).
    pub const ALL: [CuId; MAX_CUS] = [CuId::Window, CuId::L1d, CuId::L2, CuId::Dtlb];

    /// The dense index in `0..MAX_CUS`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The identifier with dense index `index`, if in range.
    pub fn from_index(index: usize) -> Option<CuId> {
        (index < MAX_CUS).then_some(CuId(index as u8))
    }

    /// Lower-case short name ("window", "l1d", "l2", "dtlb").
    pub fn name(self) -> &'static str {
        ["window", "l1d", "l2", "dtlb"][self.index()]
    }

    /// Historical `CuKind`/`Cu` variant spelling, kept stable because the
    /// telemetry JSONL encoding is pinned by committed trace fixtures.
    fn variant(self) -> &'static str {
        ["Window", "L1d", "L2", "Dtlb"][self.index()]
    }

    /// Parses either the lower-case [`CuId::name`] or the historical
    /// variant spelling.
    pub fn from_name(s: &str) -> Option<CuId> {
        CuId::ALL
            .into_iter()
            .find(|cu| cu.name() == s || cu.variant() == s)
    }
}

impl std::fmt::Debug for CuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.variant())
    }
}

impl std::fmt::Display for CuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CuId::Window => write!(f, "WIN"),
            CuId::L1d => write!(f, "L1D"),
            CuId::L2 => write!(f, "L2"),
            CuId::Dtlb => write!(f, "DTLB"),
            _ => write!(f, "CU{}", self.0),
        }
    }
}

impl Serialize for CuId {
    // Encodes as the historical unit-variant string so pre-refactor
    // telemetry JSONL fixtures keep parsing (and new streams stay
    // byte-identical to old ones).
    fn to_value(&self) -> Value {
        Value::Str(self.variant().to_string())
    }
}

impl Deserialize for CuId {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => {
                CuId::from_name(s).ok_or_else(|| Error::custom(format!("unknown CU `{s}`")))
            }
            _ => Err(Error::custom("expected a CU name string")),
        }
    }
}

/// Backward-compatible spelling: the closed `CuKind` enum became the
/// open [`CuId`] index in 0.3.
pub type CuKind = CuId;

/// What an applied reconfiguration does to the unit's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlushSemantics {
    /// No state is lost; the pipeline drains briefly (instruction window).
    DrainPipeline,
    /// Dirty lines are written back to the next level (caches).
    WritebackDirty,
    /// All entries are invalidated and refill on demand (TLBs).
    InvalidateAll,
}

/// Static description of one configurable unit, registered with the
/// machine so software layers can treat the CU set as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuDescriptor {
    /// The unit's identifier (also its registry slot).
    pub cu: CuId,
    /// Depth of the size-level ladder (levels `0..levels` are selectable;
    /// level 0 is the largest).
    pub levels: u8,
    /// Minimum instructions between applied reconfigurations (the
    /// hardware guard interval of Section 3.4).
    pub reconfig_interval: u64,
    /// Smallest average hotspot invocation size this unit is worth
    /// adapting for — the grain the hotspot manager bins against (the
    /// paper's size-class rule ties it to the reconfiguration interval).
    pub min_hotspot_instr: u64,
    /// What an applied reconfiguration does to unit state.
    pub flush: FlushSemantics,
}

impl CuDescriptor {
    /// Descriptor with the default full [`NUM_SIZE_LEVELS`] ladder.
    pub fn new(
        cu: CuId,
        reconfig_interval: u64,
        min_hotspot_instr: u64,
        flush: FlushSemantics,
    ) -> CuDescriptor {
        CuDescriptor {
            cu,
            levels: NUM_SIZE_LEVELS as u8,
            reconfig_interval,
            min_hotspot_instr,
            flush,
        }
    }
}

/// The set of configurable units a machine exposes.
///
/// Slots are indexed by [`CuId`]; an empty slot means the hardware has no
/// such unit (requests against it are ignored, like writing a reserved
/// control register).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CuRegistry {
    slots: [Option<CuDescriptor>; MAX_CUS],
}

impl CuRegistry {
    /// An empty registry.
    pub fn new() -> CuRegistry {
        CuRegistry::default()
    }

    /// Registers (or replaces) a unit's descriptor.
    pub fn register(&mut self, desc: CuDescriptor) {
        self.slots[desc.cu.index()] = Some(desc);
    }

    /// The descriptor of `cu`, if registered.
    pub fn get(&self, cu: CuId) -> Option<&CuDescriptor> {
        self.slots[cu.index()].as_ref()
    }

    /// `true` if `cu` is registered.
    pub fn contains(&self, cu: CuId) -> bool {
        self.slots[cu.index()].is_some()
    }

    /// Number of registered units.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` if no unit is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Registered descriptors in [`CuId`] order.
    pub fn iter(&self) -> impl Iterator<Item = &CuDescriptor> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Registered identifiers in [`CuId`] order.
    pub fn ids(&self) -> impl Iterator<Item = CuId> + '_ {
        self.iter().map(|d| d.cu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for cu in CuId::ALL {
            assert_eq!(CuId::from_name(cu.name()), Some(cu));
            assert_eq!(CuId::from_index(cu.index()), Some(cu));
        }
        assert_eq!(CuId::from_name("l3"), None);
        assert_eq!(CuId::from_index(MAX_CUS), None);
    }

    #[test]
    fn serde_matches_legacy_variant_strings() {
        // The telemetry JSONL fixtures pin these exact encodings.
        assert_eq!(serde_json::to_string(&CuId::Window).unwrap(), "\"Window\"");
        assert_eq!(serde_json::to_string(&CuId::L1d).unwrap(), "\"L1d\"");
        assert_eq!(serde_json::to_string(&CuId::L2).unwrap(), "\"L2\"");
        assert_eq!(serde_json::to_string(&CuId::Dtlb).unwrap(), "\"Dtlb\"");
        let back: CuId = serde_json::from_str("\"L1d\"").unwrap();
        assert_eq!(back, CuId::L1d);
        assert!(serde_json::from_str::<CuId>("\"Rob\"").is_err());
    }

    #[test]
    fn const_patterns_still_match() {
        // `CuKind::L1d`-style spellings must keep working in match arms.
        let cu = CuId::L1d;
        let label = match cu {
            CuId::Window => "w",
            CuId::L1d => "d",
            _ => "other",
        };
        assert_eq!(label, "d");
    }

    #[test]
    fn registry_slots() {
        let mut r = CuRegistry::new();
        assert!(r.is_empty());
        r.register(CuDescriptor::new(
            CuId::L1d,
            100_000,
            50_000,
            FlushSemantics::WritebackDirty,
        ));
        r.register(CuDescriptor::new(
            CuId::Dtlb,
            10_000,
            10_000,
            FlushSemantics::InvalidateAll,
        ));
        assert_eq!(r.len(), 2);
        assert!(r.contains(CuId::Dtlb));
        assert!(!r.contains(CuId::L2));
        assert_eq!(r.get(CuId::L1d).unwrap().reconfig_interval, 100_000);
        let ids: Vec<CuId> = r.ids().collect();
        assert_eq!(ids, vec![CuId::L1d, CuId::Dtlb]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(CuId::Window.to_string(), "WIN");
        assert_eq!(CuId::Dtlb.to_string(), "DTLB");
        assert_eq!(format!("{:?}", CuId::Dtlb), "Dtlb");
    }
}
