//! Data TLB model.
//!
//! Table 2 specifies a 128-entry fully associative DTLB. True full
//! associativity with exact LRU costs a 128-entry scan per reference; we
//! model it as 16-way set-associative (8 sets of 16), which behaves within
//! noise of fully associative for the page-granular streams the workloads
//! produce while keeping the hot loop cheap. Misses charge a fixed
//! software-walk penalty.
//!
//! Like [`crate::Cache`], entry state is stored struct-of-arrays — a
//! packed `u64` per entry (`page << 1 | valid`) plus a recency-rank byte
//! per entry (0 = MRU, `ways - 1` = LRU) — and the most recently
//! translated page is memoized so the page-granular locality of the
//! workload streams (every line of a 4 KB page translates to the same
//! entry) skips the probe loop entirely. Replacement is bit-for-bit
//! identical to the previous timestamp-based implementation: true per-set
//! LRU with invalid ways (lowest index first) preferred as victims.

use crate::cache::FlushReport;
use crate::config::{SizeLevel, NUM_SIZE_LEVELS};
use serde::{Deserialize, Serialize};

/// Associativity used to approximate the fully associative DTLB.
const TLB_WAYS: u32 = 16;

/// `meta` bit 0: the entry holds a valid page number.
const VALID: u64 = 1;
/// `mru_key` value meaning "no memoized page" (a real key has VALID set).
const NO_MRU: u64 = 0;

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Total translations requested.
    pub accesses: u64,
    /// Translations that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio, or 0.0 when idle.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Counter difference `self - earlier`.
    ///
    /// Shares the snapshot-order contract of
    /// [`crate::MachineCounters::delta_since`]: debug builds panic on
    /// swapped snapshots, release builds wrap.
    pub fn delta_since(&self, earlier: &TlbStats) -> TlbStats {
        debug_assert!(
            self.accesses >= earlier.accesses && self.misses >= earlier.misses,
            "snapshot order reversed"
        );
        TlbStats {
            accesses: self.accesses.wrapping_sub(earlier.accesses),
            misses: self.misses.wrapping_sub(earlier.misses),
        }
    }
}

/// A set-associative TLB with LRU replacement.
///
/// # Examples
///
/// ```
/// use ace_sim::Tlb;
/// let mut tlb = Tlb::new(128, 4096);
/// assert!(!tlb.translate(0x1234)); // cold miss
/// assert!(tlb.translate(0x1ff0));  // same 4 KB page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Packed per-entry metadata: `page << 1 | valid`.
    pub(crate) meta: Vec<u64>,
    /// Per-entry LRU rank; a permutation of `0..ways` within each set.
    pub(crate) rank: Vec<u8>,
    /// Memoized key (`page << 1 | VALID`) of the last translation.
    pub(crate) mru_key: u64,
    pub(crate) sets: u32,
    pub(crate) page_shift: u32,
    stats: TlbStats,
    /// Set count at the largest (baseline) size level.
    base_sets: u32,
    /// Current size level (level `k` powers `base_sets >> k` sets).
    level: SizeLevel,
    /// Totals settled per level at past resizes; the current level's
    /// share since the last resize lives only in `stats` (settled lazily
    /// so the translate hot path never pays for per-level attribution).
    level_stats: [TlbStats; NUM_SIZE_LEVELS],
    /// Snapshot of `stats` at the last resize (the settling mark).
    level_mark: TlbStats,
    /// Applied resizes, per level left.
    resizes: [u64; NUM_SIZE_LEVELS],
}

impl Tlb {
    /// Creates a TLB with `entries` slots over `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 16 with a
    /// power-of-two set count, or if `page_bytes` is not a power of two.
    pub fn new(entries: u32, page_bytes: u64) -> Tlb {
        assert!(
            entries > 0 && entries.is_multiple_of(TLB_WAYS),
            "entries must be a multiple of 16"
        );
        let sets = entries / TLB_WAYS;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            meta: vec![0; entries as usize],
            rank: (0..entries).map(|i| (i % TLB_WAYS) as u8).collect(),
            mru_key: NO_MRU,
            sets,
            page_shift: page_bytes.trailing_zeros(),
            stats: TlbStats::default(),
            base_sets: sets,
            level: SizeLevel::LARGEST,
            level_stats: [TlbStats::default(); NUM_SIZE_LEVELS],
            level_mark: TlbStats::default(),
            resizes: [0; NUM_SIZE_LEVELS],
        }
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Current size level (the control register value when the TLB is a
    /// configurable unit).
    pub fn level(&self) -> SizeLevel {
        self.level
    }

    /// `true` if the geometry supports all [`NUM_SIZE_LEVELS`] levels
    /// (at least one set remains at the smallest level).
    pub fn supports_all_levels(&self) -> bool {
        (self.base_sets >> (NUM_SIZE_LEVELS - 1)) > 0
    }

    /// Per-level statistics, with the unsettled share since the last
    /// resize attributed to the current level on read.
    pub fn level_stats(&self) -> [TlbStats; NUM_SIZE_LEVELS] {
        let mut out = self.level_stats;
        let pending = self.stats.delta_since(&self.level_mark);
        let k = self.level.index();
        out[k].accesses += pending.accesses;
        out[k].misses += pending.misses;
        out
    }

    /// Applied resizes per level left.
    pub fn resizes(&self) -> &[u64; NUM_SIZE_LEVELS] {
        &self.resizes
    }

    /// Resizes to `level`, invalidating every entry (entries refill on
    /// demand, paying the miss penalty naturally — a TLB flush writes
    /// nothing back). Returns the flush report; `valid_lines` counts the
    /// entries that were resident.
    pub fn resize(&mut self, level: SizeLevel) -> FlushReport {
        let old = self.level.index();
        // Settle the running totals into the level that accumulated them.
        let pending = self.stats.delta_since(&self.level_mark);
        self.level_stats[old].accesses += pending.accesses;
        self.level_stats[old].misses += pending.misses;
        self.level_mark = self.stats;
        self.resizes[old] += 1;
        let valid = self.meta.iter().filter(|&&m| m & VALID != 0).count() as u64;
        self.meta.fill(0);
        for (i, r) in self.rank.iter_mut().enumerate() {
            *r = (i % TLB_WAYS as usize) as u8;
        }
        self.mru_key = NO_MRU;
        self.level = level;
        self.sets = self.base_sets >> level.index();
        debug_assert!(self.sets > 0, "TLB resized below one set");
        FlushReport {
            dirty_lines: 0,
            valid_lines: valid,
        }
    }

    /// Translates `addr`, returning `true` on a TLB hit.
    #[inline]
    pub fn translate(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        self.translate_uncounted(addr)
    }

    /// [`Tlb::translate`] without the per-reference access counter update.
    /// The block loop adds the block's reference count in one
    /// [`Tlb::bulk_count`] — per-level attribution is already lazy (it
    /// settles totals only at resize boundaries, which happen between
    /// blocks), so bulk counting leaves every observable statistic
    /// byte-identical. Misses are still counted here.
    #[inline]
    pub(crate) fn translate_uncounted(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        debug_assert!(page < 1 << 63, "page number too wide to pack");
        let key = (page << 1) | VALID;
        // Same page as the previous translation: already resident and MRU.
        if key == self.mru_key {
            return true;
        }
        let set = (page as u32) & (self.sets - 1);
        let base = (set * TLB_WAYS) as usize;
        let ways = TLB_WAYS as usize;
        let mut hit_way = usize::MAX;
        for (w, &m) in self.meta[base..base + ways].iter().enumerate() {
            if m == key {
                hit_way = w;
                break;
            }
        }
        if hit_way != usize::MAX {
            self.promote(base, hit_way);
            self.mru_key = key;
            return true;
        }
        self.miss(key, base)
    }

    /// Adds a block's worth of translation counts. Pairs with
    /// [`Tlb::translate_uncounted`].
    #[inline]
    pub(crate) fn bulk_count(&mut self, accesses: u64) {
        self.stats.accesses += accesses;
    }

    /// Makes way `way` of the set starting at `base` the MRU entry.
    #[inline]
    fn promote(&mut self, base: usize, way: usize) {
        let r = self.rank[base + way];
        if r != 0 {
            for x in &mut self.rank[base..base + TLB_WAYS as usize] {
                *x += (*x < r) as u8;
            }
            self.rank[base + way] = 0;
        }
    }

    /// Miss path: refills the first invalid way, else the LRU entry.
    #[cold]
    #[inline(never)]
    fn miss(&mut self, key: u64, base: usize) -> bool {
        self.stats.misses += 1;
        let ways = TLB_WAYS as usize;
        let mut victim = usize::MAX;
        for (w, &m) in self.meta[base..base + ways].iter().enumerate() {
            if m & VALID == 0 {
                victim = w;
                break;
            }
        }
        if victim == usize::MAX {
            let lru = (ways - 1) as u8;
            victim = self.rank[base..base + ways]
                .iter()
                .position(|&r| r == lru)
                .expect("ranks form a permutation");
        }
        self.meta[base + victim] = key;
        self.promote(base, victim);
        self.mru_key = key;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut t = Tlb::new(128, 4096);
        assert!(!t.translate(0));
        assert!(t.translate(4095));
        assert!(!t.translate(4096));
        assert_eq!(t.stats().accesses, 3);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn capacity_eviction() {
        let mut t = Tlb::new(128, 4096);
        // Touch 256 distinct pages twice: second round must still miss
        // heavily because only 128 fit.
        for round in 0..2 {
            for p in 0..256u64 {
                t.translate(p * 4096);
            }
            if round == 0 {
                assert_eq!(t.stats().misses, 256);
            }
        }
        assert!(t.stats().misses > 256 + 200, "second round mostly misses");
    }

    #[test]
    fn small_working_set_stays_resident() {
        let mut t = Tlb::new(128, 4096);
        for _ in 0..4 {
            for p in 0..64u64 {
                t.translate(p * 4096);
            }
        }
        assert_eq!(t.stats().misses, 64, "64 pages fit in 128 entries");
    }

    #[test]
    fn repeated_page_served_by_memo_still_counts_accesses() {
        let mut t = Tlb::new(128, 4096);
        assert!(!t.translate(0x1000));
        for off in 0..8u64 {
            assert!(t.translate(0x1000 + off * 64));
        }
        assert_eq!(t.stats().accesses, 9);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn delta_since() {
        let mut t = Tlb::new(128, 4096);
        t.translate(0);
        let snap = *t.stats();
        t.translate(0);
        t.translate(1 << 20);
        let d = t.stats().delta_since(&snap);
        assert_eq!(d.accesses, 2);
        assert_eq!(d.misses, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "snapshot order reversed")]
    fn delta_since_rejects_swapped_snapshots_in_debug() {
        let mut t = Tlb::new(128, 4096);
        let earlier = *t.stats();
        t.translate(0);
        let later = *t.stats();
        let _ = earlier.delta_since(&later);
    }

    #[test]
    fn resize_invalidates_and_shrinks_reach() {
        let mut t = Tlb::new(128, 4096);
        for p in 0..64u64 {
            t.translate(p * 4096);
        }
        let report = t.resize(SizeLevel::SMALLEST);
        assert_eq!(report.valid_lines, 64, "64 resident entries flushed");
        assert_eq!(report.dirty_lines, 0, "a TLB flush writes nothing back");
        assert_eq!(t.level(), SizeLevel::SMALLEST);
        // After the flush everything misses again; at 16 entries a
        // 64-page working set now thrashes.
        let before = *t.stats();
        for _ in 0..3 {
            for p in 0..64u64 {
                t.translate(p * 4096);
            }
        }
        let d = t.stats().delta_since(&before);
        assert!(
            d.misses > 150,
            "64 pages cannot stay resident in 16 entries: {} misses",
            d.misses
        );
    }

    #[test]
    fn level_stats_settle_lazily() {
        let mut t = Tlb::new(128, 4096);
        t.translate(0);
        t.translate(4096);
        // Unsettled share is attributed to the current level on read.
        assert_eq!(t.level_stats()[0].accesses, 2);
        assert_eq!(t.level_stats()[0].misses, 2);
        t.resize(SizeLevel::new(2).unwrap());
        t.translate(0);
        let ls = t.level_stats();
        assert_eq!(ls[0].accesses, 2, "pre-resize share settled at level 0");
        assert_eq!(ls[2].accesses, 1);
        assert_eq!(ls[2].misses, 1);
        assert_eq!(t.resizes()[0], 1);
        // Totals are unchanged by attribution.
        assert_eq!(t.stats().accesses, 3);
    }

    #[test]
    fn four_level_ladder_supported_at_128_entries() {
        let t = Tlb::new(128, 4096);
        assert!(t.supports_all_levels());
        let small = Tlb::new(64, 4096);
        assert!(!small.supports_all_levels());
    }
}
