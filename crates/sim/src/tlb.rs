//! Data TLB model.
//!
//! Table 2 specifies a 128-entry fully associative DTLB. True full
//! associativity with exact LRU costs a 128-entry scan per reference; we
//! model it as 16-way set-associative (8 sets of 16), which behaves within
//! noise of fully associative for the page-granular streams the workloads
//! produce while keeping the hot loop cheap. Misses charge a fixed
//! software-walk penalty.

use serde::{Deserialize, Serialize};

/// Associativity used to approximate the fully associative DTLB.
const TLB_WAYS: u32 = 16;

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Total translations requested.
    pub accesses: u64,
    /// Translations that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio, or 0.0 when idle.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Counter difference `self - earlier`.
    pub fn delta_since(&self, earlier: &TlbStats) -> TlbStats {
        TlbStats {
            accesses: self.accesses - earlier.accesses,
            misses: self.misses - earlier.misses,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    page: u64,
    lru: u64,
    valid: bool,
}

/// A set-associative TLB with LRU replacement.
///
/// # Examples
///
/// ```
/// use ace_sim::Tlb;
/// let mut tlb = Tlb::new(128, 4096);
/// assert!(!tlb.translate(0x1234)); // cold miss
/// assert!(tlb.translate(0x1ff0));  // same 4 KB page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Entry>,
    sets: u32,
    page_shift: u32,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` slots over `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 16 with a
    /// power-of-two set count, or if `page_bytes` is not a power of two.
    pub fn new(entries: u32, page_bytes: u64) -> Tlb {
        assert!(
            entries > 0 && entries.is_multiple_of(TLB_WAYS),
            "entries must be a multiple of 16"
        );
        let sets = entries / TLB_WAYS;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: vec![Entry::default(); entries as usize],
            sets,
            page_shift: page_bytes.trailing_zeros(),
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Translates `addr`, returning `true` on a TLB hit.
    pub fn translate(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        self.tick += 1;
        let page = addr >> self.page_shift;
        let set = (page as u32) & (self.sets - 1);
        let base = (set * TLB_WAYS) as usize;
        let slots = &mut self.entries[base..base + TLB_WAYS as usize];
        for e in slots.iter_mut() {
            if e.valid && e.page == page {
                e.lru = self.tick;
                return true;
            }
        }
        self.stats.misses += 1;
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for (i, e) in slots.iter().enumerate() {
            if !e.valid {
                victim = i;
                break;
            }
            if e.lru < best {
                best = e.lru;
                victim = i;
            }
        }
        slots[victim] = Entry {
            page,
            lru: self.tick,
            valid: true,
        };
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut t = Tlb::new(128, 4096);
        assert!(!t.translate(0));
        assert!(t.translate(4095));
        assert!(!t.translate(4096));
        assert_eq!(t.stats().accesses, 3);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn capacity_eviction() {
        let mut t = Tlb::new(128, 4096);
        // Touch 256 distinct pages twice: second round must still miss
        // heavily because only 128 fit.
        for round in 0..2 {
            for p in 0..256u64 {
                t.translate(p * 4096);
            }
            if round == 0 {
                assert_eq!(t.stats().misses, 256);
            }
        }
        assert!(t.stats().misses > 256 + 200, "second round mostly misses");
    }

    #[test]
    fn small_working_set_stays_resident() {
        let mut t = Tlb::new(128, 4096);
        for _ in 0..4 {
            for p in 0..64u64 {
                t.translate(p * 4096);
            }
        }
        assert_eq!(t.stats().misses, 64, "64 pages fit in 128 entries");
    }

    #[test]
    fn delta_since() {
        let mut t = Tlb::new(128, 4096);
        t.translate(0);
        let snap = *t.stats();
        t.translate(0);
        t.translate(1 << 20);
        let d = t.stats().delta_since(&snap);
        assert_eq!(d.accesses, 2);
        assert_eq!(d.misses, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_bad_entry_count() {
        let _ = Tlb::new(100, 4096);
    }
}
