//! # ace-sim — the simulated adaptive hardware platform
//!
//! A block-level superscalar CPU and reconfigurable memory-hierarchy timing
//! simulator, standing in for Dynamic SimpleScalar in the reproduction of
//! *Effective Adaptive Computing Environment Management via Dynamic
//! Optimization* (CGO 2005).
//!
//! The simulator consumes a stream of dynamic basic blocks
//! ([`Block`]/[`BlockSource`]) and models:
//!
//! * a 4-wide pipeline with a 2K-entry combined branch predictor,
//! * split 64 KB L1 caches, a unified 1 MB L2, and a 128-entry DTLB
//!   (Table 2 of the paper),
//! * **size-configurable** L1D and L2 caches — the two configurable units of
//!   the evaluated adaptive computing environment — including the hardware
//!   control registers and reconfiguration-interval guard counters of
//!   Section 3.4,
//! * per-size-level event counters so a power model can price every access
//!   at the energy of the configuration it actually ran under.
//!
//! ## Quick start
//!
//! ```
//! use ace_sim::{Machine, MachineConfig, Block, MemAccess, CuKind, SizeLevel};
//!
//! let mut m = Machine::new(MachineConfig::table2())?;
//! let block = Block {
//!     pc: 0x400,
//!     ninstr: 32,
//!     accesses: vec![MemAccess::load(0x8000), MemAccess::store(0x8040)],
//!     branch: None,
//! };
//! for _ in 0..1000 {
//!     m.exec_block(&block);
//! }
//! // Ask the ACE hardware to shrink the L1D to 32 KB.
//! let outcome = m.request_resize(CuKind::L1d, SizeLevel::new(1).unwrap());
//! assert!(outcome.in_effect());
//! # Ok::<(), ace_sim::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod branch;
mod cache;
mod config;
mod cu;
mod machine;
mod stats;
mod tlb;
mod trace;
mod trace_io;

pub use batch::{MachineBatch, MAX_LANES};
pub use branch::{BranchPredictor, BranchStats};
pub use cache::{AccessOutcome, Cache, CacheStats, FlushReport};
pub use config::{CacheGeometry, ConfigError, MachineConfig, SizeLevel, NUM_SIZE_LEVELS};
pub use cu::{CuDescriptor, CuId, CuKind, CuRegistry, FlushSemantics, MAX_CUS};
pub use machine::{Machine, MachineCounters, ReconfigOutcome};
pub use stats::OnlineStats;
pub use tlb::{Tlb, TlbStats};
pub use trace::{Block, BlockSource, BranchEvent, MemAccess, SliceSource};
pub use trace_io::{record_trace, TraceFormatError, TraceReader, TraceWriter};
