//! Trace recording and replay.
//!
//! The original infrastructure was trace/execution-driven SimpleScalar;
//! this module provides the equivalent capture-and-replay workflow for the
//! block-stream model: record any [`BlockSource`] into a compact binary
//! trace, then replay it as a `BlockSource` — for sharing inputs between
//! experiments, regression-pinning a workload, or driving the simulator
//! from externally produced traces.
//!
//! # Format
//!
//! Little-endian, magic `ACET`, version 1. Each record:
//!
//! ```text
//! u8  tag              0xB1 = block, 0x00 = end of trace
//! u64 pc
//! u32 ninstr
//! u8  branch flags     bit0 = has branch, bit1 = taken
//! u64 branch pc        (only when bit0 set)
//! u32 access count
//! per access: u64 addr, u8 is_store
//! ```

use crate::trace::{Block, BlockSource, BranchEvent, MemAccess};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"ACET";
const VERSION: u32 = 1;
const TAG_BLOCK: u8 = 0xB1;
const TAG_END: u8 = 0x00;

/// Error returned when decoding a malformed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFormatError {
    msg: &'static str,
}

impl TraceFormatError {
    fn new(msg: &'static str) -> TraceFormatError {
        TraceFormatError { msg }
    }
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed trace: {}", self.msg)
    }
}

impl std::error::Error for TraceFormatError {}

/// Incremental trace encoder.
///
/// # Examples
///
/// ```
/// use ace_sim::{Block, TraceWriter, TraceReader, BlockSource};
///
/// let mut w = TraceWriter::new();
/// w.push(&Block { pc: 0x400, ninstr: 12, ..Block::default() });
/// let bytes = w.finish();
///
/// let mut r = TraceReader::new(bytes)?;
/// let mut buf = Block::default();
/// assert!(r.next_block(&mut buf));
/// assert_eq!(buf.pc, 0x400);
/// assert!(!r.next_block(&mut buf));
/// # Ok::<(), ace_sim::TraceFormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceWriter {
    buf: BytesMut,
    blocks: u64,
    instructions: u64,
}

impl TraceWriter {
    /// Starts a new trace.
    pub fn new() -> TraceWriter {
        let mut buf = BytesMut::with_capacity(64 * 1024);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        TraceWriter {
            buf,
            blocks: 0,
            instructions: 0,
        }
    }

    /// Appends one block.
    pub fn push(&mut self, block: &Block) {
        self.blocks += 1;
        self.instructions += block.ninstr as u64;
        self.buf.put_u8(TAG_BLOCK);
        self.buf.put_u64_le(block.pc);
        self.buf.put_u32_le(block.ninstr);
        match block.branch {
            Some(br) => {
                self.buf.put_u8(1 | ((br.taken as u8) << 1));
                self.buf.put_u64_le(br.pc);
            }
            None => self.buf.put_u8(0),
        }
        self.buf.put_u32_le(block.accesses.len() as u32);
        for a in &block.accesses {
            self.buf.put_u64_le(a.addr);
            self.buf.put_u8(a.is_store as u8);
        }
    }

    /// Blocks recorded so far.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Instructions recorded so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Seals the trace and returns the encoded bytes.
    pub fn finish(mut self) -> Bytes {
        self.buf.put_u8(TAG_END);
        self.buf.freeze()
    }
}

impl Default for TraceWriter {
    fn default() -> Self {
        TraceWriter::new()
    }
}

/// Records up to `limit` instructions from `source` into a trace.
pub fn record_trace<S: BlockSource>(source: &mut S, limit: u64) -> Bytes {
    let mut writer = TraceWriter::new();
    let mut buf = Block::with_capacity(64);
    while writer.instructions() < limit && source.next_block(&mut buf) {
        writer.push(&buf);
    }
    writer.finish()
}

/// Replays an encoded trace as a [`BlockSource`].
#[derive(Debug, Clone)]
pub struct TraceReader {
    data: Bytes,
    finished: bool,
}

impl TraceReader {
    /// Opens a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFormatError`] if the magic or version is wrong.
    pub fn new(data: Bytes) -> Result<TraceReader, TraceFormatError> {
        let mut data = data;
        if data.remaining() < 8 {
            return Err(TraceFormatError::new("truncated header"));
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(TraceFormatError::new("bad magic"));
        }
        if data.get_u32_le() != VERSION {
            return Err(TraceFormatError::new("unsupported version"));
        }
        Ok(TraceReader {
            data,
            finished: false,
        })
    }

    /// Decodes the next block into `out`; `Ok(false)` at end of trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFormatError`] on a truncated or corrupt record.
    pub fn try_next(&mut self, out: &mut Block) -> Result<bool, TraceFormatError> {
        out.reset();
        if self.finished {
            return Ok(false);
        }
        if self.data.remaining() < 1 {
            return Err(TraceFormatError::new("missing end marker"));
        }
        match self.data.get_u8() {
            TAG_END => {
                self.finished = true;
                Ok(false)
            }
            TAG_BLOCK => {
                if self.data.remaining() < 13 {
                    return Err(TraceFormatError::new("truncated block header"));
                }
                out.pc = self.data.get_u64_le();
                out.ninstr = self.data.get_u32_le();
                let flags = self.data.get_u8();
                if flags & 1 != 0 {
                    if self.data.remaining() < 8 {
                        return Err(TraceFormatError::new("truncated branch"));
                    }
                    out.branch = Some(BranchEvent {
                        pc: self.data.get_u64_le(),
                        taken: flags & 2 != 0,
                    });
                }
                if self.data.remaining() < 4 {
                    return Err(TraceFormatError::new("truncated access count"));
                }
                let n = self.data.get_u32_le() as usize;
                if self.data.remaining() < n * 9 {
                    return Err(TraceFormatError::new("truncated accesses"));
                }
                out.accesses.reserve(n);
                for _ in 0..n {
                    let addr = self.data.get_u64_le();
                    let is_store = self.data.get_u8() != 0;
                    out.accesses.push(MemAccess { addr, is_store });
                }
                Ok(true)
            }
            _ => Err(TraceFormatError::new("unknown record tag")),
        }
    }
}

impl BlockSource for TraceReader {
    /// Replays the next block; a corrupt tail ends the stream (use
    /// [`TraceReader::try_next`] to observe decode errors).
    fn next_block(&mut self, out: &mut Block) -> bool {
        self.try_next(out).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SliceSource;

    fn sample_blocks() -> Vec<Block> {
        vec![
            Block {
                pc: 0x400,
                ninstr: 32,
                accesses: vec![MemAccess::load(0x1000), MemAccess::store(0x1040)],
                branch: Some(BranchEvent {
                    pc: 0x47c,
                    taken: true,
                }),
            },
            Block {
                pc: 0x500,
                ninstr: 7,
                accesses: vec![],
                branch: None,
            },
            Block {
                pc: 0x600,
                ninstr: 90,
                accesses: (0..20).map(|i| MemAccess::load(0x2000 + i * 8)).collect(),
                branch: Some(BranchEvent {
                    pc: 0x6f0,
                    taken: false,
                }),
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_blocks() {
        let blocks = sample_blocks();
        let mut writer = TraceWriter::new();
        for b in &blocks {
            writer.push(b);
        }
        assert_eq!(writer.blocks(), 3);
        assert_eq!(writer.instructions(), 32 + 7 + 90);
        let bytes = writer.finish();

        let mut reader = TraceReader::new(bytes).unwrap();
        let mut buf = Block::default();
        for expect in &blocks {
            assert!(reader.next_block(&mut buf));
            assert_eq!(&buf, expect);
        }
        assert!(!reader.next_block(&mut buf));
        assert!(!reader.next_block(&mut buf), "stays finished");
    }

    #[test]
    fn record_trace_respects_limit() {
        let blocks = vec![
            Block {
                pc: 1,
                ninstr: 40,
                ..Block::default()
            };
            100
        ];
        let mut src = SliceSource::new(&blocks);
        let trace = record_trace(&mut src, 200);
        let mut reader = TraceReader::new(trace).unwrap();
        let mut buf = Block::default();
        let mut total = 0u64;
        while reader.next_block(&mut buf) {
            total += buf.ninstr as u64;
        }
        assert!((200..=240).contains(&total), "recorded {total}");
    }

    #[test]
    fn rejects_bad_magic() {
        let err = TraceReader::new(Bytes::from_static(b"NOPE\x01\x00\x00\x00")).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncation() {
        let blocks = sample_blocks();
        let mut writer = TraceWriter::new();
        for b in &blocks {
            writer.push(b);
        }
        let bytes = writer.finish();
        // Chop mid-stream: decode reports the error via try_next.
        let cut = bytes.slice(0..bytes.len() - 10);
        let mut reader = TraceReader::new(cut).unwrap();
        let mut buf = Block::default();
        let mut result = Ok(true);
        while matches!(result, Ok(true)) {
            result = reader.try_next(&mut buf);
        }
        assert!(result.is_err(), "truncation must surface as an error");
    }

    #[test]
    fn replay_drives_machine_identically() {
        use crate::{Machine, MachineConfig};
        let blocks = sample_blocks();

        let mut live = Machine::new(MachineConfig::table2()).unwrap();
        for b in &blocks {
            live.exec_block(b);
        }

        let mut writer = TraceWriter::new();
        for b in &blocks {
            writer.push(b);
        }
        let mut reader = TraceReader::new(writer.finish()).unwrap();
        let mut replayed = Machine::new(MachineConfig::table2()).unwrap();
        let mut buf = Block::default();
        while reader.next_block(&mut buf) {
            replayed.exec_block(&buf);
        }
        assert_eq!(live.counters(), replayed.counters());
    }
}
