//! Combined branch predictor (Table 2: 2K-entry combined predictor,
//! 3-cycle misprediction penalty).
//!
//! The combined predictor pairs a bimodal table with a gshare table and a
//! chooser of 2-bit counters, in the style of the Alpha 21264 / SimpleScalar
//! `comb` predictor. All three tables have the configured entry count.

use serde::{Deserialize, Serialize};

/// Branch predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub branches: u64,
    /// Branches whose prediction was wrong.
    pub mispredicts: u64,
}

impl BranchStats {
    /// Misprediction ratio, or 0.0 when idle.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Counter difference `self - earlier`.
    ///
    /// Shares the snapshot-order contract of
    /// [`crate::MachineCounters::delta_since`]: debug builds panic on
    /// swapped snapshots, release builds wrap.
    pub fn delta_since(&self, earlier: &BranchStats) -> BranchStats {
        debug_assert!(
            self.branches >= earlier.branches && self.mispredicts >= earlier.mispredicts,
            "snapshot order reversed"
        );
        BranchStats {
            branches: self.branches.wrapping_sub(earlier.branches),
            mispredicts: self.mispredicts.wrapping_sub(earlier.mispredicts),
        }
    }
}

/// Saturating 2-bit counter helpers.
#[inline]
fn bump(counter: &mut u8, taken: bool) {
    if taken {
        if *counter < 3 {
            *counter += 1;
        }
    } else if *counter > 0 {
        *counter -= 1;
    }
}

#[inline]
fn predicts_taken(counter: u8) -> bool {
    counter >= 2
}

/// A bimodal + gshare combined predictor.
///
/// # Examples
///
/// ```
/// use ace_sim::BranchPredictor;
/// let mut bp = BranchPredictor::new(2048);
/// // A loop branch that is always taken becomes perfectly predicted.
/// for _ in 0..8 { bp.predict_and_update(0x400, true); }
/// assert!(bp.predict_and_update(0x400, true));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>,
    history: u32,
    mask: u32,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` slots per table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32) -> BranchPredictor {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        BranchPredictor {
            bimodal: vec![1; entries as usize], // weakly not-taken
            gshare: vec![1; entries as usize],
            chooser: vec![2; entries as usize], // weakly prefer gshare
            history: 0,
            mask: entries - 1,
            stats: BranchStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }

    /// Predicts the branch at `pc`, updates all tables with the actual
    /// `taken` outcome, and returns whether the prediction was **correct**.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.branches += 1;
        let bi_idx = ((pc >> 2) as u32 & self.mask) as usize;
        let gs_idx = (((pc >> 2) as u32 ^ self.history) & self.mask) as usize;

        let bi_pred = predicts_taken(self.bimodal[bi_idx]);
        let gs_pred = predicts_taken(self.gshare[gs_idx]);
        let use_gshare = predicts_taken(self.chooser[bi_idx]);
        let pred = if use_gshare { gs_pred } else { bi_pred };

        // Chooser trains toward whichever component was right.
        if bi_pred != gs_pred {
            bump(&mut self.chooser[bi_idx], gs_pred == taken);
        }
        bump(&mut self.bimodal[bi_idx], taken);
        bump(&mut self.gshare[gs_idx], taken);
        self.history = ((self.history << 1) | taken as u32) & 0xff;

        let correct = pred == taken;
        if !correct {
            self.stats.mispredicts += 1;
        }
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut bp = BranchPredictor::new(256);
        for _ in 0..16 {
            bp.predict_and_update(0x1000, true);
        }
        let before = bp.stats().mispredicts;
        for _ in 0..100 {
            bp.predict_and_update(0x1000, true);
        }
        assert_eq!(
            bp.stats().mispredicts,
            before,
            "steady branch never mispredicts"
        );
    }

    #[test]
    fn learns_alternating_pattern_via_gshare() {
        let mut bp = BranchPredictor::new(2048);
        let mut taken = false;
        for _ in 0..64 {
            taken = !taken;
            bp.predict_and_update(0x2000, taken);
        }
        let warm = bp.stats().mispredicts;
        for _ in 0..200 {
            taken = !taken;
            bp.predict_and_update(0x2000, taken);
        }
        let late = bp.stats().mispredicts - warm;
        assert!(
            late < 20,
            "gshare captures T/NT alternation, got {late} late misses"
        );
    }

    #[test]
    fn random_branch_mispredicts_heavily() {
        // A pseudo-random outcome stream should hover near 50% mispredicts.
        let mut bp = BranchPredictor::new(2048);
        let mut x = 0x12345678u64;
        let mut taken_count = 0u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 63) != 0;
            taken_count += taken as u64;
            bp.predict_and_update(0x3000, taken);
        }
        let ratio = bp.stats().mispredict_ratio();
        assert!((0.3..0.7).contains(&ratio), "ratio {ratio}");
        assert!((3000..7000).contains(&taken_count));
    }

    #[test]
    fn distinct_pcs_do_not_interfere_when_sparse() {
        let mut bp = BranchPredictor::new(2048);
        for i in 0..8u64 {
            let pc = 0x4000 + i * 4;
            for _ in 0..32 {
                bp.predict_and_update(pc, i % 2 == 0);
            }
        }
        let warm = bp.stats().mispredicts;
        for i in 0..8u64 {
            let pc = 0x4000 + i * 4;
            for _ in 0..32 {
                bp.predict_and_update(pc, i % 2 == 0);
            }
        }
        assert!(
            bp.stats().mispredicts - warm <= 8,
            "biased branches stay learned"
        );
    }

    #[test]
    fn stats_delta() {
        let mut bp = BranchPredictor::new(64);
        bp.predict_and_update(0, true);
        let snap = *bp.stats();
        bp.predict_and_update(0, true);
        bp.predict_and_update(0, true);
        assert_eq!(bp.stats().delta_since(&snap).branches, 2);
    }
}
