//! Small statistics utilities shared across the workspace: online
//! mean/variance (Welford) and coefficient-of-variation, used for the
//! per-phase and inter-phase IPC CoV columns of Table 5.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use ace_sim::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (divides by *n*), or 0.0 with fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation: stddev / |mean| (0.0 when the mean is 0).
    ///
    /// This is the statistic reported (as a percentage) in Table 5.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m.abs() < f64::EPSILON {
            0.0
        } else {
            self.population_stddev() / m.abs()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.cov(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_stddev(), 0.0);
        assert_eq!(s.cov(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn cov_matches_definition() {
        let mut s = OnlineStats::new();
        let xs = [1.0, 2.0, 3.0, 4.0];
        for x in xs {
            s.push(x);
        }
        let mean = 2.5;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 4.0;
        assert!((s.cov() - var.sqrt() / mean).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let b = OnlineStats::new();
        let before = a;
        a.merge(&b);
        assert_eq!(a, before);
        let mut c = OnlineStats::new();
        c.merge(&before);
        assert_eq!(c, before);
    }

    #[test]
    fn zero_mean_cov_is_zero() {
        let mut s = OnlineStats::new();
        s.push(-1.0);
        s.push(1.0);
        assert_eq!(s.cov(), 0.0);
    }
}
