//! The simulated machine: pipeline timing, memory hierarchy, and the
//! hardware support for adaptive computing (Section 3.4 of the paper).
//!
//! # Timing model
//!
//! Blocks retire at the issue width unless stalled. Stall sources:
//!
//! * branch mispredictions (fixed penalty),
//! * L1I misses (fetch stalls, fully exposed),
//! * data misses: the L2-hit portion scaled by `l2_hit_exposure_pct`
//!   (short fills hide almost completely under the 64-entry window) and
//!   the memory-latency portion by `miss_exposure_pct` (long fills expose
//!   more), with store misses further discounted because they drain
//!   through the write buffer,
//! * DTLB misses (software walk, fully exposed),
//! * reconfiguration flushes (dirty writebacks at a per-line cost).
//!
//! # Hardware support for adaptation
//!
//! Each configurable unit has a *control register* (its current
//! [`SizeLevel`]) and a *last-reconfiguration counter*. A reconfiguration
//! request arriving earlier than the unit's reconfiguration interval since
//! the previous applied change is ignored without modifying the
//! configuration — exactly the guard described in Section 3.4. This frees
//! the software framework from tracking minimum intervals itself.

use crate::branch::{BranchPredictor, BranchStats};
use crate::cache::{Cache, CacheStats, FlushReport};
use crate::config::{ConfigError, MachineConfig, SizeLevel, NUM_SIZE_LEVELS};
use crate::cu::{CuId, CuRegistry, MAX_CUS};
use crate::tlb::{Tlb, TlbStats};
use crate::trace::Block;
use serde::{Deserialize, Serialize};

/// Result of a reconfiguration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigOutcome {
    /// The control register was updated; the flush overhead was charged.
    Applied(FlushReport),
    /// The request arrived within the unit's reconfiguration interval and
    /// was ignored by the hardware guard.
    TooSoon {
        /// Instructions remaining until the guard reopens.
        remaining: u64,
    },
    /// The unit was already at the requested level; nothing happened.
    Unchanged,
}

impl ReconfigOutcome {
    /// `true` if the configuration now equals the requested one.
    pub fn in_effect(&self) -> bool {
        matches!(
            self,
            ReconfigOutcome::Applied(_) | ReconfigOutcome::Unchanged
        )
    }
}

/// A full snapshot of the machine's counters.
///
/// Cheap to clone; tuning code snapshots counters at hotspot entry and
/// subtracts at exit via [`MachineCounters::delta_since`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MachineCounters {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// L1 instruction cache statistics (level 0 only).
    pub l1i: CacheStats,
    /// L1 data cache statistics, per size level.
    pub l1d: CacheStats,
    /// L2 cache statistics, per size level.
    pub l2: CacheStats,
    /// DTLB statistics.
    pub dtlb: TlbStats,
    /// Branch predictor statistics.
    pub branch: BranchStats,
    /// Cycles spent while the L1D was at each size level (for leakage).
    pub l1d_cycles: [u64; NUM_SIZE_LEVELS],
    /// Cycles spent while the L2 was at each size level (for leakage).
    pub l2_cycles: [u64; NUM_SIZE_LEVELS],
    /// Cycles spent while the instruction window was at each level.
    #[serde(default)]
    pub window_cycles: [u64; NUM_SIZE_LEVELS],
    /// Instructions retired while the window was at each level (the
    /// per-instruction issue-energy accounting).
    #[serde(default)]
    pub window_instr: [u64; NUM_SIZE_LEVELS],
    /// Applied window reconfigurations, per level left.
    #[serde(default)]
    pub window_resizes: [u64; NUM_SIZE_LEVELS],
    /// DTLB translations while the DTLB was at each size level.
    #[serde(default)]
    pub dtlb_level_accesses: [u64; NUM_SIZE_LEVELS],
    /// DTLB misses while the DTLB was at each size level.
    #[serde(default)]
    pub dtlb_level_misses: [u64; NUM_SIZE_LEVELS],
    /// Cycles spent while the DTLB was at each size level.
    #[serde(default)]
    pub dtlb_cycles: [u64; NUM_SIZE_LEVELS],
    /// Applied DTLB reconfigurations, per level left.
    #[serde(default)]
    pub dtlb_resizes: [u64; NUM_SIZE_LEVELS],
    /// Reconfiguration requests rejected by the hardware interval guard.
    pub guard_rejections: u64,
}

impl MachineCounters {
    /// Counter difference `self - earlier`.
    ///
    /// # Snapshot-order contract
    ///
    /// `earlier` must be a snapshot taken no later than `self`; passing
    /// them in the wrong order is a caller bug. The whole `delta_since`
    /// family ([`CacheStats`], [`TlbStats`], [`BranchStats`], and this
    /// type) enforces one contract: debug builds panic with "snapshot
    /// order reversed", release builds wrap rather than aborting a
    /// long-running experiment on an accounting bug.
    pub fn delta_since(&self, earlier: &MachineCounters) -> MachineCounters {
        fn sub1(a: u64, b: u64) -> u64 {
            debug_assert!(a >= b, "snapshot order reversed");
            a.wrapping_sub(b)
        }
        fn sub4(a: &[u64; NUM_SIZE_LEVELS], b: &[u64; NUM_SIZE_LEVELS]) -> [u64; NUM_SIZE_LEVELS] {
            let mut out = [0; NUM_SIZE_LEVELS];
            for i in 0..NUM_SIZE_LEVELS {
                out[i] = sub1(a[i], b[i]);
            }
            out
        }
        MachineCounters {
            instret: sub1(self.instret, earlier.instret),
            cycles: sub1(self.cycles, earlier.cycles),
            l1i: self.l1i.delta_since(&earlier.l1i),
            l1d: self.l1d.delta_since(&earlier.l1d),
            l2: self.l2.delta_since(&earlier.l2),
            dtlb: self.dtlb.delta_since(&earlier.dtlb),
            branch: self.branch.delta_since(&earlier.branch),
            l1d_cycles: sub4(&self.l1d_cycles, &earlier.l1d_cycles),
            l2_cycles: sub4(&self.l2_cycles, &earlier.l2_cycles),
            window_cycles: sub4(&self.window_cycles, &earlier.window_cycles),
            window_instr: sub4(&self.window_instr, &earlier.window_instr),
            window_resizes: sub4(&self.window_resizes, &earlier.window_resizes),
            dtlb_level_accesses: sub4(&self.dtlb_level_accesses, &earlier.dtlb_level_accesses),
            dtlb_level_misses: sub4(&self.dtlb_level_misses, &earlier.dtlb_level_misses),
            dtlb_cycles: sub4(&self.dtlb_cycles, &earlier.dtlb_cycles),
            dtlb_resizes: sub4(&self.dtlb_resizes, &earlier.dtlb_resizes),
            guard_rejections: sub1(self.guard_rejections, earlier.guard_rejections),
        }
    }

    /// Instructions per cycle over this snapshot, or 0.0 if no cycles.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instret as f64 / self.cycles as f64
        }
    }
}

/// Per-reference penalty constants hoisted out of the data-reference
/// loop (see [`Machine::ref_consts`]): configuration-derived, invariant
/// for the duration of any block.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RefConsts {
    tlb_penalty: u64,
    l2_hit_milli: u64,
    mem_miss_milli: u64,
    store_pct: u64,
    line_shift: u32,
}

/// Per-block accumulator state of the data-reference loop. One lives on
/// the scalar stack in [`Machine::exec_block`]; the lane-batched path
/// keeps one per lane while stepping references across machines.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RefCursor {
    /// Previously referenced cache line (fused same-line fast path).
    prev_line: u64,
    /// Exposed data-stall milli-cycles accumulated so far.
    data_stall_milli: u64,
    /// Store references seen so far (bulk-counted at retire).
    nstores: u64,
}

impl RefCursor {
    #[inline]
    pub(crate) fn new() -> RefCursor {
        RefCursor {
            // No real line: addresses pack into 62 bits.
            prev_line: u64::MAX,
            data_stall_milli: 0,
            nstores: 0,
        }
    }
}

/// The simulated machine.
///
/// # Examples
///
/// ```
/// use ace_sim::{Machine, MachineConfig, Block, MemAccess};
/// let mut m = Machine::new(MachineConfig::table2())?;
/// let block = Block {
///     pc: 0x400,
///     ninstr: 16,
///     accesses: vec![MemAccess::load(0x1_0000)],
///     branch: None,
/// };
/// m.exec_block(&block);
/// assert_eq!(m.counters().instret, 16);
/// assert!(m.counters().cycles > 0);
/// # Ok::<(), ace_sim::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dtlb: Tlb,
    predictor: BranchPredictor,
    counters: MachineCounters,
    /// Fractional-issue accumulator (instructions not yet converted to cycles).
    issue_acc: u64,
    /// `log2(issue_width)` when the width is a power of two (it is in
    /// every shipped configuration), letting the per-block divide/modulo
    /// pair become a shift/mask.
    issue_shift: Option<u32>,
    /// Residual per-mille of exposed stall cycles not yet charged.
    stall_acc: u64,
    /// Current instruction-window level (the window's control register).
    window_level: SizeLevel,
    /// Instret at the last applied reconfiguration, per unit.
    last_reconfig: [Option<u64>; MAX_CUS],
    /// The configurable units this machine exposes.
    registry: CuRegistry,
}

impl Machine {
    /// Builds a machine from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cfg` fails validation.
    pub fn new(cfg: MachineConfig) -> Result<Machine, ConfigError> {
        cfg.validate()?;
        Ok(Machine {
            l1i: Cache::new(cfg.l1i)?,
            l1d: Cache::new(cfg.l1d)?,
            l2: Cache::new(cfg.l2)?,
            dtlb: Tlb::new(cfg.dtlb_entries, cfg.page_bytes),
            predictor: BranchPredictor::new(cfg.predictor_entries),
            counters: MachineCounters::default(),
            issue_acc: 0,
            issue_shift: cfg
                .issue_width
                .is_power_of_two()
                .then(|| cfg.issue_width.trailing_zeros()),
            stall_acc: 0,
            window_level: SizeLevel::LARGEST,
            last_reconfig: [None; MAX_CUS],
            registry: cfg.cu_registry(),
            cfg,
        })
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The configurable units this machine exposes.
    pub fn registry(&self) -> &CuRegistry {
        &self.registry
    }

    /// Current counter values.
    ///
    /// The machine's own counters (`instret`, `cycles`, per-level cycle
    /// attribution) are maintained directly by [`Machine::exec_block`];
    /// the sub-structure statistics (caches, DTLB, branch predictor) are
    /// copied into the snapshot here, on read, rather than after every
    /// block — readers sample counters thousands of times less often than
    /// blocks retire, so the hot loop never pays for the copy.
    pub fn counters(&mut self) -> &MachineCounters {
        self.sync_stats();
        &self.counters
    }

    /// Instructions retired so far.
    pub fn instret(&self) -> u64 {
        self.counters.instret
    }

    /// Cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.counters.cycles
    }

    /// Current size level of `cu` (the control register value).
    ///
    /// This is the one place a `CuId` meets the hardware structure it
    /// names; everything above the machine consumes the registry.
    pub fn level(&self, cu: CuId) -> SizeLevel {
        match cu {
            CuId::Window => self.window_level,
            CuId::L1d => self.l1d.level(),
            CuId::L2 => self.l2.level(),
            CuId::Dtlb => self.dtlb.level(),
            _ => SizeLevel::LARGEST,
        }
    }

    /// The reconfiguration interval of `cu` in instructions, from its
    /// registered descriptor (`u64::MAX` for an unregistered unit, whose
    /// guard therefore never reopens).
    pub fn reconfig_interval(&self, cu: CuId) -> u64 {
        self.registry
            .get(cu)
            .map_or(u64::MAX, |d| d.reconfig_interval)
    }

    /// Advances time by `cycles` without retiring instructions, attributing
    /// leakage time to the caches' current levels. Used to charge software
    /// overheads such as JIT compilation.
    pub fn add_overhead_cycles(&mut self, cycles: u64) {
        self.counters.cycles += cycles;
        self.counters.l1d_cycles[self.l1d.level().index()] += cycles;
        self.counters.l2_cycles[self.l2.level().index()] += cycles;
        self.counters.window_cycles[self.window_level.index()] += cycles;
        self.counters.dtlb_cycles[self.dtlb.level().index()] += cycles;
    }

    /// Executes one dynamic block, updating all structures and counters.
    ///
    /// This is the simulator's innermost loop — one call per ~50 retired
    /// instructions, one fused DTLB + L1D probe per data reference — so
    /// penalty constants, exposure factors, and level indices are hoisted
    /// out of the per-access loop; reconfiguration can only happen between
    /// blocks, so they are loop-invariant.
    ///
    /// The body is assembled from `pub(crate)` pieces (`fetch_stalls`,
    /// `data_ref`, `retire_block`), and the lane-batched path
    /// ([`crate::MachineBatch`]) executes exactly this function per
    /// (lane, block) — one implementation, two schedules — which is what
    /// makes batched and scalar stepping byte-identical by construction.
    pub fn exec_block(&mut self, block: &Block) {
        let mut stalls = self.fetch_stalls(block.pc);
        let consts = self.ref_consts();
        let mut cursor = RefCursor::new();
        for acc in &block.accesses {
            self.data_ref(&consts, acc.addr, acc.is_store, &mut stalls, &mut cursor);
        }
        self.retire_block(block, stalls, &cursor);
    }

    /// Instruction fetch: one L1I probe per block. Returns the fetch
    /// stall cycles (zero on an L1I hit).
    #[inline]
    pub(crate) fn fetch_stalls(&mut self, pc: u64) -> u64 {
        let i_out = self.l1i.access(pc, false);
        if i_out.hit {
            return 0;
        }
        let l2_out = self.l2.access(pc, false);
        let mut stalls = self.cfg.l2.hit_latency as u64;
        if !l2_out.hit {
            stalls += self.cfg.mem_latency as u64;
        }
        stalls
    }

    /// Hoists the per-reference penalty constants — they depend only on
    /// the configuration, and reconfiguration can only happen between
    /// blocks, so they are loop-invariant for any block.
    #[inline]
    pub(crate) fn ref_consts(&self) -> RefConsts {
        RefConsts {
            tlb_penalty: self.cfg.tlb_miss_penalty as u64,
            // Milli-cycles: latency * 1000 * exposure% / 100.
            l2_hit_milli: self.cfg.l2.hit_latency as u64 * self.cfg.l2_hit_exposure_pct as u64 * 10,
            mem_miss_milli: self.cfg.mem_latency as u64 * self.cfg.miss_exposure_pct as u64 * 10,
            store_pct: self.cfg.store_stall_pct as u64,
            line_shift: self.l1d.offset_bits,
        }
    }

    /// Processes one data reference: the fused DTLB + L1D probe.
    ///
    /// Access/store counts are accumulated in the cursor and added to the
    /// cache and TLB statistics in one bulk update per block by
    /// [`Machine::retire_block`] (levels only change between blocks, so
    /// attribution is identical); consecutive references to one cache
    /// line — the dominant pattern of strided walks — take a fused fast
    /// path: after any reference to address A both MRU memos point at A's
    /// line and page, so a same-line successor is a guaranteed hit whose
    /// probe, promotion, and translation are all the identity, leaving
    /// only the dirty-bit OR.
    #[inline]
    pub(crate) fn data_ref(
        &mut self,
        consts: &RefConsts,
        addr: u64,
        is_store: bool,
        stalls: &mut u64,
        cursor: &mut RefCursor,
    ) {
        cursor.nstores += is_store as u64;
        let line = addr >> consts.line_shift;
        if line == cursor.prev_line {
            self.l1d.mru_mark_dirty(is_store);
            return;
        }
        cursor.prev_line = line;
        let translated = self.dtlb.translate_uncounted(addr);
        *stalls += consts.tlb_penalty * (!translated) as u64;
        let out = self.l1d.access_uncounted(addr, is_store);
        if !out.hit {
            if let Some(wb) = out.writeback {
                // Dirty L1D eviction drains into the L2; an L2 dirty
                // eviction in turn goes to memory, stall-free
                // (buffered).
                let _ = self.l2.access(wb, true);
            }
            let fill = self.l2.access(addr, false);
            let mut penalty_milli = consts.l2_hit_milli;
            if !fill.hit {
                penalty_milli += consts.mem_miss_milli;
            }
            if is_store {
                penalty_milli = penalty_milli * consts.store_pct / 100;
            }
            cursor.data_stall_milli += penalty_milli;
        }
    }

    /// Retires a block whose data references have all been processed:
    /// bulk statistics update, window exposure scaling, branch
    /// resolution, issue bandwidth, and the counter tail.
    #[inline]
    pub(crate) fn retire_block(&mut self, block: &Block, mut stalls: u64, cursor: &RefCursor) {
        let nrefs = block.accesses.len() as u64;
        self.l1d.bulk_count(nrefs, cursor.nstores);
        self.dtlb.bulk_count(nrefs);
        // A smaller instruction window extracts less memory-level
        // parallelism: scale the exposed data stalls by the window level's
        // multiplier. Hit-dominated code is unaffected, which is what lets
        // small hotspots shrink the window for free.
        let win = self.window_level.index();
        let wf = self.cfg.window_exposure_permille[win] as u64;
        // Carry the sub-cycle residue so long runs are exact.
        let exposed = cursor.data_stall_milli * wf / 1000 + self.stall_acc;
        stalls += exposed / 1000;
        self.stall_acc = exposed % 1000;

        // Branch resolution.
        if let Some(br) = block.branch {
            if !self.predictor.predict_and_update(br.pc, br.taken) {
                stalls += self.cfg.mispredict_penalty as u64;
            }
        }

        // Base issue bandwidth.
        self.issue_acc += block.ninstr as u64;
        let base = match self.issue_shift {
            Some(sh) => {
                let b = self.issue_acc >> sh;
                self.issue_acc &= (1 << sh) - 1;
                b
            }
            None => {
                let b = self.issue_acc / self.cfg.issue_width as u64;
                self.issue_acc %= self.cfg.issue_width as u64;
                b
            }
        };

        self.counters.instret += block.ninstr as u64;
        self.counters.window_instr[win] += block.ninstr as u64;
        let delta = base + stalls;
        self.counters.cycles += delta;
        self.counters.l1d_cycles[self.l1d.level().index()] += delta;
        self.counters.l2_cycles[self.l2.level().index()] += delta;
        self.counters.window_cycles[win] += delta;
        self.counters.dtlb_cycles[self.dtlb.level().index()] += delta;
    }

    /// Copies sub-structure stats into the counters snapshot. Called on
    /// demand from [`Machine::counters`], never from the block loop.
    fn sync_stats(&mut self) {
        self.counters.l1i = *self.l1i.stats();
        self.counters.l1d = *self.l1d.stats();
        self.counters.l2 = *self.l2.stats();
        self.counters.dtlb = *self.dtlb.stats();
        self.counters.branch = *self.predictor.stats();
        let per_level = self.dtlb.level_stats();
        for (k, level) in per_level.iter().enumerate() {
            self.counters.dtlb_level_accesses[k] = level.accesses;
            self.counters.dtlb_level_misses[k] = level.misses;
        }
        self.counters.dtlb_resizes = *self.dtlb.resizes();
    }

    /// Requests that `cu`'s control register be set to `level`.
    ///
    /// The hardware guard ignores requests arriving within the unit's
    /// reconfiguration interval of the last applied change
    /// ([`ReconfigOutcome::TooSoon`]). An applied change flushes the cache:
    /// dirty lines are written back (L1D lines drain into the L2; L2 lines
    /// drain to memory) and the flush cycles are charged.
    pub fn request_resize(&mut self, cu: CuId, level: SizeLevel) -> ReconfigOutcome {
        if !self.registry.contains(cu) {
            // Hardware without this unit ignores the write, like a store
            // to a reserved control register.
            return ReconfigOutcome::Unchanged;
        }
        let now = self.counters.instret;
        let idx = cu.index();
        let current = self.level(cu);
        if current == level {
            return ReconfigOutcome::Unchanged;
        }
        if let Some(last) = self.last_reconfig[idx] {
            let interval = self.reconfig_interval(cu);
            if now < last + interval {
                self.counters.guard_rejections += 1;
                return ReconfigOutcome::TooSoon {
                    remaining: last + interval - now,
                };
            }
        }
        self.last_reconfig[idx] = Some(now);
        let report = self.apply_resize(cu, level);
        ReconfigOutcome::Applied(report)
    }

    /// Immediately applies a resize, bypassing the interval guard. Used by
    /// oracle/static experiments; runtime adaptation should go through
    /// [`Machine::request_resize`].
    pub fn apply_resize(&mut self, cu: CuId, level: SizeLevel) -> FlushReport {
        match cu {
            CuId::Window => {
                // Resizing the window drains the pipeline: a short fixed
                // stall, no cache state is lost.
                if level != self.window_level {
                    self.counters.window_resizes[self.window_level.index()] += 1;
                    self.window_level = level;
                    self.add_overhead_cycles(30);
                }
                FlushReport::default()
            }
            CuId::Dtlb => {
                // A TLB flush invalidates in place: the pipeline drains
                // and the entries refill on demand via the miss penalty.
                let report = self.dtlb.resize(level);
                self.add_overhead_cycles(30);
                report
            }
            CuId::L1d => {
                let report = self.l1d.resize(level);
                // Drain L1D dirty lines into the L2 (they are L2 store
                // traffic).
                for i in 0..report.dirty_lines {
                    // Distinct line addresses in a reserved region: the
                    // energy and traffic accounting is what matters, not
                    // the addresses.
                    let addr = 0xF000_0000_0000 + i * self.cfg.l2.block_bytes as u64;
                    let _ = self.l2.access(addr, true);
                }
                let flush_cycles = report.dirty_lines * self.cfg.flush_writeback_cycles as u64;
                self.add_overhead_cycles(flush_cycles);
                report
            }
            CuId::L2 => {
                let report = self.l2.resize(level);
                let flush_cycles = report.dirty_lines * self.cfg.flush_writeback_cycles as u64;
                self.add_overhead_cycles(flush_cycles);
                report
            }
            _ => FlushReport::default(),
        }
    }

    /// Instructions until `cu`'s guard reopens (0 when a request would be
    /// applied immediately).
    pub fn guard_remaining(&self, cu: CuId) -> u64 {
        match self.last_reconfig[cu.index()] {
            Some(last) => (last + self.reconfig_interval(cu)).saturating_sub(self.counters.instret),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{BranchEvent, MemAccess};

    fn machine() -> Machine {
        Machine::new(MachineConfig::table2()).unwrap()
    }

    fn block(pc: u64, ninstr: u32, accesses: Vec<MemAccess>) -> Block {
        Block {
            pc,
            ninstr,
            accesses,
            branch: None,
        }
    }

    #[test]
    fn issue_width_limits_ipc() {
        let mut m = machine();
        // Same block repeatedly: after warmup no misses, IPC -> issue width.
        let b = block(0x400, 16, vec![MemAccess::load(0x1000)]);
        for _ in 0..1000 {
            m.exec_block(&b);
        }
        let ipc = m.counters().ipc();
        assert!(ipc > 3.5 && ipc <= 4.0, "steady IPC near width, got {ipc}");
    }

    #[test]
    fn misses_add_stalls() {
        let mut m = machine();
        let hit = block(0x400, 8, vec![MemAccess::load(0x1000)]);
        for _ in 0..100 {
            m.exec_block(&hit);
        }
        let before = m.counters().clone();
        // Stream through 16 MB: misses in both L1D and L2.
        let mut misses = Vec::new();
        for i in 0..1000u64 {
            misses.push(MemAccess::load(0x100_0000 + i * 4096));
        }
        m.exec_block(&Block {
            pc: 0x400,
            ninstr: 8,
            accesses: misses,
            branch: None,
        });
        let d = m.counters().delta_since(&before);
        assert!(
            d.cycles > 1000,
            "misses must stall, got {} cycles",
            d.cycles
        );
        assert!(d.l2.total_misses() > 900);
    }

    #[test]
    fn mispredicts_charge_penalty() {
        let mut m = machine();
        let mut taken = false;
        let mut base = 0;
        // Random-ish outcomes on many PCs to defeat the predictor.
        let mut x = 1u64;
        for i in 0..2000u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            taken = (x >> 63) != 0;
            let b = Block {
                pc: 0x400,
                ninstr: 4,
                accesses: vec![],
                branch: Some(BranchEvent {
                    pc: 0x800 + (i % 64) * 4,
                    taken,
                }),
            };
            m.exec_block(&b);
            base += 1;
        }
        let _ = (taken, base);
        let c = m.counters();
        assert!(c.branch.mispredicts > 300, "got {}", c.branch.mispredicts);
        // Each mispredict costs 3 cycles on top of base 1 cycle/block.
        assert!(c.cycles >= 2000 + 3 * c.branch.mispredicts);
    }

    #[test]
    fn guard_blocks_rapid_reconfiguration() {
        let mut m = machine();
        let l1 = SizeLevel::new(1).unwrap();
        assert!(matches!(
            m.request_resize(CuId::L1d, l1),
            ReconfigOutcome::Applied(_)
        ));
        // Immediately asking again (different level) is too soon.
        let l2 = SizeLevel::new(2).unwrap();
        assert!(matches!(
            m.request_resize(CuId::L1d, l2),
            ReconfigOutcome::TooSoon { .. }
        ));
        assert_eq!(m.counters().guard_rejections, 1);
        // Retire 100K instructions, then it works.
        let b = block(0x400, 1000, vec![]);
        for _ in 0..100 {
            m.exec_block(&b);
        }
        assert!(matches!(
            m.request_resize(CuId::L1d, l2),
            ReconfigOutcome::Applied(_)
        ));
        assert_eq!(m.level(CuId::L1d), l2);
    }

    #[test]
    fn unchanged_request_is_free() {
        let mut m = machine();
        assert_eq!(
            m.request_resize(CuId::L1d, SizeLevel::LARGEST),
            ReconfigOutcome::Unchanged
        );
        assert_eq!(m.counters().guard_rejections, 0);
    }

    #[test]
    fn l1d_flush_drains_into_l2() {
        let mut m = machine();
        // Dirty 100 lines spread across the upper sets (sets 412..511 of
        // 512), which a shrink to 256 sets disables.
        for i in 0..100u64 {
            m.exec_block(&block(0x400, 4, vec![MemAccess::store((412 + i) * 64)]));
        }
        let l2_before = m.counters().l2.total_accesses();
        let out = m.request_resize(CuId::L1d, SizeLevel::new(1).unwrap());
        match out {
            ReconfigOutcome::Applied(report) => assert_eq!(report.dirty_lines, 100),
            other => panic!("expected Applied, got {other:?}"),
        }
        let l2_after = m.counters().l2.total_accesses();
        assert!(l2_after >= l2_before + 50, "writebacks become L2 traffic");
    }

    #[test]
    fn overhead_cycles_attributed_to_levels() {
        let mut m = machine();
        m.apply_resize(CuId::L2, SizeLevel::new(3).unwrap());
        m.add_overhead_cycles(500);
        assert_eq!(m.counters().l2_cycles[3], 500);
        assert_eq!(m.counters().l1d_cycles[0], 500);
    }

    #[test]
    fn smaller_l1d_misses_more() {
        let cfgs = [SizeLevel::LARGEST, SizeLevel::SMALLEST];
        let mut miss_ratios = Vec::new();
        for lvl in cfgs {
            let mut m = machine();
            m.apply_resize(CuId::L1d, lvl);
            // 32 KB working set streamed repeatedly.
            for _round in 0..20 {
                for a in (0..32768u64).step_by(64) {
                    m.exec_block(&block(0x400, 4, vec![MemAccess::load(0x2_0000 + a)]));
                }
            }
            miss_ratios.push(m.counters().l1d.miss_ratio());
        }
        assert!(
            miss_ratios[1] > miss_ratios[0] * 2.0,
            "8 KB misses far more than 64 KB on a 32 KB set: {miss_ratios:?}"
        );
    }

    #[test]
    fn ipc_degrades_with_tiny_caches() {
        let mut big = machine();
        let mut small = machine();
        small.apply_resize(CuId::L1d, SizeLevel::SMALLEST);
        small.apply_resize(CuId::L2, SizeLevel::SMALLEST);
        for m in [&mut big, &mut small] {
            for _round in 0..10 {
                for a in (0..262144u64).step_by(64) {
                    m.exec_block(&block(0x400, 8, vec![MemAccess::load(0x10_0000 + a)]));
                }
            }
        }
        assert!(
            small.counters().ipc() < big.counters().ipc(),
            "small {} vs big {}",
            small.counters().ipc(),
            big.counters().ipc()
        );
    }

    #[test]
    fn window_resize_is_cheap_and_guarded() {
        let mut m = machine();
        let out = m.request_resize(CuId::Window, SizeLevel::SMALLEST);
        assert!(
            matches!(out, ReconfigOutcome::Applied(report) if report == FlushReport::default())
        );
        assert_eq!(m.level(CuId::Window), SizeLevel::SMALLEST);
        assert!(m.cycles() > 0, "pipeline drain charged");
        // Guard: 5K instructions between window changes.
        assert!(matches!(
            m.request_resize(CuId::Window, SizeLevel::LARGEST),
            ReconfigOutcome::TooSoon { .. }
        ));
        for _ in 0..6 {
            m.exec_block(&block(0x400, 1000, vec![]));
        }
        assert!(m
            .request_resize(CuId::Window, SizeLevel::LARGEST)
            .in_effect());
    }

    #[test]
    fn small_window_amplifies_miss_stalls_only() {
        // Hit-dominated code: window size must not matter.
        let mut big = machine();
        let mut small = machine();
        small.apply_resize(CuId::Window, SizeLevel::SMALLEST);
        for m in [&mut big, &mut small] {
            for _ in 0..2000 {
                m.exec_block(&block(0x400, 16, vec![MemAccess::load(0x1000)]));
            }
        }
        let diff = small.counters().cycles as i64 - big.counters().cycles as i64;
        assert!(
            (0..=80).contains(&diff),
            "hit-dominated code pays only the drain and cold-miss residue, diff {diff}"
        );

        // Miss-heavy code: the small window exposes more stall cycles.
        let mut big = machine();
        let mut small = machine();
        small.apply_resize(CuId::Window, SizeLevel::SMALLEST);
        for m in [&mut big, &mut small] {
            for i in 0..5000u64 {
                m.exec_block(&block(0x400, 16, vec![MemAccess::load(0x10_0000 + i * 64)]));
            }
        }
        assert!(
            small.counters().cycles > big.counters().cycles * 105 / 100,
            "streaming at 8 entries: {} vs {} cycles",
            small.counters().cycles,
            big.counters().cycles
        );
    }

    #[test]
    fn window_counters_track_levels() {
        let mut m = machine();
        m.exec_block(&block(0x400, 100, vec![]));
        m.apply_resize(CuId::Window, SizeLevel::new(2).unwrap());
        m.exec_block(&block(0x400, 200, vec![]));
        let c = m.counters();
        assert_eq!(c.window_instr[0], 100);
        assert_eq!(c.window_instr[2], 200);
        assert_eq!(c.window_resizes[0], 1);
        assert!(c.window_cycles[2] > 0);
    }

    #[test]
    fn delta_since_of_ordered_snapshots() {
        let mut m = machine();
        m.exec_block(&block(0x400, 100, vec![MemAccess::load(0x1000)]));
        let snap = m.counters().clone();
        m.exec_block(&block(0x400, 50, vec![MemAccess::store(0x1000)]));
        let d = m.counters().delta_since(&snap);
        assert_eq!(d.instret, 50);
        assert_eq!(d.l1d.total_accesses(), 1);
        assert_eq!(d.l1d.stores[0], 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "snapshot order reversed")]
    fn delta_since_rejects_swapped_snapshots_in_debug() {
        let mut m = machine();
        let earlier = m.counters().clone();
        m.exec_block(&block(0x400, 100, vec![]));
        let later = m.counters().clone();
        let _ = earlier.delta_since(&later);
    }

    #[test]
    fn counters_are_synced_on_read() {
        let mut m = machine();
        m.exec_block(&block(0x400, 8, vec![MemAccess::load(0x2000)]));
        // Sub-structure stats are copied lazily by `counters()`, not by
        // the block loop; a read must always observe the latest values.
        assert_eq!(m.counters().l1d.total_accesses(), 1);
        assert_eq!(m.counters().dtlb.accesses, 1);
        m.exec_block(&block(0x400, 8, vec![MemAccess::load(0x2000)]));
        assert_eq!(m.counters().l1d.total_accesses(), 2);
        assert_eq!(m.counters().branch.branches, 0);
    }

    #[test]
    fn guard_remaining_reports() {
        let mut m = machine();
        assert_eq!(m.guard_remaining(CuId::L2), 0);
        m.request_resize(CuId::L2, SizeLevel::new(1).unwrap());
        assert_eq!(m.guard_remaining(CuId::L2), 1_000_000);
    }

    #[test]
    fn unregistered_dtlb_ignores_requests() {
        // The paper's machine does not expose the DTLB as a CU: a resize
        // request is a write to a reserved control register.
        let mut m = machine();
        assert!(!m.registry().contains(CuId::Dtlb));
        assert_eq!(
            m.request_resize(CuId::Dtlb, SizeLevel::SMALLEST),
            ReconfigOutcome::Unchanged
        );
        assert_eq!(m.level(CuId::Dtlb), SizeLevel::LARGEST);
        assert_eq!(m.counters().guard_rejections, 0);
    }

    #[test]
    fn dtlb_cu_registers_resizes_and_guards() {
        let mut cfg = MachineConfig::table2();
        cfg.dtlb_configurable = true;
        let mut m = Machine::new(cfg).unwrap();
        assert!(m.registry().contains(CuId::Dtlb));
        // Warm 32 pages, then shrink to 16 entries.
        for p in 0..32u64 {
            m.exec_block(&block(0x400, 4, vec![MemAccess::load(p * 4096)]));
        }
        let out = m.request_resize(CuId::Dtlb, SizeLevel::SMALLEST);
        match out {
            ReconfigOutcome::Applied(report) => {
                assert_eq!(report.dirty_lines, 0);
                assert_eq!(report.valid_lines, 32);
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        assert_eq!(m.level(CuId::Dtlb), SizeLevel::SMALLEST);
        // 10 K-instruction guard.
        assert!(matches!(
            m.request_resize(CuId::Dtlb, SizeLevel::LARGEST),
            ReconfigOutcome::TooSoon { .. }
        ));
        for _ in 0..11 {
            m.exec_block(&block(0x400, 1000, vec![]));
        }
        assert!(m.request_resize(CuId::Dtlb, SizeLevel::LARGEST).in_effect());
        let c = m.counters();
        assert_eq!(c.dtlb_resizes[0], 1);
        assert_eq!(c.dtlb_resizes[3], 1);
        assert!(c.dtlb_level_accesses[0] > 0);
        assert!(c.dtlb_cycles[3] > 0);
    }
}
