//! Set-associative, write-back, write-allocate cache with runtime resizing.
//!
//! A configurable cache shrinks or grows by halving/doubling its *set count*
//! (associativity and line size stay fixed), matching the four sizes per
//! unit in Table 2. Resizing follows the selective-sets model of the
//! reconfigurable-cache literature the paper builds on:
//!
//! * **shrinking** disables the upper sets: their valid lines are
//!   invalidated, and the dirty ones are written back to the next level —
//!   the "thousands of cycles" reconfiguration overhead the paper cites;
//! * **growing** re-enables sets: lines whose address now indexes a
//!   different set are invalidated (dirty ones written back); lines whose
//!   mapping is unchanged survive.
//!
//! Tags store the full line address, so surviving lines stay correct across
//! index-width changes. The flush report lets the machine charge cycles and
//! energy for every written-back line.
//!
//! Statistics are kept **per size level** so the energy model can later
//! price each access at the energy of the configuration it actually hit.
//!
//! # Data layout
//!
//! This is the simulator's hottest structure — every data reference of
//! every run probes it — so line state is stored struct-of-arrays:
//!
//! * [`Cache::meta`]: one packed `u64` per line, `tag << 2 | dirty << 1 |
//!   valid`. A probe is a single load and compare per way (`meta & !DIRTY
//!   == tag << 2 | VALID` checks tag *and* validity at once).
//! * [`Cache::rank`]: one recency byte per line. Within a set the ranks
//!   form a permutation of `0..ways`; 0 is most recently used, `ways - 1`
//!   is the LRU victim. Promotion increments the ranks below the touched
//!   line's old rank — a short, branch-free byte loop — replacing the old
//!   per-line 8-byte monotonic timestamp and its scan-for-minimum victim
//!   search.
//!
//! On top of that, the cache memoizes the most recently touched line
//! ([`Cache::mru_key`]): consecutive accesses to the same line — the
//! common case for strided walks — skip the probe loop entirely. The memo
//! is sound because a repeated line is by definition already most recently
//! used (promotion is the identity) and nothing can have evicted it since
//! the previous access.
//!
//! The replacement behavior is bit-for-bit identical to the previous
//! array-of-structs implementation: true per-set LRU with invalid ways
//! (lowest index first) preferred as victims. `cache_reference_model.rs`
//! checks this against a naive oracle, and `lru_equivalence.rs` checks it
//! against a re-implementation of the old timestamp scheme.

use crate::config::{CacheGeometry, SizeLevel, NUM_SIZE_LEVELS};
use serde::{Deserialize, Serialize};

/// `meta` bit 0: the line holds a valid tag.
const VALID: u64 = 1;
/// `meta` bit 1: the line has been written since allocation.
const DIRTY: u64 = 1 << 1;
/// `mru_key` value meaning "no memoized line" (a real key has VALID set).
const NO_MRU: u64 = 0;

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the reference hit.
    pub hit: bool,
    /// Address of a dirty line evicted to make room, if any. The caller is
    /// responsible for propagating the writeback to the next level.
    pub writeback: Option<u64>,
}

/// Outcome of a resize or flush: what the transition cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushReport {
    /// Dirty lines written back to the next level.
    pub dirty_lines: u64,
    /// Valid lines invalidated (including the dirty ones).
    pub valid_lines: u64,
}

/// Per-size-level access statistics for one cache.
///
/// Index `k` of each array accumulates events that occurred while the cache
/// was at [`SizeLevel`] `k`. Non-configurable caches only ever use index 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total references (loads + stores).
    pub accesses: [u64; NUM_SIZE_LEVELS],
    /// References that missed.
    pub misses: [u64; NUM_SIZE_LEVELS],
    /// Store references (subset of `accesses`).
    pub stores: [u64; NUM_SIZE_LEVELS],
    /// Dirty evictions due to replacement.
    pub writebacks: [u64; NUM_SIZE_LEVELS],
    /// Dirty lines written back by resize and flush transitions, attributed
    /// to the level being *left* (for a flush, the current level).
    pub flush_writebacks: [u64; NUM_SIZE_LEVELS],
    /// Number of applied reconfigurations (attributed to the level left).
    pub resizes: [u64; NUM_SIZE_LEVELS],
}

impl CacheStats {
    /// Total references across all levels.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Total misses across all levels.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Global miss ratio, or 0.0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.total_accesses();
        if a == 0 {
            0.0
        } else {
            self.total_misses() as f64 / a as f64
        }
    }

    /// Element-wise difference `self - earlier`; used to attribute events to
    /// a region of execution (e.g. one hotspot invocation).
    ///
    /// Both snapshot types share one underflow contract (see
    /// [`crate::MachineCounters::delta_since`]): passing snapshots in the
    /// wrong order is a caller bug. Debug builds panic on it; release
    /// builds wrap rather than aborting a long experiment.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        fn sub(a: &[u64; NUM_SIZE_LEVELS], b: &[u64; NUM_SIZE_LEVELS]) -> [u64; NUM_SIZE_LEVELS] {
            let mut out = [0; NUM_SIZE_LEVELS];
            for i in 0..NUM_SIZE_LEVELS {
                debug_assert!(a[i] >= b[i], "snapshot order reversed");
                out[i] = a[i].wrapping_sub(b[i]);
            }
            out
        }
        CacheStats {
            accesses: sub(&self.accesses, &earlier.accesses),
            misses: sub(&self.misses, &earlier.misses),
            stores: sub(&self.stores, &earlier.stores),
            writebacks: sub(&self.writebacks, &earlier.writebacks),
            flush_writebacks: sub(&self.flush_writebacks, &earlier.flush_writebacks),
            resizes: sub(&self.resizes, &earlier.resizes),
        }
    }
}

/// A resizable set-associative cache model.
///
/// # Examples
///
/// ```
/// use ace_sim::{Cache, CacheGeometry, SizeLevel};
/// let geom = CacheGeometry { size_bytes: 8 * 1024, ways: 2, block_bytes: 64, hit_latency: 1 };
/// let mut c = Cache::new(geom).unwrap();
/// assert!(!c.access(0x1000, false).hit); // cold miss (set 0)
/// assert!(!c.access(0xFC0, false).hit);  // cold miss (set 63)
/// let report = c.resize(SizeLevel::new(1).unwrap()); // 32 sets remain
/// assert!(c.access(0x1000, false).hit);  // set 0 survives the shrink
/// assert!(!c.access(0xFC0, false).hit);  // set 63 was disabled
/// assert_eq!(report.dirty_lines, 0);     // nothing was dirty
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// Packed per-line metadata: `tag << 2 | dirty << 1 | valid`, indexed
    /// `set * ways + way`. Storage covers the *maximum* set count; only the
    /// first `sets * ways` entries are in use after a shrink.
    pub(crate) meta: Vec<u64>,
    /// Per-line LRU rank; within each set a permutation of `0..ways`
    /// (0 = MRU). Ranks of invalid lines are stale but keep the
    /// permutation invariant.
    pub(crate) rank: Vec<u8>,
    /// Memoized key (`tag << 2 | VALID`) of the most recently touched
    /// line, or [`NO_MRU`]; a repeat access skips the probe loop.
    pub(crate) mru_key: u64,
    /// Flat index of the memoized line in `meta`.
    pub(crate) mru_slot: u32,
    /// Sets at the current level.
    pub(crate) sets: u32,
    /// Associativity, cached as `usize` for indexing.
    pub(crate) ways: usize,
    /// `log2(block_bytes)`.
    pub(crate) offset_bits: u32,
    /// `level.index()`, cached so the hot path never recomputes it.
    pub(crate) lvl: usize,
    level: SizeLevel,
    geom: CacheGeometry,
    stats: CacheStats,
}

impl Cache {
    /// Creates the cache at its largest size.
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry fails [`CacheGeometry::validate`].
    pub fn new(geom: CacheGeometry) -> Result<Cache, crate::config::ConfigError> {
        geom.validate()?;
        let max_sets = geom.max_sets();
        let ways = geom.ways as usize;
        let lines = max_sets as usize * ways;
        Ok(Cache {
            meta: vec![0; lines],
            rank: (0..lines).map(|i| (i % ways) as u8).collect(),
            mru_key: NO_MRU,
            mru_slot: 0,
            sets: max_sets,
            ways,
            offset_bits: geom.block_bytes.trailing_zeros(),
            lvl: 0,
            level: SizeLevel::LARGEST,
            geom,
            stats: CacheStats::default(),
        })
    }

    /// The static geometry (at the largest level).
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The current size level.
    #[inline]
    pub fn level(&self) -> SizeLevel {
        self.level
    }

    /// Current capacity in bytes.
    pub fn current_size(&self) -> u64 {
        self.geom.size_at(self.level)
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Performs one reference; `is_store` marks the line dirty on hit or
    /// after allocation (write-allocate).
    #[inline]
    pub fn access(&mut self, addr: u64, is_store: bool) -> AccessOutcome {
        let lvl = self.lvl;
        self.stats.accesses[lvl] += 1;
        self.stats.stores[lvl] += is_store as u64;
        self.access_uncounted(addr, is_store)
    }

    /// [`Cache::access`] without the per-reference access/store counter
    /// updates. The block loop counts references in bulk per block via
    /// [`Cache::bulk_count`] — the level cannot change mid-block (resizes
    /// only happen between blocks), so one bulk add at the current level
    /// leaves [`CacheStats`] byte-identical to per-reference counting.
    /// Misses and writebacks are still counted here (they are decided per
    /// reference, on the cold path).
    #[inline]
    pub(crate) fn access_uncounted(&mut self, addr: u64, is_store: bool) -> AccessOutcome {
        let lvl = self.lvl;
        let line = addr >> self.offset_bits;
        debug_assert!(line < 1 << 62, "line address too wide to pack");
        let key = (line << 2) | VALID;

        // Same line as the previous access: it is already MRU, so the
        // probe and promotion are both the identity; only the dirty bit
        // can change.
        if key == self.mru_key {
            self.meta[self.mru_slot as usize] |= (is_store as u64) << 1;
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }

        let set = (line as u32) & (self.sets - 1);
        let base = set as usize * self.ways;
        let mut hit_way = usize::MAX;
        for (w, &m) in self.meta[base..base + self.ways].iter().enumerate() {
            if m & !DIRTY == key {
                hit_way = w;
                break;
            }
        }
        if hit_way != usize::MAX {
            self.meta[base + hit_way] |= (is_store as u64) << 1;
            self.promote(base, hit_way);
            self.mru_key = key;
            self.mru_slot = (base + hit_way) as u32;
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.miss(lvl, key, base, is_store)
    }

    /// Adds a block's worth of access/store counts at the current level.
    /// Pairs with [`Cache::access_uncounted`].
    #[inline]
    pub(crate) fn bulk_count(&mut self, accesses: u64, stores: u64) {
        self.stats.accesses[self.lvl] += accesses;
        self.stats.stores[self.lvl] += stores;
    }

    /// Marks the memoized MRU line dirty if `is_store`. Sound only when
    /// the caller has just accessed that line (so it is resident and MRU);
    /// the block loop uses this for consecutive same-line references,
    /// where probe, promotion, and miss accounting are all the identity.
    #[inline]
    pub(crate) fn mru_mark_dirty(&mut self, is_store: bool) {
        self.meta[self.mru_slot as usize] |= (is_store as u64) << 1;
    }

    /// Makes way `way` of the set starting at `base` the MRU line,
    /// shifting the ranks below its old rank up by one.
    #[inline]
    fn promote(&mut self, base: usize, way: usize) {
        let r = self.rank[base + way];
        if r != 0 {
            for x in &mut self.rank[base..base + self.ways] {
                *x += (*x < r) as u8;
            }
            self.rank[base + way] = 0;
        }
    }

    /// Miss path: allocates into the first invalid way, else evicts the
    /// LRU line. Kept out of line so the hit path stays small enough to
    /// inline into the simulator's reference loop.
    #[cold]
    #[inline(never)]
    fn miss(&mut self, lvl: usize, key: u64, base: usize, is_store: bool) -> AccessOutcome {
        self.stats.misses[lvl] += 1;
        let ways = self.ways;
        let slots = &self.meta[base..base + ways];
        // Victim: the first invalid way if any, else the LRU. When every
        // way is valid the ranks are exactly the valid lines' recency
        // order, so the LRU is the (unique) way with rank `ways - 1`.
        let mut victim = usize::MAX;
        for (w, &m) in slots.iter().enumerate() {
            if m & VALID == 0 {
                victim = w;
                break;
            }
        }
        if victim == usize::MAX {
            let lru = (ways - 1) as u8;
            victim = self.rank[base..base + ways]
                .iter()
                .position(|&r| r == lru)
                .expect("ranks form a permutation");
        }
        let old = self.meta[base + victim];
        let writeback = if old & (VALID | DIRTY) == VALID | DIRTY {
            self.stats.writebacks[lvl] += 1;
            Some((old >> 2) << self.offset_bits)
        } else {
            None
        };
        self.meta[base + victim] = key | (is_store as u64) << 1;
        self.promote(base, victim);
        self.mru_key = key;
        self.mru_slot = (base + victim) as u32;
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Probes for residency without updating LRU state or statistics.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.offset_bits;
        let key = (line << 2) | VALID;
        let set = (line as u32) & (self.sets - 1);
        let base = set as usize * self.ways;
        self.meta[base..base + self.ways]
            .iter()
            .any(|&m| m & !DIRTY == key)
    }

    /// Changes the cache to `new_level` using selective-sets resizing.
    ///
    /// Shrinking invalidates the disabled sets; growing invalidates lines
    /// whose set mapping changes under the wider index. In both directions
    /// dirty casualties are written back and counted in the report (and in
    /// [`CacheStats::flush_writebacks`] at the level being left) so the
    /// caller can charge writeback cycles and next-level traffic. Resizing
    /// to the current level is a no-op returning an empty report.
    pub fn resize(&mut self, new_level: SizeLevel) -> FlushReport {
        if new_level == self.level {
            return FlushReport::default();
        }
        let old = self.lvl;
        let old_sets = self.sets;
        let new_sets = self.geom.sets_at(new_level);
        let ways = self.ways;
        let mut report = FlushReport::default();

        if new_sets < old_sets {
            // Disable the upper sets. Surviving sets keep their lines:
            // for s < new_sets, line_addr & (new_sets-1) == s still holds.
            for m in &mut self.meta[new_sets as usize * ways..old_sets as usize * ways] {
                if *m & VALID != 0 {
                    report.valid_lines += 1;
                    report.dirty_lines += (*m & DIRTY != 0) as u64;
                }
                *m = 0;
            }
        } else {
            // Re-enable sets: lines that would now index elsewhere must go.
            let new_mask = (new_sets - 1) as u64;
            for set in 0..old_sets as u64 {
                for m in &mut self.meta[set as usize * ways..(set as usize + 1) * ways] {
                    if *m & VALID != 0 && ((*m >> 2) & new_mask) != set {
                        report.valid_lines += 1;
                        report.dirty_lines += (*m & DIRTY != 0) as u64;
                        *m = 0;
                    }
                }
            }
        }

        self.mru_key = NO_MRU;
        self.stats.flush_writebacks[old] += report.dirty_lines;
        self.stats.resizes[old] += 1;
        self.level = new_level;
        self.lvl = new_level.index();
        self.sets = new_sets;
        report
    }

    /// Writes back and invalidates every line without changing the size.
    ///
    /// Dirty casualties are accounted exactly like a resize flush: they
    /// are counted in [`CacheStats::flush_writebacks`] at the current
    /// level (a flush leaves the level unchanged, so "the level left" is
    /// the current one). [`CacheStats::resizes`] is not bumped — the
    /// configuration did not change.
    pub fn flush(&mut self) -> FlushReport {
        let mut report = FlushReport::default();
        let in_use = self.sets as usize * self.ways;
        for m in &mut self.meta[..in_use] {
            if *m & VALID != 0 {
                report.valid_lines += 1;
                report.dirty_lines += (*m & DIRTY != 0) as u64;
            }
            *m = 0;
        }
        self.mru_key = NO_MRU;
        self.stats.flush_writebacks[self.lvl] += report.dirty_lines;
        report
    }

    /// Number of currently valid lines (test/diagnostic helper).
    pub fn valid_lines(&self) -> u64 {
        let in_use = self.sets as usize * self.ways;
        self.meta[..in_use]
            .iter()
            .filter(|&&m| m & VALID != 0)
            .count() as u64
    }

    /// Number of currently dirty lines (test/diagnostic helper).
    pub fn dirty_lines(&self) -> u64 {
        let in_use = self.sets as usize * self.ways;
        self.meta[..in_use]
            .iter()
            .filter(|&&m| m & (VALID | DIRTY) == VALID | DIRTY)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheGeometry {
            size_bytes: 8 * 1024,
            ways: 2,
            block_bytes: 64,
            hit_latency: 1,
        })
        .unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x7f, false).hit, "same line");
        assert!(!c.access(0x80, false).hit, "next line");
        assert_eq!(c.stats().total_accesses(), 4);
        assert_eq!(c.stats().total_misses(), 2);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut c = small();
        // 8KB, 2-way, 64B lines -> 64 sets; addresses 64*64 apart share a set.
        let stride = 64 * 64;
        c.access(0, false);
        c.access(stride, false);
        c.access(0, false); // make line 0 MRU
        let out = c.access(2 * stride, false); // evicts `stride`
        assert!(!out.hit);
        assert!(c.contains(0));
        assert!(!c.contains(stride));
        assert!(c.contains(2 * stride));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        let stride = 64 * 64;
        c.access(0x100, true); // dirty
        c.access(0x100 + stride, false);
        let out = c.access(0x100 + 2 * stride, false);
        assert_eq!(out.writeback, Some(0x100 & !63));
        assert_eq!(c.stats().writebacks[0], 1);
    }

    #[test]
    fn store_allocate_marks_dirty() {
        let mut c = small();
        c.access(0x200, true);
        assert_eq!(c.dirty_lines(), 1);
        c.access(0x200, false);
        assert_eq!(c.dirty_lines(), 1, "load does not clean the line");
    }

    #[test]
    fn repeat_accesses_update_dirty_through_the_memo() {
        let mut c = small();
        // Load allocates clean; a store to the same line (served by the
        // MRU memo) must still mark it dirty.
        c.access(0x200, false);
        assert_eq!(c.dirty_lines(), 0);
        c.access(0x210, true);
        assert_eq!(c.dirty_lines(), 1);
        assert_eq!(c.stats().total_accesses(), 2);
        assert_eq!(c.stats().stores[0], 1);
    }

    #[test]
    fn shrink_evicts_only_disabled_sets() {
        let mut c = small(); // 64 sets at level 0; 16 sets at level 2.
                             // Lines in surviving sets 0..3 and in disabled sets 20..22.
        c.access(0, true);
        c.access(64, false);
        c.access(20 * 64, true);
        c.access(21 * 64, true);
        c.access(22 * 64, false);
        let report = c.resize(SizeLevel::new(2).unwrap());
        assert_eq!(report.valid_lines, 3, "only the disabled sets' lines go");
        assert_eq!(report.dirty_lines, 2);
        assert_eq!(c.current_size(), 2 * 1024);
        assert!(c.contains(0), "surviving set keeps its line");
        assert!(c.contains(64));
        assert!(!c.contains(20 * 64));
        assert_eq!(c.stats().flush_writebacks[0], 2);
        assert_eq!(c.stats().resizes[0], 1);
        // Subsequent accesses are attributed to the new level.
        c.access(0, false);
        assert_eq!(c.stats().accesses[2], 1);
    }

    #[test]
    fn grow_evicts_remapped_lines_only() {
        let mut c = small();
        c.resize(SizeLevel::new(2).unwrap()); // 16 sets
                                              // Two lines sharing set 0 at 16 sets: line 0 (set 0 at 64 sets too)
                                              // and line 16 (set 16 at 64 sets: remapped on grow).
        c.access(0, true);
        c.access(16 * 64, true);
        let report = c.resize(SizeLevel::LARGEST);
        assert_eq!(report.valid_lines, 1, "only the remapped line is dropped");
        assert_eq!(report.dirty_lines, 1);
        assert!(c.contains(0));
        assert!(!c.contains(16 * 64));
    }

    #[test]
    fn resize_to_same_level_is_noop() {
        let mut c = small();
        c.access(0, true);
        let report = c.resize(SizeLevel::LARGEST);
        assert_eq!(report, FlushReport::default());
        assert!(c.contains(0));
    }

    #[test]
    fn shrink_reduces_capacity_behaviorally() {
        let mut c = small(); // 8 KB
                             // Touch a 4 KB working set: fits at level 0.
        for a in (0..4096).step_by(64) {
            c.access(a, false);
        }
        let misses_before = c.stats().total_misses();
        for a in (0..4096).step_by(64) {
            c.access(a, false);
        }
        assert_eq!(c.stats().total_misses(), misses_before, "fits at 8 KB");
        // At 2 KB (level 2) the same working set must thrash.
        c.resize(SizeLevel::new(2).unwrap());
        for _round in 0..2 {
            for a in (0..4096).step_by(64) {
                c.access(a, false);
            }
        }
        let lvl2 = 2;
        assert!(
            c.stats().misses[lvl2] > 64,
            "4 KB working set thrashes a 2 KB cache: {} misses",
            c.stats().misses[lvl2]
        );
    }

    #[test]
    fn delta_since_subtracts() {
        let mut c = small();
        c.access(0, false);
        let snap = *c.stats();
        c.access(64, true);
        c.access(64, true);
        let d = c.stats().delta_since(&snap);
        assert_eq!(d.total_accesses(), 2);
        assert_eq!(d.stores[0], 2);
        assert_eq!(d.total_misses(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "snapshot order reversed")]
    fn delta_since_rejects_swapped_snapshots_in_debug() {
        let mut c = small();
        let earlier = *c.stats();
        c.access(0, false);
        let later = *c.stats();
        let _ = earlier.delta_since(&later);
    }

    #[test]
    fn grow_after_shrink_restores_capacity() {
        let mut c = small();
        c.resize(SizeLevel::SMALLEST);
        assert_eq!(c.current_size(), 1024);
        c.resize(SizeLevel::LARGEST);
        assert_eq!(c.current_size(), 8 * 1024);
        // All sets usable again.
        for a in (0..8192).step_by(64) {
            c.access(a, false);
        }
        for a in (0..8192).step_by(64) {
            assert!(c.contains(a), "line {a:#x} resident after fill");
        }
    }

    #[test]
    fn flush_writes_back_and_accounts_like_resize() {
        let mut c = small();
        c.access(0, true);
        c.access(64, false);
        c.access(20 * 64, true);
        let report = c.flush();
        assert_eq!(report.valid_lines, 3);
        assert_eq!(report.dirty_lines, 2);
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(
            c.stats().flush_writebacks[0],
            2,
            "flush accounts its writebacks at the current level, like resize"
        );
        assert_eq!(c.stats().resizes[0], 0, "a flush is not a resize");
        // The flushed lines are gone: re-access misses.
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn flush_at_shrunk_level_attributes_to_that_level() {
        let mut c = small();
        c.resize(SizeLevel::new(2).unwrap());
        c.access(0, true);
        let report = c.flush();
        assert_eq!(report.dirty_lines, 1);
        assert_eq!(c.stats().flush_writebacks[2], 1);
    }

    #[test]
    fn ranks_stay_a_permutation_across_transitions() {
        let mut c = small();
        for a in (0..8192u64).step_by(64) {
            c.access(a, a % 192 == 0);
        }
        c.resize(SizeLevel::new(2).unwrap());
        for a in (0..4096u64).step_by(32) {
            c.access(a, a % 96 == 0);
        }
        c.resize(SizeLevel::LARGEST);
        c.flush();
        // After heavy churn every set's ranks must still be 0..ways.
        for set in 0..64usize {
            let mut ranks: Vec<u8> = c.rank[set * 2..set * 2 + 2].to_vec();
            ranks.sort_unstable();
            assert_eq!(ranks, vec![0, 1], "set {set}");
        }
    }
}
