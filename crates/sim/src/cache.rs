//! Set-associative, write-back, write-allocate cache with runtime resizing.
//!
//! A configurable cache shrinks or grows by halving/doubling its *set count*
//! (associativity and line size stay fixed), matching the four sizes per
//! unit in Table 2. Resizing follows the selective-sets model of the
//! reconfigurable-cache literature the paper builds on:
//!
//! * **shrinking** disables the upper sets: their valid lines are
//!   invalidated, and the dirty ones are written back to the next level —
//!   the "thousands of cycles" reconfiguration overhead the paper cites;
//! * **growing** re-enables sets: lines whose address now indexes a
//!   different set are invalidated (dirty ones written back); lines whose
//!   mapping is unchanged survive.
//!
//! Tags store the full line address, so surviving lines stay correct across
//! index-width changes. The flush report lets the machine charge cycles and
//! energy for every written-back line.
//!
//! Statistics are kept **per size level** so the energy model can later
//! price each access at the energy of the configuration it actually hit.

use crate::config::{CacheGeometry, SizeLevel, NUM_SIZE_LEVELS};
use serde::{Deserialize, Serialize};

/// A single cache line's metadata (tags only; no data payload is simulated).
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    lru: u64,
    valid: bool,
    dirty: bool,
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the reference hit.
    pub hit: bool,
    /// Address of a dirty line evicted to make room, if any. The caller is
    /// responsible for propagating the writeback to the next level.
    pub writeback: Option<u64>,
}

/// Outcome of a resize or flush: what the transition cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushReport {
    /// Dirty lines written back to the next level.
    pub dirty_lines: u64,
    /// Valid lines invalidated (including the dirty ones).
    pub valid_lines: u64,
}

/// Per-size-level access statistics for one cache.
///
/// Index `k` of each array accumulates events that occurred while the cache
/// was at [`SizeLevel`] `k`. Non-configurable caches only ever use index 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total references (loads + stores).
    pub accesses: [u64; NUM_SIZE_LEVELS],
    /// References that missed.
    pub misses: [u64; NUM_SIZE_LEVELS],
    /// Store references (subset of `accesses`).
    pub stores: [u64; NUM_SIZE_LEVELS],
    /// Dirty evictions due to replacement.
    pub writebacks: [u64; NUM_SIZE_LEVELS],
    /// Dirty lines written back by resize flushes, attributed to the level
    /// being *left*.
    pub flush_writebacks: [u64; NUM_SIZE_LEVELS],
    /// Number of applied reconfigurations (attributed to the level left).
    pub resizes: [u64; NUM_SIZE_LEVELS],
}

impl CacheStats {
    /// Total references across all levels.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Total misses across all levels.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Global miss ratio, or 0.0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.total_accesses();
        if a == 0 {
            0.0
        } else {
            self.total_misses() as f64 / a as f64
        }
    }

    /// Element-wise difference `self - earlier`; used to attribute events to
    /// a region of execution (e.g. one hotspot invocation).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds `self`'s
    /// (i.e. the snapshots are swapped).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        fn sub(a: &[u64; NUM_SIZE_LEVELS], b: &[u64; NUM_SIZE_LEVELS]) -> [u64; NUM_SIZE_LEVELS] {
            let mut out = [0; NUM_SIZE_LEVELS];
            for i in 0..NUM_SIZE_LEVELS {
                debug_assert!(a[i] >= b[i], "snapshot order reversed");
                out[i] = a[i].wrapping_sub(b[i]);
            }
            out
        }
        CacheStats {
            accesses: sub(&self.accesses, &earlier.accesses),
            misses: sub(&self.misses, &earlier.misses),
            stores: sub(&self.stores, &earlier.stores),
            writebacks: sub(&self.writebacks, &earlier.writebacks),
            flush_writebacks: sub(&self.flush_writebacks, &earlier.flush_writebacks),
            resizes: sub(&self.resizes, &earlier.resizes),
        }
    }
}

/// A resizable set-associative cache model.
///
/// # Examples
///
/// ```
/// use ace_sim::{Cache, CacheGeometry, SizeLevel};
/// let geom = CacheGeometry { size_bytes: 8 * 1024, ways: 2, block_bytes: 64, hit_latency: 1 };
/// let mut c = Cache::new(geom).unwrap();
/// assert!(!c.access(0x1000, false).hit); // cold miss (set 0)
/// assert!(!c.access(0xFC0, false).hit);  // cold miss (set 63)
/// let report = c.resize(SizeLevel::new(1).unwrap()); // 32 sets remain
/// assert!(c.access(0x1000, false).hit);  // set 0 survives the shrink
/// assert!(!c.access(0xFC0, false).hit);  // set 63 was disabled
/// assert_eq!(report.dirty_lines, 0);     // nothing was dirty
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeometry,
    level: SizeLevel,
    /// `log2(block_bytes)`.
    offset_bits: u32,
    /// Sets at the current level.
    sets: u32,
    /// Storage for the *maximum* set count; only the first `sets * ways`
    /// entries are in use after a shrink.
    lines: Vec<Line>,
    /// Monotonic access counter for LRU ordering.
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates the cache at its largest size.
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry fails [`CacheGeometry::validate`].
    pub fn new(geom: CacheGeometry) -> Result<Cache, crate::config::ConfigError> {
        geom.validate()?;
        let max_sets = geom.max_sets();
        Ok(Cache {
            geom,
            level: SizeLevel::LARGEST,
            offset_bits: geom.block_bytes.trailing_zeros(),
            sets: max_sets,
            lines: vec![Line::default(); (max_sets * geom.ways) as usize],
            tick: 0,
            stats: CacheStats::default(),
        })
    }

    /// The static geometry (at the largest level).
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The current size level.
    pub fn level(&self) -> SizeLevel {
        self.level
    }

    /// Current capacity in bytes.
    pub fn current_size(&self) -> u64 {
        self.geom.size_at(self.level)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Splits an address into (full-line-address tag, set index) at the
    /// current size.
    fn index(&self, addr: u64) -> (u64, u32) {
        let line_addr = addr >> self.offset_bits;
        let set = (line_addr as u32) & (self.sets - 1);
        (line_addr, set)
    }

    /// Performs one reference; `is_store` marks the line dirty on hit or
    /// after allocation (write-allocate).
    pub fn access(&mut self, addr: u64, is_store: bool) -> AccessOutcome {
        let lvl = self.level.index();
        self.stats.accesses[lvl] += 1;
        if is_store {
            self.stats.stores[lvl] += 1;
        }
        self.tick += 1;
        let (tag, set) = self.index(addr);
        let ways = self.geom.ways as usize;
        let base = set as usize * ways;
        let slots = &mut self.lines[base..base + ways];

        // Hit path.
        for line in slots.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= is_store;
                return AccessOutcome {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Miss: choose the LRU victim (preferring invalid slots).
        self.stats.misses[lvl] += 1;
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for (i, line) in slots.iter().enumerate() {
            if !line.valid {
                victim = i;
                break;
            }
            if line.lru < best {
                best = line.lru;
                victim = i;
            }
        }
        let v = &mut slots[victim];
        let writeback = if v.valid && v.dirty {
            Some(v.tag << self.offset_bits)
        } else {
            None
        };
        v.valid = true;
        v.dirty = is_store;
        v.tag = tag;
        v.lru = self.tick;
        if writeback.is_some() {
            self.stats.writebacks[lvl] += 1;
        }
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Probes for residency without updating LRU state or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let (tag, set) = self.index(addr);
        let ways = self.geom.ways as usize;
        let base = set as usize * ways;
        self.lines[base..base + ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Changes the cache to `new_level` using selective-sets resizing.
    ///
    /// Shrinking invalidates the disabled sets; growing invalidates lines
    /// whose set mapping changes under the wider index. In both directions
    /// dirty casualties are written back and counted in the report (and in
    /// [`CacheStats::flush_writebacks`] at the level being left) so the
    /// caller can charge writeback cycles and next-level traffic. Resizing
    /// to the current level is a no-op returning an empty report.
    pub fn resize(&mut self, new_level: SizeLevel) -> FlushReport {
        if new_level == self.level {
            return FlushReport::default();
        }
        let old = self.level.index();
        let old_sets = self.sets;
        let new_sets = self.geom.sets_at(new_level);
        let ways = self.geom.ways as usize;
        let mut report = FlushReport::default();

        if new_sets < old_sets {
            // Disable the upper sets. Surviving sets keep their lines:
            // for s < new_sets, line_addr & (new_sets-1) == s still holds.
            for slot in &mut self.lines[new_sets as usize * ways..old_sets as usize * ways] {
                if slot.valid {
                    report.valid_lines += 1;
                    if slot.dirty {
                        report.dirty_lines += 1;
                    }
                }
                *slot = Line::default();
            }
        } else {
            // Re-enable sets: lines that would now index elsewhere must go.
            let new_mask = (new_sets - 1) as u64;
            for set in 0..old_sets {
                for slot in &mut self.lines[set as usize * ways..(set as usize + 1) * ways] {
                    if slot.valid && (slot.tag & new_mask) != set as u64 {
                        report.valid_lines += 1;
                        if slot.dirty {
                            report.dirty_lines += 1;
                        }
                        *slot = Line::default();
                    }
                }
            }
        }

        self.stats.flush_writebacks[old] += report.dirty_lines;
        self.stats.resizes[old] += 1;
        self.level = new_level;
        self.sets = new_sets;
        report
    }

    /// Writes back and invalidates every line without changing the size.
    pub fn flush(&mut self) -> FlushReport {
        let mut report = FlushReport::default();
        let in_use = (self.sets * self.geom.ways) as usize;
        for line in &mut self.lines[..in_use] {
            if line.valid {
                report.valid_lines += 1;
                if line.dirty {
                    report.dirty_lines += 1;
                }
            }
            *line = Line::default();
        }
        report
    }

    /// Number of currently valid lines (test/diagnostic helper).
    pub fn valid_lines(&self) -> u64 {
        let in_use = (self.sets * self.geom.ways) as usize;
        self.lines[..in_use].iter().filter(|l| l.valid).count() as u64
    }

    /// Number of currently dirty lines (test/diagnostic helper).
    pub fn dirty_lines(&self) -> u64 {
        let in_use = (self.sets * self.geom.ways) as usize;
        self.lines[..in_use]
            .iter()
            .filter(|l| l.valid && l.dirty)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheGeometry {
            size_bytes: 8 * 1024,
            ways: 2,
            block_bytes: 64,
            hit_latency: 1,
        })
        .unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x7f, false).hit, "same line");
        assert!(!c.access(0x80, false).hit, "next line");
        assert_eq!(c.stats().total_accesses(), 4);
        assert_eq!(c.stats().total_misses(), 2);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut c = small();
        // 8KB, 2-way, 64B lines -> 64 sets; addresses 64*64 apart share a set.
        let stride = 64 * 64;
        c.access(0, false);
        c.access(stride, false);
        c.access(0, false); // make line 0 MRU
        let out = c.access(2 * stride, false); // evicts `stride`
        assert!(!out.hit);
        assert!(c.contains(0));
        assert!(!c.contains(stride));
        assert!(c.contains(2 * stride));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        let stride = 64 * 64;
        c.access(0x100, true); // dirty
        c.access(0x100 + stride, false);
        let out = c.access(0x100 + 2 * stride, false);
        assert_eq!(out.writeback, Some(0x100 & !63));
        assert_eq!(c.stats().writebacks[0], 1);
    }

    #[test]
    fn store_allocate_marks_dirty() {
        let mut c = small();
        c.access(0x200, true);
        assert_eq!(c.dirty_lines(), 1);
        c.access(0x200, false);
        assert_eq!(c.dirty_lines(), 1, "load does not clean the line");
    }

    #[test]
    fn shrink_evicts_only_disabled_sets() {
        let mut c = small(); // 64 sets at level 0; 16 sets at level 2.
                             // Lines in surviving sets 0..3 and in disabled sets 20..22.
        c.access(0, true);
        c.access(64, false);
        c.access(20 * 64, true);
        c.access(21 * 64, true);
        c.access(22 * 64, false);
        let report = c.resize(SizeLevel::new(2).unwrap());
        assert_eq!(report.valid_lines, 3, "only the disabled sets' lines go");
        assert_eq!(report.dirty_lines, 2);
        assert_eq!(c.current_size(), 2 * 1024);
        assert!(c.contains(0), "surviving set keeps its line");
        assert!(c.contains(64));
        assert!(!c.contains(20 * 64));
        assert_eq!(c.stats().flush_writebacks[0], 2);
        assert_eq!(c.stats().resizes[0], 1);
        // Subsequent accesses are attributed to the new level.
        c.access(0, false);
        assert_eq!(c.stats().accesses[2], 1);
    }

    #[test]
    fn grow_evicts_remapped_lines_only() {
        let mut c = small();
        c.resize(SizeLevel::new(2).unwrap()); // 16 sets
                                              // Two lines sharing set 0 at 16 sets: line 0 (set 0 at 64 sets too)
                                              // and line 16 (set 16 at 64 sets: remapped on grow).
        c.access(0, true);
        c.access(16 * 64, true);
        let report = c.resize(SizeLevel::LARGEST);
        assert_eq!(report.valid_lines, 1, "only the remapped line is dropped");
        assert_eq!(report.dirty_lines, 1);
        assert!(c.contains(0));
        assert!(!c.contains(16 * 64));
    }

    #[test]
    fn resize_to_same_level_is_noop() {
        let mut c = small();
        c.access(0, true);
        let report = c.resize(SizeLevel::LARGEST);
        assert_eq!(report, FlushReport::default());
        assert!(c.contains(0));
    }

    #[test]
    fn shrink_reduces_capacity_behaviorally() {
        let mut c = small(); // 8 KB
                             // Touch a 4 KB working set: fits at level 0.
        for a in (0..4096).step_by(64) {
            c.access(a, false);
        }
        let misses_before = c.stats().total_misses();
        for a in (0..4096).step_by(64) {
            c.access(a, false);
        }
        assert_eq!(c.stats().total_misses(), misses_before, "fits at 8 KB");
        // At 2 KB (level 2) the same working set must thrash.
        c.resize(SizeLevel::new(2).unwrap());
        for _round in 0..2 {
            for a in (0..4096).step_by(64) {
                c.access(a, false);
            }
        }
        let lvl2 = 2;
        assert!(
            c.stats().misses[lvl2] > 64,
            "4 KB working set thrashes a 2 KB cache: {} misses",
            c.stats().misses[lvl2]
        );
    }

    #[test]
    fn delta_since_subtracts() {
        let mut c = small();
        c.access(0, false);
        let snap = *c.stats();
        c.access(64, true);
        c.access(64, true);
        let d = c.stats().delta_since(&snap);
        assert_eq!(d.total_accesses(), 2);
        assert_eq!(d.stores[0], 2);
        assert_eq!(d.total_misses(), 1);
    }

    #[test]
    fn grow_after_shrink_restores_capacity() {
        let mut c = small();
        c.resize(SizeLevel::SMALLEST);
        assert_eq!(c.current_size(), 1024);
        c.resize(SizeLevel::LARGEST);
        assert_eq!(c.current_size(), 8 * 1024);
        // All sets usable again.
        for a in (0..8192).step_by(64) {
            c.access(a, false);
        }
        for a in (0..8192).step_by(64) {
            assert!(c.contains(a), "line {a:#x} resident after fill");
        }
    }
}
