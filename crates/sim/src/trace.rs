//! The simulator's input model: a stream of *basic-block events*.
//!
//! The original system executed PowerPC binaries under Dynamic SimpleScalar.
//! Our substitute consumes an abstract dynamic stream in which each event is
//! one basic block: an instruction count, the data accesses the block
//! performs, and the conditional branch that terminates it. This carries
//! exactly the information the evaluation needs — instruction counts, memory
//! reference streams and branch outcomes — without modeling ISA semantics.

use serde::{Deserialize, Serialize};

/// One data memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Byte address of the reference.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub is_store: bool,
}

impl MemAccess {
    /// A load from `addr`.
    pub fn load(addr: u64) -> MemAccess {
        MemAccess {
            addr,
            is_store: false,
        }
    }

    /// A store to `addr`.
    pub fn store(addr: u64) -> MemAccess {
        MemAccess {
            addr,
            is_store: true,
        }
    }
}

/// The conditional branch terminating a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchEvent {
    /// Address of the branch instruction; indexes predictor tables and the
    /// BBV accumulator.
    pub pc: u64,
    /// Dynamic outcome.
    pub taken: bool,
}

/// One dynamic basic block.
///
/// `Block` is designed for reuse: the producer clears and refills one buffer
/// per event (see [`Block::reset`]) so the hot simulation loop performs no
/// allocation in steady state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Address of the first instruction of the block.
    pub pc: u64,
    /// Number of instructions in the block (including the branch, if any).
    pub ninstr: u32,
    /// Data references performed by the block, in program order.
    pub accesses: Vec<MemAccess>,
    /// Terminating conditional branch, if the block ends in one.
    pub branch: Option<BranchEvent>,
}

impl Block {
    /// Creates an empty block with capacity for `cap` accesses.
    pub fn with_capacity(cap: usize) -> Block {
        Block {
            pc: 0,
            ninstr: 0,
            accesses: Vec::with_capacity(cap),
            branch: None,
        }
    }

    /// Clears the block for reuse, retaining the access buffer's capacity.
    pub fn reset(&mut self) {
        self.pc = 0;
        self.ninstr = 0;
        self.accesses.clear();
        self.branch = None;
    }

    /// `true` if the block contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.ninstr == 0
    }
}

/// A source of dynamic basic blocks.
///
/// Implemented by workload executors; consumed by the machine driver.
/// Returning `false` signals end of program. Implementations fill `out`
/// in place (after the driver has called [`Block::reset`] is *not* assumed;
/// implementations must reset the buffer themselves).
pub trait BlockSource {
    /// Produces the next dynamic block into `out`.
    ///
    /// Returns `false` (leaving `out` empty) once the program has finished.
    fn next_block(&mut self, out: &mut Block) -> bool;
}

impl<T: BlockSource + ?Sized> BlockSource for &mut T {
    fn next_block(&mut self, out: &mut Block) -> bool {
        (**self).next_block(out)
    }
}

impl<T: BlockSource + ?Sized> BlockSource for Box<T> {
    fn next_block(&mut self, out: &mut Block) -> bool {
        (**self).next_block(out)
    }
}

/// A `BlockSource` over a pre-recorded slice of blocks; mainly for tests.
///
/// # Examples
///
/// ```
/// use ace_sim::{Block, BlockSource, SliceSource};
/// let trace = vec![Block { pc: 0x100, ninstr: 8, ..Block::default() }];
/// let mut src = SliceSource::new(&trace);
/// let mut buf = Block::default();
/// assert!(src.next_block(&mut buf));
/// assert_eq!(buf.ninstr, 8);
/// assert!(!src.next_block(&mut buf));
/// ```
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    blocks: &'a [Block],
    next: usize,
}

impl<'a> SliceSource<'a> {
    /// Creates a source replaying `blocks` once, in order.
    pub fn new(blocks: &'a [Block]) -> SliceSource<'a> {
        SliceSource { blocks, next: 0 }
    }
}

impl BlockSource for SliceSource<'_> {
    fn next_block(&mut self, out: &mut Block) -> bool {
        match self.blocks.get(self.next) {
            Some(b) => {
                self.next += 1;
                out.clone_from(b);
                true
            }
            None => {
                out.reset();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_reset_retains_capacity() {
        let mut b = Block::with_capacity(32);
        b.accesses.extend((0..20).map(MemAccess::load));
        b.ninstr = 20;
        let cap = b.accesses.capacity();
        b.reset();
        assert!(b.is_empty());
        assert_eq!(b.accesses.capacity(), cap);
        assert!(b.branch.is_none());
    }

    #[test]
    fn slice_source_replays_in_order() {
        let trace = vec![
            Block {
                pc: 1,
                ninstr: 4,
                ..Block::default()
            },
            Block {
                pc: 2,
                ninstr: 6,
                ..Block::default()
            },
        ];
        let mut src = SliceSource::new(&trace);
        let mut buf = Block::default();
        assert!(src.next_block(&mut buf));
        assert_eq!(buf.pc, 1);
        assert!(src.next_block(&mut buf));
        assert_eq!(buf.pc, 2);
        assert!(!src.next_block(&mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn mem_access_constructors() {
        assert!(!MemAccess::load(8).is_store);
        assert!(MemAccess::store(8).is_store);
    }

    #[test]
    fn block_source_through_references() {
        let trace = vec![Block {
            pc: 7,
            ninstr: 1,
            ..Block::default()
        }];
        let mut src = SliceSource::new(&trace);
        let mut by_ref: &mut SliceSource = &mut src;
        let mut buf = Block::default();
        assert!(BlockSource::next_block(&mut by_ref, &mut buf));
        assert_eq!(buf.pc, 7);
    }
}
