//! Differential proptests: lane-batched stepping vs scalar stepping.
//!
//! `MachineBatch::exec_blocks` must be a pure scheduling transform — it
//! may reorder *which lane the host works on next*, never what any lane
//! computes. These tests drive arbitrary multi-lane workload fragments
//! (mixed loads/stores over small and thrashing footprints, branches,
//! idle rounds, and mid-run resizes on every configurable unit) through
//! both paths and require byte-identical end states: the full
//! [`MachineCounters`] (cache, TLB, and branch statistics included,
//! serialized to JSON so every field participates) and the per-CU size
//! levels.
//!
//! The divergence rule under test is the one the drivers rely on: block
//! execution goes through the batch, while anything that reshapes a
//! machine (a resize with its flush) drops to the scalar path on the
//! lane's own `Machine`. If a future edit makes batched stepping observe
//! or share any cross-lane state, these tests fail on the first
//! interleaving that exposes it.

use ace_sim::{
    Block, BranchEvent, CuId, Machine, MachineBatch, MachineConfig, MemAccess, SizeLevel,
};
use proptest::prelude::*;

/// One lane's action in one round of the interleaved schedule.
#[derive(Debug, Clone)]
enum LaneOp {
    /// Lane diverged this round (reconfig boundary, block end, …): the
    /// batch simply doesn't list it.
    Idle,
    /// Lane executes a basic block.
    Block(Block),
    /// Lane applies a resize — the scalar-fallback path.
    Resize { cu: usize, level: u8 },
}

fn access_strategy() -> impl Strategy<Value = MemAccess> {
    // Two regimes: a small hot footprint (hits after warmup) and a
    // page-crossing stride (cache and DTLB misses), stores mixed in.
    (any::<bool>(), 0u64..0x4000, any::<bool>()).prop_map(|(hot, a, is_store)| {
        let addr = if hot {
            0x10_0000 + a * 8
        } else {
            0x100_0000 + (a % 256) * 4096 * 17
        };
        MemAccess { addr, is_store }
    })
}

fn block_strategy() -> impl Strategy<Value = Block> {
    (
        0u64..64,
        1u32..65,
        prop::collection::vec(access_strategy(), 0..12),
        prop::option::of((0u64..32, any::<bool>())),
    )
        .prop_map(|(pc, ninstr, accesses, branch)| Block {
            pc: 0x400 + pc * 0x40,
            ninstr,
            accesses,
            branch: branch.map(|(pc, taken)| BranchEvent {
                pc: 0x400 + pc * 0x40 + 0x3c,
                taken,
            }),
        })
}

fn op_strategy() -> impl Strategy<Value = LaneOp> {
    // Weighted choice via discriminant: 1/11 idle, 8/11 block, 2/11
    // resize (the vendored proptest has no `prop_oneof!`).
    (0u32..11, block_strategy(), 0usize..CuId::ALL.len(), 0u8..4).prop_map(
        |(pick, block, cu, level)| match pick {
            0 => LaneOp::Idle,
            1..=8 => LaneOp::Block(block),
            _ => LaneOp::Resize { cu, level },
        },
    )
}

/// `schedule[round][lane]` — every lane gets an op every round.
///
/// The vendored proptest has no `prop_flat_map`, so rounds are generated
/// at the maximum width and truncated to the drawn lane count.
fn schedule_strategy() -> impl Strategy<Value = Vec<Vec<LaneOp>>> {
    const MAX_LANES: usize = 8;
    (
        1usize..MAX_LANES + 1,
        prop::collection::vec(prop::collection::vec(op_strategy(), MAX_LANES), 1..24),
    )
        .prop_map(|(lanes, mut rounds)| {
            for round in &mut rounds {
                round.truncate(lanes);
            }
            rounds
        })
}

fn machines(n: usize) -> Vec<Machine> {
    (0..n)
        .map(|_| Machine::new(MachineConfig::table2()).expect("table2 config builds"))
        .collect()
}

fn apply_resize(machine: &mut Machine, cu: usize, level: u8) {
    let cu = CuId::ALL[cu];
    let level = SizeLevel::new(level).expect("level in range");
    let _ = machine.apply_resize(cu, level);
}

/// The complete observable end state of one lane.
fn fingerprint(machine: &mut Machine) -> String {
    let counters = serde_json::to_string(machine.counters()).expect("counters serialize");
    let levels: Vec<String> = CuId::ALL
        .iter()
        .map(|&cu| format!("{cu}={}", machine.level(cu)))
        .collect();
    format!("{counters} {}", levels.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_stepping_is_byte_identical_to_scalar(schedule in schedule_strategy()) {
        let lanes = schedule[0].len();

        // Scalar arm: each lane is stepped to completion round by round
        // on its own machine, in lane order.
        let mut scalar = machines(lanes);
        for round in &schedule {
            for (lane, op) in round.iter().enumerate() {
                match op {
                    LaneOp::Idle => {}
                    LaneOp::Block(block) => scalar[lane].exec_block(block),
                    LaneOp::Resize { cu, level } => apply_resize(&mut scalar[lane], *cu, *level),
                }
            }
        }

        // Batched arm: blocks go through `exec_blocks` as one work list
        // per round; resizes take the scalar fallback on the lane.
        let mut batch = MachineBatch::new(machines(lanes));
        for round in &schedule {
            let work: Vec<(usize, &Block)> = round
                .iter()
                .enumerate()
                .filter_map(|(lane, op)| match op {
                    LaneOp::Block(block) => Some((lane, block)),
                    _ => None,
                })
                .collect();
            batch.exec_blocks(&work);
            for (lane, op) in round.iter().enumerate() {
                if let LaneOp::Resize { cu, level } = op {
                    apply_resize(batch.lane_mut(lane), *cu, *level);
                }
            }
        }

        let mut batched = batch.into_machines();
        for (lane, (s, b)) in scalar.iter_mut().zip(batched.iter_mut()).enumerate() {
            prop_assert_eq!(
                fingerprint(s),
                fingerprint(b),
                "lane {} diverged between scalar and batched stepping",
                lane
            );
        }
    }

    #[test]
    fn batched_work_order_within_a_round_is_irrelevant(schedule in schedule_strategy()) {
        // Lanes share no state, so listing a round's work in reverse
        // lane order must not change any lane either.
        let mut forward = MachineBatch::new(machines(schedule[0].len()));
        let mut reverse = MachineBatch::new(machines(schedule[0].len()));
        for round in &schedule {
            let work: Vec<(usize, &Block)> = round
                .iter()
                .enumerate()
                .filter_map(|(lane, op)| match op {
                    LaneOp::Block(block) => Some((lane, block)),
                    _ => None,
                })
                .collect();
            let reversed: Vec<(usize, &Block)> = work.iter().rev().copied().collect();
            forward.exec_blocks(&work);
            reverse.exec_blocks(&reversed);
            for (lane, op) in round.iter().enumerate() {
                if let LaneOp::Resize { cu, level } = op {
                    apply_resize(forward.lane_mut(lane), *cu, *level);
                    apply_resize(reverse.lane_mut(lane), *cu, *level);
                }
            }
        }
        let mut forward = forward.into_machines();
        let mut reverse = reverse.into_machines();
        for (f, r) in forward.iter_mut().zip(reverse.iter_mut()) {
            prop_assert_eq!(fingerprint(f), fingerprint(r));
        }
    }
}
