//! Old-vs-new LRU equivalence: differential proptests of the rank-based
//! replacement policy against a faithful re-implementation of the
//! pre-rewrite scheme (array-of-structs lines, monotonic u64 tick,
//! scan-for-minimum victim search).
//!
//! The production `Cache` now keeps per-line recency as a rank byte
//! (0 = MRU .. ways-1 = LRU) instead of a timestamp. The two schemes are
//! provably equivalent — ticks are unique among valid lines, so the rank
//! permutation is exactly the tick order — but that proof is easy to
//! silently invalidate in a future edit (e.g. promoting on the wrong
//! side of an invalidation). These tests keep the old scheme around as
//! an executable oracle, including resize and flush transitions where
//! stale ranks on invalidated ways are the subtle case.

use ace_sim::{Cache, CacheGeometry, SizeLevel};
use proptest::prelude::*;

/// The pre-rewrite cache: one struct per line, u64 LRU ticks, linear
/// victim scan preferring the first invalid way, else the minimum tick.
struct TickCache {
    lines: Vec<TickLine>,
    sets: u32,
    ways: usize,
    offset_bits: u32,
    tick: u64,
    geom: CacheGeometry,
}

#[derive(Clone, Copy, Default)]
struct TickLine {
    tag: u64,
    lru: u64,
    valid: bool,
    dirty: bool,
}

impl TickCache {
    fn new(geom: CacheGeometry) -> TickCache {
        TickCache {
            lines: vec![TickLine::default(); (geom.max_sets() * geom.ways) as usize],
            sets: geom.max_sets(),
            ways: geom.ways as usize,
            offset_bits: geom.block_bytes.trailing_zeros(),
            tick: 0,
            geom,
        }
    }

    /// Returns (hit, dirty_writeback_addr).
    fn access(&mut self, addr: u64, is_store: bool) -> (bool, Option<u64>) {
        self.tick += 1;
        let line = addr >> self.offset_bits;
        let set = (line as u32) & (self.sets - 1);
        let base = set as usize * self.ways;
        for w in 0..self.ways {
            let l = &mut self.lines[base + w];
            if l.valid && l.tag == line {
                l.lru = self.tick;
                l.dirty |= is_store;
                return (true, None);
            }
        }
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for w in 0..self.ways {
            let l = &self.lines[base + w];
            if !l.valid {
                victim = w;
                break;
            }
            if l.lru < best {
                best = l.lru;
                victim = w;
            }
        }
        let v = &mut self.lines[base + victim];
        let writeback = if v.valid && v.dirty {
            Some(v.tag << self.offset_bits)
        } else {
            None
        };
        *v = TickLine {
            tag: line,
            lru: self.tick,
            valid: true,
            dirty: is_store,
        };
        (false, writeback)
    }

    /// Selective-sets resize; returns (valid_casualties, dirty_casualties).
    fn resize(&mut self, old_level: SizeLevel, new_level: SizeLevel) -> (u64, u64) {
        let old_sets = self.geom.sets_at(old_level);
        let new_sets = self.geom.sets_at(new_level);
        let mut valid = 0;
        let mut dirty = 0;
        if new_sets < old_sets {
            for set in new_sets..old_sets {
                for w in 0..self.ways {
                    let l = &mut self.lines[set as usize * self.ways + w];
                    if l.valid {
                        valid += 1;
                        dirty += l.dirty as u64;
                    }
                    *l = TickLine {
                        lru: l.lru,
                        ..TickLine::default()
                    };
                }
            }
        } else {
            let new_mask = (new_sets - 1) as u64;
            for set in 0..old_sets as u64 {
                for w in 0..self.ways {
                    let l = &mut self.lines[set as usize * self.ways + w];
                    if l.valid && (l.tag & new_mask) != set {
                        valid += 1;
                        dirty += l.dirty as u64;
                        *l = TickLine {
                            lru: l.lru,
                            ..TickLine::default()
                        };
                    }
                }
            }
        }
        self.sets = new_sets;
        (valid, dirty)
    }
}

fn geom() -> CacheGeometry {
    CacheGeometry {
        size_bytes: 4 * 1024,
        ways: 4,
        block_bytes: 64,
        hit_latency: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rank-based and tick-based LRU pick identical victims (observable
    /// through hits and dirty writeback addresses) on random streams.
    #[test]
    fn rank_lru_matches_tick_lru(
        ops in prop::collection::vec((0u64..1u64<<14, any::<bool>()), 1..800),
    ) {
        let mut new = Cache::new(geom()).unwrap();
        let mut old = TickCache::new(geom());
        for &(addr, is_store) in &ops {
            let out = new.access(addr, is_store);
            let (hit, wb) = old.access(addr, is_store);
            prop_assert_eq!(out.hit, hit, "hit mismatch at {:#x}", addr);
            prop_assert_eq!(out.writeback, wb, "writeback mismatch at {:#x}", addr);
        }
    }

    /// Equivalence survives resize transitions interleaved with accesses —
    /// the case where ranks of invalidated ways go stale.
    #[test]
    fn rank_lru_matches_tick_lru_across_resizes(
        segments in prop::collection::vec(
            (0u8..4, prop::collection::vec((0u64..1u64<<14, any::<bool>()), 1..120)),
            1..8,
        ),
    ) {
        let mut new = Cache::new(geom()).unwrap();
        let mut old = TickCache::new(geom());
        let mut level = SizeLevel::LARGEST;
        for (lvl, ops) in &segments {
            let target = SizeLevel::new(*lvl).unwrap();
            if target != level {
                let report = new.resize(target);
                let (valid, dirty) = old.resize(level, target);
                prop_assert_eq!(report.valid_lines, valid, "resize valid casualties");
                prop_assert_eq!(report.dirty_lines, dirty, "resize dirty casualties");
                level = target;
            }
            for &(addr, is_store) in ops {
                let out = new.access(addr, is_store);
                let (hit, wb) = old.access(addr, is_store);
                prop_assert_eq!(out.hit, hit, "hit mismatch at {:#x}", addr);
                prop_assert_eq!(out.writeback, wb, "writeback mismatch at {:#x}", addr);
            }
        }
    }
}

#[test]
fn oracle_sanity_lru_victim() {
    // Guard against the oracle itself being wrong: with 4 ways, filling a
    // set then touching three lines must evict the untouched one.
    let g = geom();
    let mut old = TickCache::new(g);
    let stride = 64 * g.max_sets() as u64;
    for i in 0..4 {
        old.access(i * stride, i == 1); // dirty the line that will be LRU
    }
    for i in [0u64, 2, 3] {
        assert!(old.access(i * stride, false).0);
    }
    let (hit, wb) = old.access(4 * stride, false);
    assert!(!hit);
    assert_eq!(wb, Some(stride), "untouched dirty line is the victim");
}
