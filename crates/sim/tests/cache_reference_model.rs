//! Differential testing of the cache against a naive reference model, plus
//! property tests for the trace codec.

use ace_sim::{Block, BranchEvent, Cache, CacheGeometry, MemAccess, SizeLevel};
use ace_sim::{BlockSource, TraceReader, TraceWriter};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A deliberately naive set-associative LRU cache: per-set recency queues
/// of line addresses, no statistics, no cleverness.
struct ReferenceCache {
    sets: Vec<VecDeque<(u64, bool)>>, // (line_addr, dirty), front = MRU
    ways: usize,
    offset_bits: u32,
}

impl ReferenceCache {
    fn new(geom: CacheGeometry, level: SizeLevel) -> ReferenceCache {
        ReferenceCache {
            sets: vec![VecDeque::new(); geom.sets_at(level) as usize],
            ways: geom.ways as usize,
            offset_bits: geom.block_bytes.trailing_zeros(),
        }
    }

    /// Returns (hit, dirty_writeback_line).
    fn access(&mut self, addr: u64, is_store: bool) -> (bool, Option<u64>) {
        let line = addr >> self.offset_bits;
        let set_idx = (line as usize) & (self.sets.len() - 1);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (l, dirty) = set.remove(pos).unwrap();
            set.push_front((l, dirty || is_store));
            return (true, None);
        }
        let mut writeback = None;
        if set.len() == self.ways {
            let (victim, dirty) = set.pop_back().unwrap();
            if dirty {
                writeback = Some(victim << self.offset_bits);
            }
        }
        set.push_front((line, is_store));
        (false, writeback)
    }
}

fn geom() -> CacheGeometry {
    CacheGeometry {
        size_bytes: 4 * 1024,
        ways: 2,
        block_bytes: 64,
        hit_latency: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The production cache and the reference model agree on every hit,
    /// miss, and dirty writeback for arbitrary access sequences.
    #[test]
    fn cache_matches_reference_model(
        ops in prop::collection::vec((0u64..1u64<<16, any::<bool>()), 1..600),
    ) {
        let mut cache = Cache::new(geom()).unwrap();
        let mut reference = ReferenceCache::new(geom(), SizeLevel::LARGEST);
        for &(addr, is_store) in &ops {
            let out = cache.access(addr, is_store);
            let (ref_hit, ref_wb) = reference.access(addr, is_store);
            prop_assert_eq!(out.hit, ref_hit, "hit mismatch at {:#x}", addr);
            prop_assert_eq!(out.writeback, ref_wb, "writeback mismatch at {:#x}", addr);
        }
    }

    /// Agreement also holds when operating at a smaller size level.
    #[test]
    fn shrunk_cache_matches_reference_model(
        level in 1u8..4,
        ops in prop::collection::vec((0u64..1u64<<16, any::<bool>()), 1..400),
    ) {
        let level = SizeLevel::new(level).unwrap();
        let mut cache = Cache::new(geom()).unwrap();
        cache.resize(level);
        let mut reference = ReferenceCache::new(geom(), level);
        for &(addr, is_store) in &ops {
            let out = cache.access(addr, is_store);
            let (ref_hit, ref_wb) = reference.access(addr, is_store);
            prop_assert_eq!(out.hit, ref_hit);
            prop_assert_eq!(out.writeback, ref_wb);
        }
    }

    /// Trace encode/decode is the identity on arbitrary block streams.
    #[test]
    fn trace_roundtrip(
        blocks in prop::collection::vec(
            (
                0u64..1u64<<40,             // pc
                1u32..10_000,               // ninstr
                prop::collection::vec((0u64..1u64<<40, any::<bool>()), 0..20),
                prop::option::of((0u64..1u64<<40, any::<bool>())),
            ),
            0..50,
        ),
    ) {
        let blocks: Vec<Block> = blocks
            .into_iter()
            .map(|(pc, ninstr, accesses, branch)| Block {
                pc,
                ninstr,
                accesses: accesses
                    .into_iter()
                    .map(|(addr, is_store)| MemAccess { addr, is_store })
                    .collect(),
                branch: branch.map(|(pc, taken)| BranchEvent { pc, taken }),
            })
            .collect();

        let mut writer = TraceWriter::new();
        for b in &blocks {
            writer.push(b);
        }
        let mut reader = TraceReader::new(writer.finish()).unwrap();
        let mut buf = Block::default();
        for expect in &blocks {
            prop_assert!(reader.next_block(&mut buf));
            prop_assert_eq!(&buf, expect);
        }
        prop_assert!(!reader.next_block(&mut buf));
    }
}

#[test]
fn reference_model_sanity() {
    // Guard against the oracle itself being wrong: a 2-way set must evict
    // the least recently used line.
    let mut r = ReferenceCache::new(geom(), SizeLevel::LARGEST);
    let stride = 64 * 32; // same-set stride at 32 sets
    assert!(!r.access(0, false).0);
    assert!(!r.access(stride, true).0);
    assert!(r.access(0, false).0);
    let (hit, wb) = r.access(2 * stride, false);
    assert!(!hit);
    assert_eq!(wb, Some(stride), "dirty LRU victim written back");
}
