//! The fleet driver: steps thousands of machines through the engine in
//! store-synchronized waves.
//!
//! Execution is **generational**: the fleet is split into waves of
//! `wave_size` machines. Every machine in a wave tunes against the same
//! frozen [`TuningStore`] snapshot; when the wave drains, its publications
//! are merged into the store **in machine-index order** (better-epi-wins)
//! before the next wave is admitted. Within a wave, machines fan out as
//! jobs on the work-stealing engine ([`ace_bench::run_jobs`]) — the
//! frozen snapshot plus submission-order merge is what makes the whole
//! fleet report byte-identical at any `--jobs` width.
//!
//! Admission: at most `admit_limit` machines of each wave are admitted
//! (the service's bounded in-flight window); the rest are shed and
//! counted in [`FleetOutcome::shed`]. Wall-clock throughput is returned
//! separately ([`FleetOutcome::wall`]) and must never enter the
//! deterministic report text.

use crate::store::TuningStore;
use crate::FLEET_SCHEMA_VERSION;
use ace_bench::{run_jobs, BenchError, BenchResult, Job};
use ace_core::{
    registry_version, run_batch, BatchLane, Experiment, NullManager, RunConfig, RunRecord,
    SchemeCtx, SchemeRegistry, StorePublication, WarmStartContext,
};
use ace_energy::EnergyModel;
use ace_runtime::DoConfig;
use ace_sim::MachineConfig;
use ace_telemetry::{Event, MemorySink, Telemetry};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The registry version fleet stores are stamped with: the fingerprint of
/// the default machine's CU registry.
pub fn fleet_registry_version() -> u16 {
    registry_version(&MachineConfig::table2().cu_registry())
}

/// The tuning scheme fleet machines run, resolved by id from the scheme
/// registry. The driver only requires that the scheme advertise the
/// warm-start capability ([`ace_core::WarmStartCapable`]); any registered
/// scheme that does can serve a fleet.
pub const FLEET_SCHEME: &str = "hotspot";

/// The DO-system profile fleet machines run under: aggressive promotion
/// (`hot_threshold` 2, one probing invocation) so hotspots classify and
/// converge within the short per-machine instruction budget.
pub fn fleet_do_config() -> DoConfig {
    DoConfig {
        hot_threshold: 2,
        probe_invocations: 1,
        ..DoConfig::default()
    }
}

/// One machine of the fleet: a workload preset plus the executor seed
/// that differentiates its dynamic behavior from its neighbours'.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Fleet-wide machine index (also the deterministic merge order).
    pub index: usize,
    /// Workload preset name.
    pub preset: String,
    /// Executor seed.
    pub seed: u64,
}

/// Configuration of one fleet run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Workload presets machines cycle through.
    pub presets: Vec<String>,
    /// Total machines in the fleet.
    pub machines: usize,
    /// Machines per store-synchronized wave.
    pub wave_size: usize,
    /// Admission bound: machines admitted per wave; the excess is shed.
    pub admit_limit: usize,
    /// Base of the per-machine seed sequence (`seed_base + index`).
    pub seed_base: u64,
    /// Per-machine instruction budget.
    pub instruction_limit: u64,
    /// Whether each machine also runs a non-adaptive baseline for energy
    /// accounting (doubles the work; the binary needs it, tests may not).
    pub measure_baseline: bool,
    /// Machines per lane-batched job: up to this many admitted machines
    /// **sharing a workload preset** advance round-robin through one
    /// [`ace_core::run_batch`] group, overlapping their dependency
    /// chains on a single core. Grouping is preset-affine because the
    /// lane win only exists for similar workloads — mixed lanes thrash
    /// the host cache and measure slower than scalar. Outcomes, the
    /// store log, the report, the obs series, and the telemetry event
    /// stream are byte-identical at any lane count (each lane traces
    /// into its own buffered child, and the wave merge re-sorts members
    /// into machine-index order before anything observable happens);
    /// only throughput changes. `0` and `1` both mean scalar stepping.
    /// Excluded from the serialized cache-key material for the same
    /// reason `wall` is: it cannot change results.
    ///
    /// Presets default to `1`: fleet lanes share a preset but differ in
    /// executor seed, and at fleet block counts that divergence (plus
    /// eight machines' simulated-cache metadata resident at once) costs
    /// more host-cache pressure than the dependency-chain break buys —
    /// the standard preset measured 9.2 machines/sec scalar vs 7.4 at 8
    /// lanes (see `benchmarks/JOURNAL.md`).
    #[serde(skip, default)]
    pub lanes: usize,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig::preset("standard").expect("standard preset exists")
    }
}

impl FleetConfig {
    /// Named fleet presets — the shapes the `fleet` binary (and CI)
    /// exercise:
    ///
    /// * `"smoke"` — 64 machines, waves of 16 (the CI smoke shape),
    /// * `"standard"` — 1000 machines, waves of 125,
    /// * `"stress"` — 4000 machines, waves of 250.
    pub fn preset(name: &str) -> Option<FleetConfig> {
        let (machines, wave_size) = match name {
            "smoke" => (64, 16),
            "standard" => (1000, 125),
            "stress" => (4000, 250),
            _ => return None,
        };
        Some(FleetConfig {
            presets: ace_workloads::PRESET_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            machines,
            wave_size,
            admit_limit: wave_size,
            seed_base: 1,
            instruction_limit: 8_000_000,
            measure_baseline: true,
            lanes: 1,
        })
    }

    /// The names [`FleetConfig::preset`] accepts.
    pub const PRESET_NAMES: [&'static str; 3] = ["smoke", "standard", "stress"];

    /// Expands the config into its machine list: machine `i` runs preset
    /// `presets[i % presets.len()]` with seed `seed_base + i`.
    pub fn machine_specs(&self) -> Vec<MachineSpec> {
        (0..self.machines)
            .map(|index| MachineSpec {
                index,
                preset: self.presets[index % self.presets.len()].clone(),
                seed: self.seed_base + index as u64,
            })
            .collect()
    }
}

/// The deterministic per-machine result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineOutcome {
    /// Which machine.
    pub spec: MachineSpec,
    /// Managed-run IPC.
    pub ipc: f64,
    /// Managed-run retired instructions.
    pub instret: u64,
    /// Managed-run L1D energy (nJ).
    pub l1d_nj: f64,
    /// Managed-run L2 energy (nJ).
    pub l2_nj: f64,
    /// Non-adaptive baseline `(ipc, l1d_nj, l2_nj)`, when measured.
    pub baseline: Option<(f64, f64, f64)>,
    /// Configuration trials the machine's tuner measured.
    pub tunings: u64,
    /// Hotspots that completed tuning.
    pub tuned_hotspots: u64,
    /// Store lookups that hit.
    pub warm_hits: u64,
    /// Store lookups that missed.
    pub warm_misses: u64,
    /// Trials avoided via warm starts.
    pub warm_trials_saved: u64,
    /// Selections the machine published.
    pub store_publishes: u64,
}

/// One fleet pass: every admitted machine's outcome (in machine-index
/// order) plus driver-level counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Fleet file-format version (mirrors the cache schema).
    pub schema_version: u32,
    /// Per-machine rows, in machine-index order.
    pub machines: Vec<MachineOutcome>,
    /// Machines shed by the admission bound.
    pub shed: u64,
    /// Waves the pass ran.
    pub waves: usize,
    /// Worker wall-clock summed across machines — **not** part of the
    /// deterministic report (schedule-dependent); serialized as zero.
    #[serde(skip, default)]
    pub wall: Duration,
}

impl FleetOutcome {
    /// Machines that actually ran.
    pub fn ran(&self) -> u64 {
        self.machines.len() as u64
    }

    /// Total configuration trials across the fleet.
    pub fn tunings(&self) -> u64 {
        self.machines.iter().map(|m| m.tunings).sum()
    }

    /// Total store lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses()
    }

    /// Total warm-start hits.
    pub fn hits(&self) -> u64 {
        self.machines.iter().map(|m| m.warm_hits).sum()
    }

    /// Total warm-start misses.
    pub fn misses(&self) -> u64 {
        self.machines.iter().map(|m| m.warm_misses).sum()
    }

    /// Fleet-wide store hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }

    /// Total trials avoided via warm starts.
    pub fn trials_saved(&self) -> u64 {
        self.machines.iter().map(|m| m.warm_trials_saved).sum()
    }

    /// Total publications machines made.
    pub fn publishes(&self) -> u64 {
        self.machines.iter().map(|m| m.store_publishes).sum()
    }

    /// Fleet-aggregate L1D energy saving vs the per-machine baselines, in
    /// percent (0 when baselines were not measured).
    pub fn l1d_saving_pct(&self) -> f64 {
        aggregate_saving(
            self.machines
                .iter()
                .filter_map(|m| m.baseline.map(|(_, base_l1d, _)| (m.l1d_nj, base_l1d))),
        )
    }

    /// Fleet-aggregate L2 energy saving vs the per-machine baselines, in
    /// percent (0 when baselines were not measured).
    pub fn l2_saving_pct(&self) -> f64 {
        aggregate_saving(
            self.machines
                .iter()
                .filter_map(|m| m.baseline.map(|(_, _, base_l2)| (m.l2_nj, base_l2))),
        )
    }

    /// Mean slowdown vs the per-machine baselines, in percent.
    pub fn mean_slowdown_pct(&self) -> f64 {
        let rows: Vec<f64> = self
            .machines
            .iter()
            .filter_map(|m| {
                m.baseline.and_then(|(base_ipc, _, _)| {
                    (base_ipc > 0.0).then(|| 100.0 * (1.0 - m.ipc / base_ipc))
                })
            })
            .collect();
        if rows.is_empty() {
            0.0
        } else {
            rows.iter().sum::<f64>() / rows.len() as f64
        }
    }
}

fn aggregate_saving(pairs: impl Iterator<Item = (f64, f64)>) -> f64 {
    let (mut managed, mut base) = (0.0, 0.0);
    for (m, b) in pairs {
        managed += m;
        base += b;
    }
    if base <= 0.0 {
        0.0
    } else {
        100.0 * (1.0 - managed / base)
    }
}

/// Runs one fleet pass against `store` on a pool of `jobs` workers.
///
/// Publications are merged into `store` at each wave barrier, in
/// machine-index order; the next wave snapshots the merged state. The
/// returned outcome (and the store's final state) is byte-identical at
/// any `jobs` width.
///
/// # Errors
///
/// Fails when `store` is stamped with a different registry version than
/// the fleet's machines, on unknown presets, or when any machine run
/// fails; every admitted machine still runs, and the error aggregates all
/// failures.
pub fn run_fleet(
    cfg: &FleetConfig,
    store: &mut TuningStore,
    jobs: usize,
    telemetry: &Telemetry,
) -> BenchResult<FleetOutcome> {
    run_fleet_observed(cfg, store, jobs, telemetry, None)
}

/// [`run_fleet`] with a wave-health sampler attached: after every wave's
/// merge the sampler records one cumulative obs snapshot (see
/// [`crate::obs::ObsSampler`]). Each wave is also bracketed by a
/// `"wave"` telemetry span stamped with the fleet's cumulative retired
/// instructions and (IPC-derived) cycles — harness-level spans that
/// never enter the per-machine event streams. With `obs` `None` and
/// telemetry off, the path is identical to the pre-obs driver.
///
/// # Errors
///
/// See [`run_fleet`].
pub fn run_fleet_observed(
    cfg: &FleetConfig,
    store: &mut TuningStore,
    jobs: usize,
    telemetry: &Telemetry,
    mut obs: Option<&mut crate::obs::ObsSampler>,
) -> BenchResult<FleetOutcome> {
    if store.version() != fleet_registry_version() {
        return Err(BenchError::msg(format!(
            "store registry version {:#06x} does not match the fleet machines' {:#06x}",
            store.version(),
            fleet_registry_version()
        )));
    }
    if cfg.presets.is_empty() || cfg.machines == 0 || cfg.wave_size == 0 {
        return Err(BenchError::msg(
            "fleet config needs at least one preset, one machine, and a positive wave size",
        ));
    }
    let specs = cfg.machine_specs();
    let mut outcome = FleetOutcome {
        schema_version: FLEET_SCHEMA_VERSION,
        machines: Vec::with_capacity(specs.len()),
        shed: 0,
        waves: 0,
        wall: Duration::ZERO,
    };
    let mut failures: Vec<String> = Vec::new();
    // Span stamps are fleet-cumulative architectural counters: retired
    // instructions summed over merged machines, cycles derived from each
    // machine's deterministic IPC. Purely wave-indexed — no wall clock —
    // so the emitted span events are byte-identical at any `jobs` width.
    let mut cum_instret: u64 = 0;
    let mut cum_cycle: u64 = 0;
    for wave in specs.chunks(cfg.wave_size) {
        outcome.waves += 1;
        let admitted = &wave[..cfg.admit_limit.max(1).min(wave.len())];
        let wave_shed = (wave.len() - admitted.len()) as u64;
        outcome.shed += wave_shed;
        let wave_start = outcome.machines.len();
        let span = telemetry.span_at("wave", cum_instret, cum_cycle);
        let snapshot = store.snapshot();
        // Lane groups are preset-affine: the batched win only exists
        // when a group's lanes run similar workloads (mixed-preset lanes
        // thrash the host cache and measure *slower* than scalar), and
        // fleet machine `i` runs preset `i % presets.len()`, so
        // consecutive machines are maximally dissimilar. Bucket the
        // admitted slice by preset (machine-index order within each
        // bucket), chunk each bucket into lane groups, and submit groups
        // ordered by first member index. Group shape cannot affect
        // results — every machine tunes against the wave's frozen
        // snapshot — and the merge below re-sorts members into
        // machine-index order before anything observable happens.
        let lanes = cfg.lanes.max(1);
        let mut buckets: Vec<(&str, Vec<MachineSpec>)> = Vec::new();
        for spec in admitted {
            match buckets.iter_mut().find(|(p, _)| *p == spec.preset) {
                Some((_, bucket)) => bucket.push(spec.clone()),
                None => buckets.push((spec.preset.as_str(), vec![spec.clone()])),
            }
        }
        let mut groups: Vec<Vec<MachineSpec>> = buckets
            .into_iter()
            .flat_map(|(_, bucket)| {
                bucket
                    .chunks(lanes)
                    .map(<[MachineSpec]>::to_vec)
                    .collect::<Vec<_>>()
            })
            .collect();
        groups.sort_by_key(|group| group[0].index);
        let pool: Vec<Job<Vec<GroupMember>>> = groups
            .into_iter()
            .map(|group| {
                let key = match group.as_slice() {
                    [spec] => format!("m{}/{}#{}", spec.index, spec.preset, spec.seed),
                    _ => format!(
                        "m{}..m{} [{}x {}]",
                        group[0].index,
                        group[group.len() - 1].index,
                        group.len(),
                        group[0].preset
                    ),
                };
                let snapshot = snapshot.clone();
                let limit = cfg.instruction_limit;
                let measure_baseline = cfg.measure_baseline;
                Job::new(key, move |tel| {
                    run_machine_group(&group, &snapshot, limit, measure_baseline, tel)
                })
            })
            .collect();
        let mut wave_members: Vec<GroupMember> = Vec::new();
        for job_outcome in run_jobs(pool, jobs, telemetry) {
            outcome.wall += job_outcome.wall;
            match job_outcome.result {
                Ok(members) => wave_members.extend(members),
                Err(e) => failures.push(format!("{}: {e}", job_outcome.key)),
            }
        }
        // Machine-index order restored here — publish order, cumulative
        // span counters, the outcome rows, and the absorbed telemetry
        // event stream all match scalar stepping byte-for-byte.
        wave_members.sort_by_key(|member| member.machine.spec.index);
        for member in wave_members {
            telemetry.absorb_child(&member.telemetry, &member.events);
            for publication in member.publications {
                store.publish(publication)?;
            }
            cum_instret += member.machine.instret;
            if member.machine.ipc > 0.0 {
                cum_cycle += (member.machine.instret as f64 / member.machine.ipc) as u64;
            }
            outcome.machines.push(member.machine);
        }
        span.end_at(cum_instret, cum_cycle);
        if !failures.is_empty() {
            break;
        }
        if let Some(sampler) = obs.as_deref_mut() {
            sampler.record_wave(
                outcome.waves as u64,
                &outcome.machines[wave_start..],
                wave_shed,
                store.len(),
            );
        }
    }
    // Fleet totals belong in the metrics registry (satellite of the obs
    // layer): deterministic counters CI can scrape alongside the
    // engine's scheduling histograms.
    if let Some(metrics) = telemetry.metrics() {
        metrics
            .counter("fleet.machines_ran")
            .add(outcome.machines.len() as u64);
        metrics.counter("fleet.shed").add(outcome.shed);
        metrics.counter("fleet.waves").add(outcome.waves as u64);
    }
    if !failures.is_empty() {
        return Err(BenchError::msg(failures.join("; ")));
    }
    Ok(outcome)
}

/// One machine's complete product, buffered so the wave merge can
/// restore machine-index order across lane groups: the outcome row, the
/// store publications, and the machine's telemetry (counter handle plus
/// drained event buffer) held back for index-ordered absorption.
struct GroupMember {
    machine: MachineOutcome,
    publications: Vec<StorePublication>,
    telemetry: Telemetry,
    events: Vec<Event>,
}

fn run_machine(
    spec: MachineSpec,
    snapshot: WarmStartContext,
    limit: u64,
    measure_baseline: bool,
    telemetry: &Telemetry,
) -> BenchResult<(MachineOutcome, Vec<StorePublication>)> {
    let program = ace_workloads::WorkloadRegistry::builtin()
        .resolve_program(&spec.preset)
        .map_err(|e| BenchError::msg(e.to_string()))?;
    let registry = SchemeRegistry::builtin();
    let scheme = registry
        .get(FLEET_SCHEME)
        .ok_or_else(|| BenchError::msg(format!("scheme {FLEET_SCHEME:?} is not registered")))?;
    let mut mgr = scheme.build(&SchemeCtx {
        program: &program,
        model: EnergyModel::default_180nm(),
    });
    match mgr.warm_start() {
        Some(ws) => ws.set_warm_start(snapshot),
        None => {
            return Err(BenchError::msg(format!(
                "fleet scheme {FLEET_SCHEME:?} does not support warm starts"
            )))
        }
    }
    let record = Experiment::program(program)
        .seed(spec.seed)
        .do_config(fleet_do_config())
        .instruction_limit(limit)
        .telemetry(telemetry)
        .run_with(&mut *mgr)?;
    let report = mgr.scheme_report(&record);
    if let Some(metrics) = telemetry.metrics() {
        report.record_metrics(metrics);
    }
    let publications = mgr
        .warm_start()
        .and_then(|ws| ws.take_warm_start())
        .map(WarmStartContext::into_publications)
        .unwrap_or_default();
    // The baseline leg is energy accounting, not fleet behavior: it runs
    // untraced so telemetry event counts describe the managed fleet only.
    let baseline = if measure_baseline {
        let base = Experiment::preset(&spec.preset)
            .seed(spec.seed)
            .do_config(fleet_do_config())
            .instruction_limit(limit)
            .run_with(&mut NullManager)?;
        Some((base.ipc, base.energy.l1d_nj, base.energy.l2_nj))
    } else {
        None
    };
    let machine = MachineOutcome {
        ipc: record.ipc,
        instret: record.instret,
        l1d_nj: record.energy.l1d_nj,
        l2_nj: record.energy.l2_nj,
        baseline,
        tunings: report.tunings,
        tuned_hotspots: report.tuned_scopes,
        warm_hits: report.warm_hits,
        warm_misses: report.warm_misses,
        warm_trials_saved: report.warm_trials_saved,
        store_publishes: report.store_publishes,
        spec,
    };
    Ok((machine, publications))
}

/// The [`RunConfig`] a fleet leg runs under — field-for-field what
/// [`run_machine`]'s `Experiment` builder produces, so the batched and
/// scalar paths run byte-identical configurations.
fn fleet_run_config(seed: u64, limit: u64, telemetry: &Telemetry) -> RunConfig {
    RunConfig {
        energy: EnergyModel::default_180nm(),
        do_config: fleet_do_config(),
        instruction_limit: Some(limit),
        workload_seed: Some(seed),
        telemetry: telemetry.clone(),
        ..RunConfig::default()
    }
}

/// Gives one lane its telemetry: a buffered child of `telemetry` when
/// tracing is on (so the wave merge can absorb lanes in machine-index
/// order regardless of group shape), or a disabled handle.
fn lane_telemetry(telemetry: &Telemetry) -> (Telemetry, Option<std::sync::Arc<MemorySink>>) {
    if telemetry.is_enabled() {
        let (child, sink) = Telemetry::buffered();
        (child, Some(sink))
    } else {
        (Telemetry::off(), None)
    }
}

/// Runs one lane group inside an engine job. A single member runs
/// through the scalar [`run_machine`]; two or more advance round-robin
/// through [`run_batch`] — managed legs first, then (when measured) the
/// untraced baseline legs. Per machine, the operation sequence matches
/// [`run_machine`] exactly. Every member (singles included) traces into
/// its own buffered telemetry child which is returned, *not* absorbed:
/// lane groups are preset-affine so members of one group may be
/// non-consecutive, and only the wave merge knows the machine-index
/// order that keeps the parent event stream byte-identical to scalar.
fn run_machine_group(
    specs: &[MachineSpec],
    snapshot: &WarmStartContext,
    limit: u64,
    measure_baseline: bool,
    telemetry: &Telemetry,
) -> BenchResult<Vec<GroupMember>> {
    if let [spec] = specs {
        let (child, sink) = lane_telemetry(telemetry);
        let (machine, publications) = run_machine(
            spec.clone(),
            snapshot.clone(),
            limit,
            measure_baseline,
            &child,
        )?;
        let events = sink.as_ref().map(|s| s.drain()).unwrap_or_default();
        return Ok(vec![GroupMember {
            machine,
            publications,
            telemetry: child,
            events,
        }]);
    }
    let registry = SchemeRegistry::builtin();
    let scheme = registry
        .get(FLEET_SCHEME)
        .ok_or_else(|| BenchError::msg(format!("scheme {FLEET_SCHEME:?} is not registered")))?;
    let mut programs = Vec::with_capacity(specs.len());
    let mut managers = Vec::with_capacity(specs.len());
    let mut children = Vec::with_capacity(specs.len());
    let workloads = ace_workloads::WorkloadRegistry::builtin();
    for spec in specs {
        let program = workloads
            .resolve_program(&spec.preset)
            .map_err(|e| BenchError::msg(e.to_string()))?;
        let mut mgr = scheme.build(&SchemeCtx {
            program: &program,
            model: EnergyModel::default_180nm(),
        });
        match mgr.warm_start() {
            Some(ws) => ws.set_warm_start(snapshot.clone()),
            None => {
                return Err(BenchError::msg(format!(
                    "fleet scheme {FLEET_SCHEME:?} does not support warm starts"
                )))
            }
        }
        programs.push(program);
        managers.push(mgr);
        children.push(lane_telemetry(telemetry));
    }

    // Managed legs, lane-batched.
    let records = run_batch(
        specs
            .iter()
            .zip(&programs)
            .zip(managers.iter_mut())
            .zip(&children)
            .map(|(((spec, program), mgr), (child, _))| BatchLane {
                program,
                cfg: fleet_run_config(spec.seed, limit, child),
                manager: &mut **mgr,
            })
            .collect(),
    )
    .map_err(|e| BenchError::msg(e.to_string()))?;

    // Baseline legs are energy accounting, not fleet behavior: untraced,
    // lane-batched like the managed legs.
    let baselines: Vec<Option<RunRecord>> = if measure_baseline {
        let mut nulls: Vec<NullManager> = specs.iter().map(|_| NullManager).collect();
        run_batch(
            specs
                .iter()
                .zip(&programs)
                .zip(nulls.iter_mut())
                .map(|((spec, program), null)| BatchLane {
                    program,
                    cfg: fleet_run_config(spec.seed, limit, &Telemetry::off()),
                    manager: null,
                })
                .collect(),
        )
        .map_err(|e| BenchError::msg(e.to_string()))?
        .into_iter()
        .map(Some)
        .collect()
    } else {
        specs.iter().map(|_| None).collect()
    };

    let mut members = Vec::with_capacity(specs.len());
    for (((spec, mgr), (child, sink)), (record, base)) in specs
        .iter()
        .zip(managers.iter_mut())
        .zip(children)
        .zip(records.into_iter().zip(baselines))
    {
        let report = mgr.scheme_report(&record);
        if let Some(metrics) = child.metrics() {
            report.record_metrics(metrics);
        }
        let events = sink.as_ref().map(|s| s.drain()).unwrap_or_default();
        let publications = mgr
            .warm_start()
            .and_then(|ws| ws.take_warm_start())
            .map(WarmStartContext::into_publications)
            .unwrap_or_default();
        let machine = MachineOutcome {
            ipc: record.ipc,
            instret: record.instret,
            l1d_nj: record.energy.l1d_nj,
            l2_nj: record.energy.l2_nj,
            baseline: base.map(|b| (b.ipc, b.energy.l1d_nj, b.energy.l2_nj)),
            tunings: report.tunings,
            tuned_hotspots: report.tuned_scopes,
            warm_hits: report.warm_hits,
            warm_misses: report.warm_misses,
            warm_trials_saved: report.warm_trials_saved,
            store_publishes: report.store_publishes,
            spec: spec.clone(),
        };
        members.push(GroupMember {
            machine,
            publications,
            telemetry: child,
            events,
        });
    }
    Ok(members)
}

/// Renders the deterministic two-pass fleet report (the `fleet` binary's
/// stdout body). Wall-clock never appears here — throughput goes to
/// stderr.
pub fn render_report(
    cfg: &FleetConfig,
    cold: &FleetOutcome,
    warm: &FleetOutcome,
    store: &TuningStore,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== ace-fleet: {} machines sharing a warm-start tuning store ===",
        cfg.machines
    );
    let _ = writeln!(
        out,
        "fleet: {} machines over {} waves (wave size {}, admit limit {}, {} shed), {} instr/machine",
        cfg.machines, cold.waves, cfg.wave_size, cfg.admit_limit, cold.shed, cfg.instruction_limit
    );
    let _ = writeln!(
        out,
        "store: registry version {:#06x}, {} entries ({} evicted, {} stale dropped)",
        store.version(),
        store.len(),
        store.evictions(),
        store.stale_dropped()
    );
    out.push('\n');
    let row = |pass: &str, o: &FleetOutcome| {
        vec![
            pass.to_string(),
            format!("{}", o.ran()),
            format!("{}", o.tunings()),
            format!("{}", o.lookups()),
            format!("{}", o.hits()),
            format!("{:.1}", 100.0 * o.hit_rate()),
            format!("{}", o.trials_saved()),
            format!("{}", o.publishes()),
            format!("{:.1}", o.l1d_saving_pct()),
            format!("{:.1}", o.l2_saving_pct()),
            format!("{:.2}", o.mean_slowdown_pct()),
        ]
    };
    out.push_str(&ace_bench::format_table(
        &[
            "pass", "machines", "tunings", "lookups", "hits", "hit%", "saved", "pubs", "L1Dsave%",
            "L2save%", "slow%",
        ],
        &[row("cold", cold), row("warm", warm)],
    ));
    out.push('\n');
    let cold_tunings = cold.tunings().max(1);
    let _ = writeln!(
        out,
        "warm vs cold: {:.1}% fewer tuning trials ({} vs {}), warm hit rate {:.1}%",
        100.0 * (1.0 - warm.tunings() as f64 / cold_tunings as f64),
        warm.tunings(),
        cold.tunings(),
        100.0 * warm.hit_rate()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_expand_deterministically() {
        let cfg = FleetConfig::preset("smoke").unwrap();
        assert_eq!(cfg.machines, 64);
        let specs = cfg.machine_specs();
        assert_eq!(specs.len(), 64);
        assert_eq!(specs[0].preset, "compress");
        assert_eq!(specs[1].preset, "db");
        assert_eq!(specs[7].preset, "compress", "presets cycle");
        assert_eq!(specs[7].seed, cfg.seed_base + 7);
        assert_eq!(specs, cfg.machine_specs(), "expansion is pure");
        assert!(FleetConfig::preset("nope").is_none());
        for name in FleetConfig::PRESET_NAMES {
            assert!(FleetConfig::preset(name).is_some());
        }
    }

    #[test]
    fn standard_preset_is_a_thousand_machines() {
        let cfg = FleetConfig::default();
        assert!(cfg.machines >= 1000, "the fleet must be fleet-sized");
        assert_eq!(cfg.machines % cfg.wave_size, 0);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let cfg = FleetConfig::preset("smoke").unwrap();
        let mut store = TuningStore::in_memory(fleet_registry_version().wrapping_add(1), 16);
        let err = run_fleet(&cfg, &mut store, 1, &Telemetry::off()).unwrap_err();
        assert!(err.to_string().contains("registry version"), "{err}");
    }

    #[test]
    fn admission_sheds_beyond_the_limit() {
        let mut cfg = FleetConfig::preset("smoke").unwrap();
        cfg.machines = 8;
        cfg.wave_size = 4;
        cfg.admit_limit = 3;
        cfg.measure_baseline = false;
        cfg.instruction_limit = 200_000; // tiny: shedding math, not tuning
        let mut store = TuningStore::in_memory(fleet_registry_version(), 64);
        let out = run_fleet(&cfg, &mut store, 2, &Telemetry::off()).unwrap();
        assert_eq!(out.waves, 2);
        assert_eq!(out.shed, 2, "one machine shed per full wave");
        assert_eq!(out.ran(), 6);
        // Shed machines are the wave tails: indices 3 and 7 never ran.
        let ran: Vec<usize> = out.machines.iter().map(|m| m.spec.index).collect();
        assert_eq!(ran, vec![0, 1, 2, 4, 5, 6]);
    }
}
