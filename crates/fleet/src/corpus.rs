//! Fleet-side differential oracle over generated workloads: the
//! **cold-vs-warm store fingerprint** check the bench `corpus` experiment
//! cannot run itself (ace-bench cannot depend on ace-fleet without a
//! cycle), reachable as `fleet --corpus N`.
//!
//! The oracle: a fleet of machines running [`ace_workloads::gen`]erated
//! workloads is driven through a cold pass then a warm pass, and the
//! byte-level fingerprints of (cold outcome, store after cold, warm
//! outcome, store after warm) must be identical across worker-pool
//! widths **and** across independent repetitions from a fresh store.
//! Generated specs reach the driver the way a user's would — written to
//! disk and resolved by path through
//! [`ace_workloads::WorkloadRegistry`] — so the spec-file plumbing is
//! under the same oracle.

use crate::driver::{fleet_registry_version, run_fleet, FleetConfig, FleetOutcome};
use crate::store::TuningStore;
use ace_bench::{BenchError, BenchResult};
use ace_telemetry::Telemetry;
use ace_workloads::{gen, GenParams};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Per-machine instruction budget of the corpus fleet: the fleet
/// presets' budget — generated workloads need the same headroom for
/// tuning episodes to converge and publish, or the store never fills and
/// the fingerprint oracle degenerates to hashing emptiness.
const CORPUS_LIMIT: u64 = 8_000_000;

/// FNV-1a 64 over `bytes`.
fn fnv(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// Byte-level fingerprint of a store's full content: every entry in
/// signature-sorted order, configurations and exact float bits included.
pub fn store_fingerprint(store: &TuningStore) -> String {
    let mut text = String::new();
    for (signature, entry) in store.entries_sorted() {
        let _ = writeln!(
            text,
            "{signature:?}|{:?}|{:016x}|{:016x}|{}|{}",
            entry.config,
            entry.ipc.to_bits(),
            entry.epi_nj.to_bits(),
            entry.trials,
            entry.stamp
        );
    }
    format!("{:016x}", fnv(text.bytes()))
}

/// Byte-level fingerprint of one pass outcome (serialized rows; the
/// schedule-dependent `wall` field is skipped by its serde attribute).
pub fn outcome_fingerprint(outcome: &FleetOutcome) -> String {
    let json = serde_json::to_string(outcome).expect("fleet outcome serializes");
    format!("{:016x}", fnv(json.bytes()))
}

/// The four fingerprints one cold+warm fleet run produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetFingerprints {
    /// Cold-pass outcome rows.
    pub cold: String,
    /// Store content after the cold pass.
    pub store_cold: String,
    /// Warm-pass outcome rows.
    pub warm: String,
    /// Store content after the warm pass.
    pub store_warm: String,
    /// Warm-pass store hits (informational, not part of the oracle).
    pub warm_hits: u64,
}

/// Runs cold+warm passes from a fresh in-memory store at `jobs` width
/// and fingerprints every observable.
///
/// # Errors
///
/// Propagates driver failures.
pub fn fleet_fingerprints(
    cfg: &FleetConfig,
    jobs: usize,
    telemetry: &Telemetry,
) -> BenchResult<FleetFingerprints> {
    let mut store = TuningStore::in_memory(fleet_registry_version(), TuningStore::DEFAULT_CAPACITY);
    let cold = run_fleet(cfg, &mut store, jobs, telemetry)?;
    let store_cold = store_fingerprint(&store);
    let warm = run_fleet(cfg, &mut store, jobs, telemetry)?;
    Ok(FleetFingerprints {
        cold: outcome_fingerprint(&cold),
        store_cold,
        warm: outcome_fingerprint(&warm),
        store_warm: store_fingerprint(&store),
        warm_hits: warm.hits(),
    })
}

/// Writes `count` generated specs under `dir` and returns their paths
/// (the corpus fleet's preset list).
fn write_corpus_specs(dir: &Path, count: usize, seed_base: u64) -> BenchResult<Vec<String>> {
    std::fs::create_dir_all(dir).map_err(|e| BenchError::msg(format!("{}: {e}", dir.display())))?;
    (0..count)
        .map(|i| {
            let spec = gen(seed_base + i as u64, &GenParams::default());
            let path = dir.join(format!("{}.json", spec.name));
            let json = serde_json::to_string(&spec).expect("spec serializes");
            std::fs::write(&path, json + "\n")
                .map_err(|e| BenchError::msg(format!("{}: {e}", path.display())))?;
            Ok(path.display().to_string())
        })
        .collect()
}

/// The `fleet --corpus N` entry point: builds a fleet over `count`
/// generated workloads (each machine resolves its workload from a spec
/// file on disk), runs cold+warm at `jobs` width, then re-runs the whole
/// thing at width 1 and once more at `jobs` — every fingerprint
/// quadruple must match. Returns the report text; on a violation the
/// spec files are left in place and an error names the diverging
/// fingerprint.
///
/// # Errors
///
/// Driver failures, spec-file I/O failures, and oracle violations.
pub fn run_corpus_oracle(count: usize, jobs: usize, telemetry: &Telemetry) -> BenchResult<String> {
    let count = count.max(1);
    let dir: PathBuf =
        std::env::temp_dir().join(format!("ace-fleet-corpus-{}", std::process::id()));
    let presets = write_corpus_specs(
        &dir,
        count,
        ace_bench::experiments::corpus::DEFAULT_SEED_BASE,
    )?;
    // Two machines per workload so warm starts have a same-workload
    // neighbour to hit; one wave per repetition of the preset cycle.
    let cfg = FleetConfig {
        presets,
        machines: count * 2,
        wave_size: count,
        admit_limit: count,
        seed_base: 1,
        instruction_limit: CORPUS_LIMIT,
        measure_baseline: false,
        lanes: 1,
    };
    let reference = fleet_fingerprints(&cfg, jobs, telemetry)?;
    let serial = fleet_fingerprints(&cfg, 1, telemetry)?;
    let repeat = fleet_fingerprints(&cfg, jobs, telemetry)?;
    let mut violations = Vec::new();
    if serial != reference {
        violations.push(format!(
            "jobs=1 fingerprints diverge from jobs={jobs}: {serial:?} != {reference:?}"
        ));
    }
    if repeat != reference {
        violations.push(format!(
            "repetition at jobs={jobs} diverges from the first run: {repeat:?} != {reference:?}"
        ));
    }
    if !violations.is_empty() {
        return Err(BenchError::msg(format!(
            "fleet corpus oracle violated ({} spec files kept under {}): {}",
            count,
            dir.display(),
            violations.join("; ")
        )));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet corpus: {count} generated workloads x {} machines, cold+warm x3 runs (jobs {jobs}, 1, {jobs})",
        cfg.machines
    );
    let _ = writeln!(
        out,
        "fingerprints stable: cold {} / store {} -> warm {} / store {} ({} warm hits)",
        reference.cold,
        reference.store_cold,
        reference.warm,
        reference.store_warm,
        reference.warm_hits
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_fingerprint_tracks_content() {
        let store = TuningStore::in_memory(fleet_registry_version(), 16);
        let empty = store_fingerprint(&store);
        assert_eq!(empty.len(), 16);
        assert_eq!(empty, store_fingerprint(&store), "fingerprint is pure");
    }

    #[test]
    fn corpus_oracle_passes_on_a_tiny_corpus() {
        let report = run_corpus_oracle(2, 2, &Telemetry::off()).unwrap();
        assert!(report.contains("fingerprints stable"), "{report}");
    }
}
