//! The fleet experiment binary: a cold pass then a warm pass over the
//! same fleet of machines, sharing one persistent tuning store.
//!
//! Flags:
//!
//! * `--preset <smoke|standard|stress>` — fleet shape (default
//!   `standard`: 1000 machines in waves of 125).
//! * `--machines <N>` / `--wave-size <N>` / `--admit-limit <N>` /
//!   `--seed-base <N>` / `--limit <instr>` — override the preset shape.
//! * `--jobs <N>` — worker-pool width; stdout is byte-identical at any
//!   width (throughput goes to stderr).
//! * `--lanes <N>` — machines per lane-batched job (default 1, i.e.
//!   scalar stepping). Grouped machines sharing a preset advance
//!   round-robin through one machine batch on a single worker,
//!   overlapping their dependency chains; stdout, the store log, the
//!   obs series, and the telemetry stream are byte-identical at any
//!   lane count. Scalar is the default because fleet lanes diverge by
//!   seed and measured slower batched (see `benchmarks/JOURNAL.md`).
//! * `--store <path>` — tuning-store log (default
//!   `results/fleet_store.jsonl`). A pre-existing log warm-starts the
//!   first pass.
//! * `--no-baseline` — skip the per-machine non-adaptive baseline legs
//!   (energy-saving columns read 0).
//! * `--fresh` — ignore a cached fleet report and re-run.
//! * `--assert-warm-hits` — exit nonzero unless the warm pass hit the
//!   store (the CI smoke gate).
//! * `--bench-out <path>` — append-style perf baseline
//!   (`ace_bench::baseline`) with one `fleet/cold` and one `fleet/warm`
//!   entry (kind `fleet`, including machines/sec for the perf gate).
//! * `--telemetry <path>` — stream decision events as JSONL.
//! * `--check-cache` — validate `results/fleet-*.json` against current
//!   cache keys and exit (the fleet half of `check_results`).
//! * `--corpus <N>` — run the generated-workload store oracle and exit:
//!   a fleet over N `ace_workloads::gen` specs (resolved from spec files
//!   on disk) runs cold+warm three times — at `--jobs`, serial, and
//!   `--jobs` again — and every outcome/store fingerprint must be
//!   byte-identical (the fleet half of the bench `corpus` experiment's
//!   differential oracles).
//!
//! Observability (any of these forces a live, uncached run):
//!
//! * `--obs-out <path>` — write the wave-indexed fleet health time
//!   series (one cumulative metrics snapshot per wave per pass) as
//!   JSONL; analyze with `ace trace metrics <path>`. Byte-identical at
//!   any `--jobs` width.
//! * `--metrics-out <path>` — dump the final warm-pass metrics registry
//!   in Prometheus text format (includes wall-clock throughput gauges).
//! * `--live` — stream one health line per completed wave to stderr.
//! * `--watch` — run the fleet watchdog over both passes and exit
//!   nonzero on a breach; `--max-shed-rate F`, `--min-hit-rate F` and
//!   `--max-convergence-slowdown F` tune the thresholds (the hit-rate
//!   floor applies to the warm pass only).

use ace_bench::{
    default_jobs, print_telemetry_summary, results_dir, telemetry_from_args, BenchRun, FleetMetrics,
};
use ace_fleet::{
    check_fleet_caches, fleet_cache_file_name, fleet_cache_key, fleet_registry_version,
    render_report, run_fleet_observed, FleetCache, FleetConfig, FleetOutcome, ObsGate, ObsSampler,
    TuningStore, FLEET_SCHEMA_VERSION,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    cfg: FleetConfig,
    jobs: usize,
    store: Option<PathBuf>,
    fresh: bool,
    assert_warm_hits: bool,
    bench_out: Option<String>,
    check_cache: bool,
    corpus: Option<usize>,
    /// Report caching is reserved for unmodified presets — `--check-cache`
    /// validates `results/fleet-*.json` against the preset keys, so an
    /// overridden shape would write an entry that is instantly stale.
    cacheable: bool,
    obs_out: Option<String>,
    metrics_out: Option<String>,
    live: bool,
    watch: bool,
    gate: ObsGate,
}

impl Args {
    /// Any observability output needs the passes to actually run; a
    /// cached report has no wave-by-wave health to sample.
    fn obs_requested(&self) -> bool {
        self.obs_out.is_some() || self.metrics_out.is_some() || self.live || self.watch
    }
}

fn parse_args() -> Args {
    let mut preset = "standard".to_string();
    let mut overrides: Vec<(String, String)> = Vec::new();
    // A perf knob, not key material: --lanes never changes results, so it
    // neither joins `overrides` nor disables report caching.
    let mut lanes: Option<usize> = None;
    let mut args = Args {
        cfg: FleetConfig::default(),
        jobs: default_jobs(),
        store: None,
        fresh: false,
        assert_warm_hits: false,
        bench_out: None,
        check_cache: false,
        corpus: None,
        cacheable: true,
        obs_out: None,
        metrics_out: None,
        live: false,
        watch: false,
        gate: ObsGate::default(),
    };
    let mut it = std::env::args().skip(1);
    let take = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => preset = take(&mut it, "--preset"),
            "--machines" | "--wave-size" | "--admit-limit" | "--seed-base" | "--limit" => {
                let value = take(&mut it, &arg);
                overrides.push((arg, value));
            }
            "--jobs" => {
                let value = take(&mut it, "--jobs");
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => args.jobs = n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--lanes" => {
                let value = take(&mut it, "--lanes");
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => lanes = Some(n),
                    _ => {
                        eprintln!("--lanes requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--store" => args.store = Some(PathBuf::from(take(&mut it, "--store"))),
            "--no-baseline" => overrides.push(("--no-baseline".to_string(), String::new())),
            "--fresh" => args.fresh = true,
            "--assert-warm-hits" => args.assert_warm_hits = true,
            "--bench-out" => args.bench_out = Some(take(&mut it, "--bench-out")),
            "--telemetry" => {
                it.next(); // handled by telemetry_from_args
            }
            "--check-cache" => args.check_cache = true,
            "--corpus" => {
                let value = take(&mut it, "--corpus");
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => args.corpus = Some(n),
                    _ => {
                        eprintln!("--corpus requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--obs-out" => args.obs_out = Some(take(&mut it, "--obs-out")),
            "--metrics-out" => args.metrics_out = Some(take(&mut it, "--metrics-out")),
            "--live" => args.live = true,
            "--watch" => args.watch = true,
            "--max-shed-rate" | "--min-hit-rate" | "--max-convergence-slowdown" => {
                let value = take(&mut it, &arg);
                let parsed = value.parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("{arg} requires a number");
                    std::process::exit(2);
                });
                match arg.as_str() {
                    "--max-shed-rate" => args.gate.max_shed_rate = parsed,
                    "--min-hit-rate" => args.gate.min_hit_rate = parsed,
                    _ => args.gate.max_convergence_slowdown = parsed,
                }
            }
            other => {
                eprintln!("unknown flag {other}; see the fleet binary docs");
                std::process::exit(2);
            }
        }
    }
    args.cfg = match FleetConfig::preset(&preset) {
        Some(cfg) => cfg,
        None => {
            eprintln!(
                "unknown fleet preset {preset:?}; expected one of {:?}",
                FleetConfig::PRESET_NAMES
            );
            std::process::exit(2);
        }
    };
    if let Some(lanes) = lanes {
        args.cfg.lanes = lanes;
    }
    args.cacheable = overrides.is_empty();
    for (flag, value) in overrides {
        let parse = |v: &str| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} requires a positive integer");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--machines" => args.cfg.machines = parse(&value).max(1) as usize,
            "--wave-size" => {
                args.cfg.wave_size = parse(&value).max(1) as usize;
                args.cfg.admit_limit = args.cfg.admit_limit.max(args.cfg.wave_size);
            }
            "--admit-limit" => args.cfg.admit_limit = parse(&value).max(1) as usize,
            "--seed-base" => args.cfg.seed_base = parse(&value),
            "--limit" => args.cfg.instruction_limit = parse(&value).max(1),
            "--no-baseline" => args.cfg.measure_baseline = false,
            _ => unreachable!(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let telemetry = telemetry_from_args();
    let dir = results_dir();

    if let Some(count) = args.corpus {
        return match ace_fleet::run_corpus_oracle(count, args.jobs, &telemetry) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("--corpus: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.check_cache {
        let stale = check_fleet_caches(&dir);
        if stale.is_empty() {
            println!("{}: fleet caches match current keys", dir.display());
            return ExitCode::SUCCESS;
        }
        eprintln!("{}: stale fleet cache entries:", dir.display());
        for line in &stale {
            eprintln!("  {line}");
        }
        return ExitCode::FAILURE;
    }

    let store_path = args
        .store
        .clone()
        .unwrap_or_else(|| dir.join("fleet_store.jsonl"));
    let version = fleet_registry_version();
    let mut store = match TuningStore::open(&store_path, version, TuningStore::DEFAULT_CAPACITY) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open tuning store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let preloaded = store.len();

    // The report cache only describes a run that started from an empty
    // store; a preloaded store changes the cold pass and bypasses it.
    let cache_path = dir.join(fleet_cache_file_name(&args.cfg));
    if !args.fresh && !args.obs_requested() && preloaded == 0 && args.cacheable {
        if let Ok(cache) = FleetCache::load(&cache_path) {
            if cache.key == fleet_cache_key(&args.cfg) {
                print!("{}", cache.report);
                eprintln!("(cached fleet report; --fresh re-runs)");
                if let Some(path) = &args.bench_out {
                    // Cache-served passes time nothing; the perf gate
                    // reports them as skipped.
                    let zero = FleetMetrics {
                        machines_per_sec: 0.0,
                        shed: 0,
                        warm_hit_rate: 0.0,
                    };
                    let mut bench = BenchRun::new(args.jobs);
                    bench.push_fleet("fleet/cold", Duration::ZERO, true, zero);
                    bench.push_fleet("fleet/warm", Duration::ZERO, true, zero);
                    if let Err(e) = bench.write(path) {
                        eprintln!("cannot write bench baseline {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                return gate_warm_hits(args.assert_warm_hits, cache.warm_hits);
            }
        }
    }

    eprintln!(
        "fleet: {} machines x2 passes, {} jobs, store {} ({} entries preloaded)",
        args.cfg.machines,
        args.jobs,
        store_path.display(),
        preloaded
    );
    let obs = args.obs_requested();
    let mut cold_obs = obs.then(|| ObsSampler::new("cold").live(args.live));
    let mut warm_obs = obs.then(|| ObsSampler::new("warm").live(args.live));

    let start = Instant::now();
    let cold = match run_fleet_observed(
        &args.cfg,
        &mut store,
        args.jobs,
        &telemetry,
        cold_obs.as_mut(),
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("cold pass failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cold_wall = start.elapsed();
    let warm_start = Instant::now();
    let warm = match run_fleet_observed(
        &args.cfg,
        &mut store,
        args.jobs,
        &telemetry,
        warm_obs.as_mut(),
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("warm pass failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm_wall = warm_start.elapsed();

    let report = render_report(&args.cfg, &cold, &warm, &store);
    print!("{report}");

    // Throughput is schedule-dependent: stderr only, never the report.
    let machines = (cold.ran() + warm.ran()) as f64;
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "throughput: {:.1} machines/sec ({} machines in {:.1}s, {} jobs)",
        machines / elapsed,
        machines as u64,
        elapsed,
        args.jobs
    );

    if preloaded == 0 && args.cacheable {
        let cache = FleetCache {
            schema_version: FLEET_SCHEMA_VERSION,
            key: fleet_cache_key(&args.cfg),
            report: report.clone(),
            warm_hits: warm.hits(),
            cold_tunings: cold.tunings(),
            warm_tunings: warm.tunings(),
        };
        if let Err(e) = cache.write(&cache_path) {
            eprintln!("warning: could not cache fleet report: {e}");
        }
    }

    if let Some(path) = &args.bench_out {
        let mut bench = BenchRun::new(args.jobs);
        bench.push_fleet(
            "fleet/cold",
            cold_wall,
            false,
            fleet_metrics(&cold, cold_wall),
        );
        bench.push_fleet(
            "fleet/warm",
            warm_wall,
            false,
            fleet_metrics(&warm, warm_wall),
        );
        match bench.write(path) {
            Ok(()) => eprintln!("wrote fleet bench entries to {path}"),
            Err(e) => {
                eprintln!("cannot write bench baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &args.obs_out {
        // Cold records then warm records: one wave-indexed JSONL stream,
        // byte-identical at any --jobs width.
        let mut records = Vec::new();
        if let Some(sampler) = &cold_obs {
            records.extend_from_slice(sampler.records());
        }
        if let Some(sampler) = &warm_obs {
            records.extend_from_slice(sampler.records());
        }
        let write = std::fs::File::create(path)
            .and_then(|mut f| ace_telemetry::write_obs_jsonl(&mut f, &records));
        match write {
            Ok(()) => eprintln!("wrote {} obs records to {path}", records.len()),
            Err(e) => {
                eprintln!("cannot write obs series {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &args.metrics_out {
        if let Some(sampler) = &warm_obs {
            // Wall-clock throughput joins the registry only here, after
            // every wave-indexed obs record has been snapshotted.
            let m = sampler.metrics();
            m.gauge("fleet.machines_per_sec").set(machines / elapsed);
            m.gauge("fleet.wall_seconds").set(elapsed);
            match std::fs::write(path, m.snapshot().render_prometheus()) {
                Ok(()) => eprintln!("wrote warm-pass metrics to {path}"),
                Err(e) => {
                    eprintln!("cannot write metrics dump {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let mut watchdog_breached = false;
    if args.watch {
        // The hit-rate floor only makes sense once the store is seeded,
        // so the cold pass is checked with the floor disabled.
        let cold_gate = ObsGate {
            min_hit_rate: 0.0,
            ..args.gate
        };
        let checks = [
            cold_obs
                .as_ref()
                .map(|s| cold_gate.check("cold", s.health())),
            warm_obs
                .as_ref()
                .map(|s| args.gate.check("warm", s.health())),
        ];
        for report in checks.into_iter().flatten() {
            eprint!("{}", report.render());
            watchdog_breached |= report.breached();
        }
    }

    print_telemetry_summary(&telemetry);
    if watchdog_breached {
        eprintln!("--watch: fleet watchdog breached");
        return ExitCode::FAILURE;
    }
    gate_warm_hits(args.assert_warm_hits, warm.hits())
}

/// Throughput plus health for one pass's `--bench-out` entry.
fn fleet_metrics(outcome: &FleetOutcome, wall: Duration) -> FleetMetrics {
    FleetMetrics {
        machines_per_sec: outcome.ran() as f64 / wall.as_secs_f64().max(1e-9),
        shed: outcome.shed,
        warm_hit_rate: outcome.hit_rate(),
    }
}

fn gate_warm_hits(assert_warm_hits: bool, warm_hits: u64) -> ExitCode {
    if assert_warm_hits && warm_hits == 0 {
        eprintln!("--assert-warm-hits: warm pass never hit the store");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
