//! The fleet experiment binary: a cold pass then a warm pass over the
//! same fleet of machines, sharing one persistent tuning store.
//!
//! Flags:
//!
//! * `--preset <smoke|standard|stress>` — fleet shape (default
//!   `standard`: 1000 machines in waves of 125).
//! * `--machines <N>` / `--wave-size <N>` / `--admit-limit <N>` /
//!   `--seed-base <N>` / `--limit <instr>` — override the preset shape.
//! * `--jobs <N>` — worker-pool width; stdout is byte-identical at any
//!   width (throughput goes to stderr).
//! * `--store <path>` — tuning-store log (default
//!   `results/fleet_store.jsonl`). A pre-existing log warm-starts the
//!   first pass.
//! * `--no-baseline` — skip the per-machine non-adaptive baseline legs
//!   (energy-saving columns read 0).
//! * `--fresh` — ignore a cached fleet report and re-run.
//! * `--assert-warm-hits` — exit nonzero unless the warm pass hit the
//!   store (the CI smoke gate).
//! * `--bench-out <path>` — append-style perf baseline
//!   (`ace_bench::baseline`) with one `fleet/cold` and one `fleet/warm`
//!   entry.
//! * `--telemetry <path>` — stream decision events as JSONL.
//! * `--check-cache` — validate `results/fleet-*.json` against current
//!   cache keys and exit (the fleet half of `check_results`).

use ace_bench::{
    default_jobs, print_telemetry_summary, results_dir, telemetry_from_args, BenchRun,
};
use ace_fleet::{
    check_fleet_caches, fleet_cache_file_name, fleet_cache_key, fleet_registry_version,
    render_report, run_fleet, FleetCache, FleetConfig, TuningStore, FLEET_SCHEMA_VERSION,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    cfg: FleetConfig,
    jobs: usize,
    store: Option<PathBuf>,
    fresh: bool,
    assert_warm_hits: bool,
    bench_out: Option<String>,
    check_cache: bool,
    /// Report caching is reserved for unmodified presets — `--check-cache`
    /// validates `results/fleet-*.json` against the preset keys, so an
    /// overridden shape would write an entry that is instantly stale.
    cacheable: bool,
}

fn parse_args() -> Args {
    let mut preset = "standard".to_string();
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut args = Args {
        cfg: FleetConfig::default(),
        jobs: default_jobs(),
        store: None,
        fresh: false,
        assert_warm_hits: false,
        bench_out: None,
        check_cache: false,
        cacheable: true,
    };
    let mut it = std::env::args().skip(1);
    let take = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => preset = take(&mut it, "--preset"),
            "--machines" | "--wave-size" | "--admit-limit" | "--seed-base" | "--limit" => {
                let value = take(&mut it, &arg);
                overrides.push((arg, value));
            }
            "--jobs" => {
                let value = take(&mut it, "--jobs");
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => args.jobs = n,
                    _ => {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--store" => args.store = Some(PathBuf::from(take(&mut it, "--store"))),
            "--no-baseline" => overrides.push(("--no-baseline".to_string(), String::new())),
            "--fresh" => args.fresh = true,
            "--assert-warm-hits" => args.assert_warm_hits = true,
            "--bench-out" => args.bench_out = Some(take(&mut it, "--bench-out")),
            "--telemetry" => {
                it.next(); // handled by telemetry_from_args
            }
            "--check-cache" => args.check_cache = true,
            other => {
                eprintln!("unknown flag {other}; see the fleet binary docs");
                std::process::exit(2);
            }
        }
    }
    args.cfg = match FleetConfig::preset(&preset) {
        Some(cfg) => cfg,
        None => {
            eprintln!(
                "unknown fleet preset {preset:?}; expected one of {:?}",
                FleetConfig::PRESET_NAMES
            );
            std::process::exit(2);
        }
    };
    args.cacheable = overrides.is_empty();
    for (flag, value) in overrides {
        let parse = |v: &str| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} requires a positive integer");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--machines" => args.cfg.machines = parse(&value).max(1) as usize,
            "--wave-size" => {
                args.cfg.wave_size = parse(&value).max(1) as usize;
                args.cfg.admit_limit = args.cfg.admit_limit.max(args.cfg.wave_size);
            }
            "--admit-limit" => args.cfg.admit_limit = parse(&value).max(1) as usize,
            "--seed-base" => args.cfg.seed_base = parse(&value),
            "--limit" => args.cfg.instruction_limit = parse(&value).max(1),
            "--no-baseline" => args.cfg.measure_baseline = false,
            _ => unreachable!(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let telemetry = telemetry_from_args();
    let dir = results_dir();

    if args.check_cache {
        let stale = check_fleet_caches(&dir);
        if stale.is_empty() {
            println!("{}: fleet caches match current keys", dir.display());
            return ExitCode::SUCCESS;
        }
        eprintln!("{}: stale fleet cache entries:", dir.display());
        for line in &stale {
            eprintln!("  {line}");
        }
        return ExitCode::FAILURE;
    }

    let store_path = args
        .store
        .clone()
        .unwrap_or_else(|| dir.join("fleet_store.jsonl"));
    let version = fleet_registry_version();
    let mut store = match TuningStore::open(&store_path, version, TuningStore::DEFAULT_CAPACITY) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open tuning store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let preloaded = store.len();

    // The report cache only describes a run that started from an empty
    // store; a preloaded store changes the cold pass and bypasses it.
    let cache_path = dir.join(fleet_cache_file_name(&args.cfg));
    if !args.fresh && preloaded == 0 && args.cacheable {
        if let Ok(cache) = FleetCache::load(&cache_path) {
            if cache.key == fleet_cache_key(&args.cfg) {
                print!("{}", cache.report);
                eprintln!("(cached fleet report; --fresh re-runs)");
                if let Some(path) = &args.bench_out {
                    let mut bench = BenchRun::new(args.jobs);
                    bench.push_experiment("fleet/cold", std::time::Duration::ZERO);
                    bench.push_experiment("fleet/warm", std::time::Duration::ZERO);
                    if let Err(e) = bench.write(path) {
                        eprintln!("cannot write bench baseline {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                return gate_warm_hits(args.assert_warm_hits, cache.warm_hits);
            }
        }
    }

    eprintln!(
        "fleet: {} machines x2 passes, {} jobs, store {} ({} entries preloaded)",
        args.cfg.machines,
        args.jobs,
        store_path.display(),
        preloaded
    );
    let start = Instant::now();
    let cold = match run_fleet(&args.cfg, &mut store, args.jobs, &telemetry) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("cold pass failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cold_wall = start.elapsed();
    let warm_start = Instant::now();
    let warm = match run_fleet(&args.cfg, &mut store, args.jobs, &telemetry) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("warm pass failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm_wall = warm_start.elapsed();

    let report = render_report(&args.cfg, &cold, &warm, &store);
    print!("{report}");

    // Throughput is schedule-dependent: stderr only, never the report.
    let machines = (cold.ran() + warm.ran()) as f64;
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "throughput: {:.1} machines/sec ({} machines in {:.1}s, {} jobs)",
        machines / elapsed,
        machines as u64,
        elapsed,
        args.jobs
    );

    if preloaded == 0 && args.cacheable {
        let cache = FleetCache {
            schema_version: FLEET_SCHEMA_VERSION,
            key: fleet_cache_key(&args.cfg),
            report: report.clone(),
            warm_hits: warm.hits(),
            cold_tunings: cold.tunings(),
            warm_tunings: warm.tunings(),
        };
        if let Err(e) = cache.write(&cache_path) {
            eprintln!("warning: could not cache fleet report: {e}");
        }
    }

    if let Some(path) = &args.bench_out {
        let mut bench = BenchRun::new(args.jobs);
        bench.push_experiment("fleet/cold", cold_wall);
        bench.push_experiment("fleet/warm", warm_wall);
        match bench.write(path) {
            Ok(()) => eprintln!("wrote fleet bench entries to {path}"),
            Err(e) => {
                eprintln!("cannot write bench baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    print_telemetry_summary(&telemetry);
    gate_warm_hits(args.assert_warm_hits, warm.hits())
}

fn gate_warm_hits(assert_warm_hits: bool, warm_hits: u64) -> ExitCode {
    if assert_warm_hits && warm_hits == 0 {
        eprintln!("--assert-warm-hits: warm pass never hit the store");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
