//! The persistent warm-start tuning store.
//!
//! One [`TuningStore`] holds the fleet's converged configuration
//! selections, keyed by packed [`HotspotSignature`]. It is two things at
//! once:
//!
//! * an in-memory map the driver snapshots into a [`WarmStartContext`]
//!   before every wave (machines only ever see a frozen snapshot), and
//! * an append-only JSONL log on disk: every applied publication is
//!   appended as one [`StorePublication`] line, and opening the store
//!   replays the log through the exact same merge rules — so replay is
//!   idempotent by construction and a store survives process restarts.
//!
//! Merge rules (applied identically live and during replay):
//!
//! * **versioning** — a publication whose signature carries a different
//!   registry version than the store is stale and dropped (counted, never
//!   logged),
//! * **better-epi wins** — a publication for an existing signature only
//!   replaces the entry when its energy-per-instruction is strictly
//!   lower,
//! * **bounded capacity** — past `capacity` entries the oldest entry
//!   (smallest publication stamp) is evicted.

use ace_bench::{BenchError, BenchResult};
use ace_core::{AceConfig, HotspotSignature, StorePublication, WarmStartContext};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One stored selection plus its bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreEntry {
    /// The converged configuration.
    pub config: AceConfig,
    /// IPC measured when the configuration was selected.
    pub ipc: f64,
    /// Energy per instruction (nJ) of the selection — the merge metric.
    pub epi_nj: f64,
    /// Trials the publishing machine's cold tuning episode took.
    pub trials: u32,
    /// Monotonic publication stamp (eviction orders by it).
    pub stamp: u64,
}

/// What [`TuningStore::publish`] did with a publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOutcome {
    /// New signature: entry inserted.
    Inserted,
    /// Existing signature, lower energy: entry replaced.
    Improved,
    /// Existing signature, no improvement: entry kept as-is.
    Kept,
    /// Signature stamped with a different registry version: dropped.
    Stale,
}

/// The fleet's shared tuning store. See the module docs for semantics.
#[derive(Debug)]
pub struct TuningStore {
    version: u16,
    capacity: usize,
    entries: HashMap<u64, StoreEntry>,
    next_stamp: u64,
    evictions: u64,
    stale_dropped: u64,
    log: Option<PathBuf>,
}

impl TuningStore {
    /// Default capacity bound: far above what one fleet run publishes,
    /// low enough that a long-lived store cannot grow without bound.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An in-memory store (no log) at `version` holding at most
    /// `capacity` entries.
    pub fn in_memory(version: u16, capacity: usize) -> TuningStore {
        TuningStore {
            version,
            capacity: capacity.max(1),
            entries: HashMap::new(),
            next_stamp: 0,
            evictions: 0,
            stale_dropped: 0,
            log: None,
        }
    }

    /// Opens (or creates) a log-backed store at `path`, replaying any
    /// existing log through the merge rules.
    ///
    /// # Errors
    ///
    /// Fails when the log exists but cannot be read or contains a line
    /// that does not parse as a [`StorePublication`].
    pub fn open(
        path: impl Into<PathBuf>,
        version: u16,
        capacity: usize,
    ) -> BenchResult<TuningStore> {
        let path = path.into();
        let mut store = TuningStore::in_memory(version, capacity);
        if path.exists() {
            let data = std::fs::read_to_string(&path)
                .map_err(|e| BenchError::msg(format!("{}: {e}", path.display())))?;
            for (lineno, line) in data.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let publication: StorePublication = serde_json::from_str(line).map_err(|e| {
                    BenchError::msg(format!(
                        "{}:{}: corrupt store log line: {e}",
                        path.display(),
                        lineno + 1
                    ))
                })?;
                store.apply(publication);
            }
        }
        store.log = Some(path);
        Ok(store)
    }

    /// The registry version entries must be stamped with.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Publications dropped for carrying a foreign registry version.
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// The entry stored for `signature`, if any.
    pub fn get(&self, signature: HotspotSignature) -> Option<&StoreEntry> {
        self.entries.get(&signature.packed())
    }

    /// All entries, sorted by packed signature (deterministic order for
    /// reports and tests).
    pub fn entries_sorted(&self) -> Vec<(HotspotSignature, StoreEntry)> {
        let mut all: Vec<_> = self
            .entries
            .iter()
            .map(|(&k, &e)| (HotspotSignature::from_packed(k), e))
            .collect();
        all.sort_by_key(|(sig, _)| sig.packed());
        all
    }

    /// Freezes the current state into a [`WarmStartContext`] for a wave
    /// of machines. The snapshot never changes under the machines — that
    /// frozen view is what keeps fleet results byte-identical at any
    /// worker count.
    pub fn snapshot(&self) -> WarmStartContext {
        let mut ctx = WarmStartContext::new(self.version);
        for (&packed, entry) in &self.entries {
            ctx.insert(HotspotSignature::from_packed(packed), entry.config);
        }
        ctx
    }

    /// Merges one publication into the store and, when it was applied
    /// (inserted or improved) and the store is log-backed, appends it to
    /// the on-disk log.
    ///
    /// # Errors
    ///
    /// Fails only when the log append fails; the in-memory state is
    /// already updated at that point.
    pub fn publish(&mut self, publication: StorePublication) -> BenchResult<PublishOutcome> {
        let outcome = self.apply(publication);
        if matches!(outcome, PublishOutcome::Inserted | PublishOutcome::Improved) {
            if let Some(path) = &self.log {
                append_line(path, &publication)?;
            }
        }
        Ok(outcome)
    }

    /// The merge rules, shared by live publishes and log replay.
    fn apply(&mut self, publication: StorePublication) -> PublishOutcome {
        if publication.signature.registry_version != self.version {
            self.stale_dropped += 1;
            return PublishOutcome::Stale;
        }
        let key = publication.signature.packed();
        let stamp = self.next_stamp;
        let entry = StoreEntry {
            config: publication.config,
            ipc: publication.ipc,
            epi_nj: publication.epi_nj,
            trials: publication.trials,
            stamp,
        };
        let outcome = match self.entries.get(&key) {
            Some(existing) if publication.epi_nj >= existing.epi_nj => return PublishOutcome::Kept,
            Some(_) => {
                self.entries.insert(key, entry);
                PublishOutcome::Improved
            }
            None => {
                self.entries.insert(key, entry);
                if self.entries.len() > self.capacity {
                    self.evict_oldest();
                }
                PublishOutcome::Inserted
            }
        };
        self.next_stamp += 1;
        outcome
    }

    fn evict_oldest(&mut self) {
        if let Some((&key, _)) = self.entries.iter().min_by_key(|(_, e)| e.stamp) {
            self.entries.remove(&key);
            self.evictions += 1;
        }
    }

    /// Rewrites the log to exactly the live entries (in stamp order, so a
    /// replay reconstructs identical state), atomically. A no-op for
    /// in-memory stores.
    ///
    /// The live log is append-only; compaction is an explicit maintenance
    /// action for a store whose log has accumulated superseded lines.
    ///
    /// # Errors
    ///
    /// Fails when the rewritten log cannot be written or renamed.
    pub fn compact(&self) -> BenchResult<()> {
        let Some(path) = &self.log else {
            return Ok(());
        };
        let mut all: Vec<_> = self.entries.iter().collect();
        all.sort_by_key(|(_, e)| e.stamp);
        let mut text = String::new();
        for (&packed, entry) in all {
            let publication = StorePublication {
                signature: HotspotSignature::from_packed(packed),
                config: entry.config,
                ipc: entry.ipc,
                epi_nj: entry.epi_nj,
                trials: entry.trials,
            };
            text.push_str(&serde_json::to_string(&publication).expect("publication serializes"));
            text.push('\n');
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, text)
            .map_err(|e| BenchError::msg(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| BenchError::msg(format!("{}: {e}", path.display())))?;
        Ok(())
    }
}

fn append_line(path: &Path, publication: &StorePublication) -> BenchResult<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .map_err(|e| BenchError::msg(format!("{}: {e}", dir.display())))?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| BenchError::msg(format!("{}: {e}", path.display())))?;
    writeln!(
        file,
        "{}",
        serde_json::to_string(publication).expect("publication serializes")
    )
    .map_err(|e| BenchError::msg(format!("{}: {e}", path.display())))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::SizeLevel;

    fn sig(n: u8) -> HotspotSignature {
        HotspotSignature {
            size_class: n,
            ws_class: 1,
            cu_mask: 0b10,
            registry_version: 7,
        }
    }

    fn publication(n: u8, epi_nj: f64) -> StorePublication {
        StorePublication {
            signature: sig(n),
            config: AceConfig::l1d_only(SizeLevel::SMALLEST),
            ipc: 2.0,
            epi_nj,
            trials: 4,
        }
    }

    fn temp_log(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ace_fleet_store_{tag}_{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn better_epi_wins_and_worse_is_kept() {
        let mut store = TuningStore::in_memory(7, 16);
        assert_eq!(
            store.publish(publication(1, 0.5)).unwrap(),
            PublishOutcome::Inserted
        );
        assert_eq!(
            store.publish(publication(1, 0.6)).unwrap(),
            PublishOutcome::Kept
        );
        assert_eq!(
            store.publish(publication(1, 0.4)).unwrap(),
            PublishOutcome::Improved
        );
        assert_eq!(store.len(), 1);
        assert!((store.get(sig(1)).unwrap().epi_nj - 0.4).abs() < 1e-12);
    }

    #[test]
    fn foreign_version_is_dropped() {
        let mut store = TuningStore::in_memory(3, 16);
        assert_eq!(
            store.publish(publication(1, 0.5)).unwrap(),
            PublishOutcome::Stale
        );
        assert!(store.is_empty());
        assert_eq!(store.stale_dropped(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut store = TuningStore::in_memory(7, 2);
        store.publish(publication(1, 0.5)).unwrap();
        store.publish(publication(2, 0.5)).unwrap();
        store.publish(publication(3, 0.5)).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(store.get(sig(1)).is_none(), "oldest entry evicted");
        assert!(store.get(sig(2)).is_some() && store.get(sig(3)).is_some());
    }

    #[test]
    fn log_replay_is_idempotent() {
        let path = temp_log("replay");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = TuningStore::open(&path, 7, 16).unwrap();
            store.publish(publication(1, 0.5)).unwrap();
            store.publish(publication(2, 0.7)).unwrap();
            store.publish(publication(1, 0.3)).unwrap(); // improvement, logged
            store.publish(publication(2, 0.9)).unwrap(); // kept, not logged
        }
        let reopened = TuningStore::open(&path, 7, 16).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!((reopened.get(sig(1)).unwrap().epi_nj - 0.3).abs() < 1e-12);
        assert!((reopened.get(sig(2)).unwrap().epi_nj - 0.7).abs() < 1e-12);
        // Replaying the replayed state again changes nothing.
        let twice = TuningStore::open(&path, 7, 16).unwrap();
        assert_eq!(twice.entries_sorted(), reopened.entries_sorted());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_log() {
        let path = temp_log("compact");
        let _ = std::fs::remove_file(&path);
        let mut store = TuningStore::open(&path, 7, 16).unwrap();
        for epi in [9.0, 8.0, 7.0, 6.0] {
            store.publish(publication(1, epi)).unwrap(); // 4 logged lines, 1 entry
        }
        // Compaction renumbers stamps (relative order is preserved), so
        // compare the selection state, not the bookkeeping.
        let selections = |s: &TuningStore| {
            s.entries_sorted()
                .into_iter()
                .map(|(sig, e)| (sig, e.config, e.epi_nj, e.trials))
                .collect::<Vec<_>>()
        };
        let before = selections(&store);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 4);
        store.compact().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1);
        let reopened = TuningStore::open(&path, 7, 16).unwrap();
        assert_eq!(selections(&reopened), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_is_frozen() {
        let mut store = TuningStore::in_memory(7, 16);
        store.publish(publication(1, 0.5)).unwrap();
        let snap = store.snapshot();
        store.publish(publication(2, 0.5)).unwrap();
        assert_eq!(snap.len(), 1, "snapshot does not see later publishes");
        assert_eq!(snap.version(), 7);
        assert!(snap.lookup(sig(1)).is_some());
        assert!(snap.lookup(sig(2)).is_none());
    }

    #[test]
    fn corrupt_log_is_an_error() {
        let path = temp_log("corrupt");
        std::fs::write(&path, "not json\n").unwrap();
        let err = TuningStore::open(&path, 7, 16).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
