//! # ace-fleet — thousands of machines sharing a warm-start tuning store
//!
//! The fleet-scale extension of the paper's scheme: many simulated
//! machines run similar workloads concurrently, and instead of every
//! machine re-walking its candidate configuration lists from scratch,
//! converged selections are published to a shared [`TuningStore`] keyed
//! by behavioral [`ace_core::HotspotSignature`]. A machine whose hotspot
//! matches a stored signature adopts the selection after a single
//! reference trial — the fleet amortizes tuning latency across itself.
//!
//! Pieces:
//!
//! * [`TuningStore`] — the persistent store: in-memory map + append-only
//!   JSONL log, better-epi-wins merging, registry-version staleness,
//!   bounded capacity with oldest-first eviction ([`store`]).
//! * [`run_fleet`] — the wave-based driver on the work-stealing engine,
//!   with an admission layer (bounded in-flight machines, load-shedding
//!   counter) and deterministic machine-index-order merging ([`driver`]).
//! * the `fleet` binary — runs a cold pass then a warm pass over the same
//!   fleet and reports aggregate energy savings, tuning-latency
//!   reduction, store hit rate, and (to stderr) machines/sec.
//! * [`ObsSampler`] / [`ObsGate`] — wave-indexed fleet health sampling
//!   (`--obs-out` JSONL time series, `--live` status lines) and the
//!   threshold watchdog CI turns into an exit code ([`obs`]).
//!
//! Determinism: machines in a wave share a frozen store snapshot, jobs
//! merge in submission order, and wall-clock is quarantined away from the
//! report text — `fleet --jobs 1` and `fleet --jobs 8` produce
//! byte-identical stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod driver;
pub mod obs;
pub mod store;

pub use corpus::{fleet_fingerprints, outcome_fingerprint, run_corpus_oracle, store_fingerprint};
pub use driver::{
    fleet_do_config, fleet_registry_version, render_report, run_fleet, run_fleet_observed,
    FleetConfig, FleetOutcome, MachineOutcome, MachineSpec,
};
pub use obs::{render_wave_line, ObsGate, ObsGateLine, ObsGateReport, ObsSampler, WaveHealth};
pub use store::{PublishOutcome, StoreEntry, TuningStore};

use ace_bench::{BenchError, BenchResult};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Version of the fleet cache/report file format.
pub const FLEET_SCHEMA_VERSION: u32 = 1;

/// Everything that determines a fleet run's deterministic report,
/// serialized into the cache key.
#[derive(Serialize)]
struct KeyMaterial {
    crate_version: String,
    config: FleetConfig,
    do_config: ace_runtime::DoConfig,
    registry_version: u16,
}

/// Content-addressed cache key of one fleet configuration: 16 hex digits
/// of FNV-1a over the serialized run inputs (crate version, the full
/// [`FleetConfig`], the fleet DO profile, and the registry version).
/// Anything that could change the report changes the key.
pub fn fleet_cache_key(cfg: &FleetConfig) -> String {
    let material = KeyMaterial {
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        config: cfg.clone(),
        do_config: fleet_do_config(),
        registry_version: fleet_registry_version(),
    };
    let bytes = serde_json::to_string(&material).expect("key material serializes");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    format!("{hash:016x}")
}

/// File name of a fleet result cache entry: `fleet-<key>.json`. The
/// `fleet-` namespace is what `check_results` recognizes and delegates to
/// `fleet --check-cache`.
pub fn fleet_cache_file_name(cfg: &FleetConfig) -> String {
    format!("fleet-{}.json", fleet_cache_key(cfg))
}

/// A cached fleet result: the rendered report plus the headline numbers
/// the binary needs without re-running (bench entries, smoke assertions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetCache {
    /// File-format version ([`FLEET_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The cache key the file was written under (self-describing).
    pub key: String,
    /// The deterministic report text.
    pub report: String,
    /// Warm-pass store hits (the smoke gate's assertion input).
    pub warm_hits: u64,
    /// Cold-pass tuning trials.
    pub cold_tunings: u64,
    /// Warm-pass tuning trials.
    pub warm_tunings: u64,
}

impl FleetCache {
    /// Loads a cache file, rejecting unknown schema versions.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, unparsable JSON, or a schema-version
    /// mismatch.
    pub fn load(path: impl AsRef<Path>) -> BenchResult<FleetCache> {
        let path = path.as_ref();
        let data = std::fs::read_to_string(path)
            .map_err(|e| BenchError::msg(format!("{}: {e}", path.display())))?;
        let cache: FleetCache = serde_json::from_str(&data)
            .map_err(|e| BenchError::msg(format!("{}: {e}", path.display())))?;
        if cache.schema_version != FLEET_SCHEMA_VERSION {
            return Err(BenchError::msg(format!(
                "{}: fleet cache schema {} (current is {})",
                path.display(),
                cache.schema_version,
                FLEET_SCHEMA_VERSION
            )));
        }
        Ok(cache)
    }

    /// Writes the cache atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Fails when the parent directory cannot be created or the file
    /// cannot be written.
    pub fn write(&self, path: impl AsRef<Path>) -> BenchResult<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| BenchError::msg(format!("{}: {e}", dir.display())))?;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, serde_json::to_string(self).expect("serializable"))
            .map_err(|e| BenchError::msg(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| BenchError::msg(format!("{}: {e}", path.display())))?;
        Ok(())
    }
}

/// Validates every `fleet-*.json` under `dir` against the current cache
/// keys of the named fleet presets ([`FleetConfig::PRESET_NAMES`]) —
/// the `fleet --check-cache` half of the `check_results` contract.
/// Returns the stale findings (empty = all current).
pub fn check_fleet_caches(dir: &Path) -> Vec<String> {
    let current: Vec<String> = FleetConfig::PRESET_NAMES
        .iter()
        .filter_map(|name| FleetConfig::preset(name))
        .map(|cfg| fleet_cache_key(&cfg))
        .collect();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut stale = Vec::new();
    for entry in entries.flatten() {
        let file = entry.file_name();
        let Some(name) = file.to_str() else { continue };
        let Some(stem) = name.strip_suffix(".json") else {
            continue;
        };
        let Some(key) = stem.strip_prefix("fleet-") else {
            continue;
        };
        if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
            stale.push(format!(
                "{name}: not a fleet cache name (fleet-<16 hex>.json)"
            ));
            continue;
        }
        if !current.iter().any(|want| want == key) {
            stale.push(format!(
                "{name}: superseded fleet cache key (run inputs changed; purge or regenerate)"
            ));
            continue;
        }
        if let Err(e) = FleetCache::load(entry.path()) {
            stale.push(format!("{name}: unreadable fleet cache: {e}"));
        }
    }
    stale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_tracks_config() {
        let smoke = FleetConfig::preset("smoke").unwrap();
        let key = fleet_cache_key(&smoke);
        assert_eq!(key.len(), 16);
        assert_eq!(key, fleet_cache_key(&FleetConfig::preset("smoke").unwrap()));
        assert_ne!(
            key,
            fleet_cache_key(&FleetConfig::preset("standard").unwrap())
        );
        let mut tweaked = smoke.clone();
        tweaked.seed_base += 1;
        assert_ne!(key, fleet_cache_key(&tweaked));
        assert_eq!(fleet_cache_file_name(&smoke), format!("fleet-{key}.json"));
    }

    #[test]
    fn cache_round_trips_and_check_accepts_current_keys() {
        let dir = std::env::temp_dir().join(format!("ace_fleet_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = FleetConfig::preset("smoke").unwrap();
        let cache = FleetCache {
            schema_version: FLEET_SCHEMA_VERSION,
            key: fleet_cache_key(&cfg),
            report: "report body".to_string(),
            warm_hits: 12,
            cold_tunings: 100,
            warm_tunings: 40,
        };
        let path = dir.join(fleet_cache_file_name(&cfg));
        cache.write(&path).unwrap();
        let back = FleetCache::load(&path).unwrap();
        assert_eq!(back.warm_hits, 12);
        assert!(check_fleet_caches(&dir).is_empty(), "current key passes");

        // A stale key and a malformed name are both flagged.
        std::fs::write(dir.join("fleet-0123456789abcdef.json"), "{}").unwrap();
        std::fs::write(dir.join("fleet-short.json"), "{}").unwrap();
        let stale = check_fleet_caches(&dir);
        assert_eq!(stale.len(), 2, "{stale:?}");
        // Non-fleet json files are none of our business.
        std::fs::write(dir.join("db-0123456789abcdef.json"), "{}").unwrap();
        assert_eq!(check_fleet_caches(&dir).len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
