//! Wave-indexed fleet health sampling, the live status line, and the
//! threshold watchdog.
//!
//! The sampler hooks the driver's wave barrier: after each wave merges,
//! [`ObsSampler::record_wave`] folds the wave's machine outcomes into a
//! [`Metrics`] registry (cumulative counters, current-value gauges,
//! IPC/EPI histograms) and snapshots it into one
//! [`ObsRecord`] keyed by `(pass, wave)`.
//! **Everything sampled is wave-indexed and architectural** — machine
//! counts, store state, counter-derived rates — never wall-clock, so the
//! serialized obs stream is byte-identical at any `--jobs` width, the
//! same contract the fleet report itself holds.
//!
//! On top of the per-wave [`WaveHealth`] series sit two consumers:
//!
//! * the live renderer ([`render_wave_line`]) — a one-line-per-wave
//!   status the binary prints to stderr as waves complete,
//! * the watchdog ([`ObsGate`]) — shed-rate ceiling, hit-rate floor, and
//!   convergence-slowdown checks with a typed [`ObsGateReport`] that CI
//!   turns into an exit code.

use crate::driver::MachineOutcome;
use ace_telemetry::{Metrics, ObsRecord};
use serde::{Deserialize, Serialize};

/// IPC histogram bucket bounds for fleet machines (sim IPC tops out
/// well under 4 on the table-2 machine).
pub const IPC_BOUNDS: [f64; 8] = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0];

/// EPI histogram bucket bounds, nanojoules per instruction (L1D + L2
/// energy over retired instructions).
pub const EPI_BOUNDS: [f64; 8] = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4];

/// One wave's health row: cumulative fleet counters after the wave's
/// merge, plus distribution percentiles from the cumulative IPC/EPI
/// histograms. Every field is deterministic at any `--jobs` width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveHealth {
    /// 1-based wave index within the pass.
    pub wave: u64,
    /// Machines that have run so far (cumulative).
    pub machines: u64,
    /// Machines shed by admission so far (cumulative).
    pub shed: u64,
    /// Warm-start hits so far (cumulative).
    pub warm_hits: u64,
    /// Warm-start misses so far (cumulative).
    pub warm_misses: u64,
    /// Trials avoided via warm starts so far (cumulative).
    pub trials_saved: u64,
    /// Configuration trials measured so far (cumulative).
    pub tunings: u64,
    /// Store publications so far (cumulative).
    pub publishes: u64,
    /// Tuning-store entries after this wave's merge.
    pub store_len: u64,
    /// Median machine IPC (cumulative histogram quantile).
    pub ipc_p50: f64,
    /// 90th-percentile machine IPC.
    pub ipc_p90: f64,
    /// Median machine EPI, nJ/instr.
    pub epi_p50: f64,
    /// 90th-percentile machine EPI, nJ/instr.
    pub epi_p90: f64,
}

impl WaveHealth {
    /// Cumulative store hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.warm_hits + self.warm_misses;
        if lookups == 0 {
            0.0
        } else {
            self.warm_hits as f64 / lookups as f64
        }
    }

    /// Cumulative shed rate in `[0, 1]` (shed over offered machines).
    pub fn shed_rate(&self) -> f64 {
        let offered = self.machines + self.shed;
        if offered == 0 {
            0.0
        } else {
            self.shed as f64 / offered as f64
        }
    }

    /// Mean tuning trials per machine so far.
    pub fn trials_per_machine(&self) -> f64 {
        if self.machines == 0 {
            0.0
        } else {
            self.tunings as f64 / self.machines as f64
        }
    }
}

/// The deterministic one-line status for a completed wave — what
/// `fleet --live` streams to stderr.
pub fn render_wave_line(pass: &str, h: &WaveHealth) -> String {
    format!(
        "obs[{pass}] wave {:>3}: {} machines ({} shed), hit {:>5.1}%, saved {} trials, \
         store {}, ipc p50 {:.2} p90 {:.2}, epi p50 {:.2}",
        h.wave,
        h.machines,
        h.shed,
        100.0 * h.hit_rate(),
        h.trials_saved,
        h.store_len,
        h.ipc_p50,
        h.ipc_p90,
        h.epi_p50,
    )
}

/// Per-pass wave sampler the driver feeds at each wave barrier.
///
/// Owns a [`Metrics`] registry that accumulates fleet counters and
/// IPC/EPI histograms; each recorded wave appends one cumulative
/// [`ObsRecord`] snapshot and one [`WaveHealth`] row.
#[derive(Debug)]
pub struct ObsSampler {
    pass: String,
    live: bool,
    metrics: Metrics,
    records: Vec<ObsRecord>,
    health: Vec<WaveHealth>,
    machines: u64,
    shed: u64,
    warm_hits: u64,
    warm_misses: u64,
    trials_saved: u64,
    tunings: u64,
    publishes: u64,
}

impl ObsSampler {
    /// A fresh sampler for one pass (e.g. `"cold"`, `"warm"`).
    pub fn new(pass: impl Into<String>) -> ObsSampler {
        ObsSampler {
            pass: pass.into(),
            live: false,
            metrics: Metrics::default(),
            records: Vec::new(),
            health: Vec::new(),
            machines: 0,
            shed: 0,
            warm_hits: 0,
            warm_misses: 0,
            trials_saved: 0,
            tunings: 0,
            publishes: 0,
        }
    }

    /// Enables the live status line: each recorded wave also prints
    /// [`render_wave_line`] to stderr (stderr is the wall-clock side of
    /// the fleet's output contract, so this never touches the report).
    pub fn live(mut self, on: bool) -> ObsSampler {
        self.live = on;
        self
    }

    /// The pass name records are keyed with.
    pub fn pass(&self) -> &str {
        &self.pass
    }

    /// The sampler's metrics registry (the binary adds wall-clock gauges
    /// here *after* the pass, so they reach `--metrics-out` without
    /// entering the already-snapshotted obs records).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Per-wave health rows recorded so far.
    pub fn health(&self) -> &[WaveHealth] {
        &self.health
    }

    /// Cumulative obs records recorded so far.
    pub fn records(&self) -> &[ObsRecord] {
        &self.records
    }

    /// Consumes the sampler into its obs records.
    pub fn into_records(self) -> Vec<ObsRecord> {
        self.records
    }

    /// Folds one merged wave into the sampler. `wave` is 1-based;
    /// `machines` is the slice of outcomes the wave produced (in
    /// machine-index order), `shed` the machines this wave dropped, and
    /// `store_len` the store size after the wave's merge.
    pub fn record_wave(
        &mut self,
        wave: u64,
        machines: &[MachineOutcome],
        shed: u64,
        store_len: usize,
    ) {
        let ipc_hist = self.metrics.histogram("fleet.machine_ipc", &IPC_BOUNDS);
        let epi_hist = self.metrics.histogram("fleet.machine_epi_nj", &EPI_BOUNDS);
        for m in machines {
            self.warm_hits += m.warm_hits;
            self.warm_misses += m.warm_misses;
            self.trials_saved += m.warm_trials_saved;
            self.tunings += m.tunings;
            self.publishes += m.store_publishes;
            ipc_hist.record(m.ipc);
            if m.instret > 0 {
                epi_hist.record((m.l1d_nj + m.l2_nj) / m.instret as f64);
            }
        }
        self.machines += machines.len() as u64;
        self.shed += shed;

        let c = |name: &str, v: u64| self.metrics.counter(name).add(v);
        c("fleet.machines", machines.len() as u64);
        c("fleet.shed", shed);
        c(
            "fleet.warm_hits",
            machines.iter().map(|m| m.warm_hits).sum(),
        );
        c(
            "fleet.warm_misses",
            machines.iter().map(|m| m.warm_misses).sum(),
        );
        c(
            "fleet.trials_saved",
            machines.iter().map(|m| m.warm_trials_saved).sum(),
        );
        c("fleet.tunings", machines.iter().map(|m| m.tunings).sum());
        c(
            "fleet.publishes",
            machines.iter().map(|m| m.store_publishes).sum(),
        );

        let health = WaveHealth {
            wave,
            machines: self.machines,
            shed: self.shed,
            warm_hits: self.warm_hits,
            warm_misses: self.warm_misses,
            trials_saved: self.trials_saved,
            tunings: self.tunings,
            publishes: self.publishes,
            store_len: store_len as u64,
            ipc_p50: ipc_hist.quantile(0.50),
            ipc_p90: ipc_hist.quantile(0.90),
            epi_p50: epi_hist.quantile(0.50),
            epi_p90: epi_hist.quantile(0.90),
        };
        self.metrics.gauge("fleet.hit_rate").set(health.hit_rate());
        self.metrics
            .gauge("fleet.shed_rate")
            .set(health.shed_rate());
        self.metrics.gauge("fleet.store_size").set(store_len as f64);
        self.metrics.gauge("fleet.ipc_p50").set(health.ipc_p50);
        self.metrics.gauge("fleet.ipc_p90").set(health.ipc_p90);
        self.metrics.gauge("fleet.epi_p50").set(health.epi_p50);
        self.metrics.gauge("fleet.epi_p90").set(health.epi_p90);

        if self.live {
            eprintln!("{}", render_wave_line(&self.pass, &health));
        }
        self.records.push(ObsRecord {
            pass: self.pass.clone(),
            wave,
            metrics: self.metrics.snapshot(),
        });
        self.health.push(health);
    }
}

/// Threshold watchdog over a pass's [`WaveHealth`] series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObsGate {
    /// Maximum tolerated cumulative shed rate (`[0, 1]`).
    pub max_shed_rate: f64,
    /// Minimum required cumulative store hit rate (`[0, 1]`; 0 disables
    /// the check — a cold pass legitimately starts at zero).
    pub min_hit_rate: f64,
    /// Maximum tolerated rise of the final wave's per-machine tuning
    /// trials over the first wave's (0.25 = 25% slower to converge).
    pub max_convergence_slowdown: f64,
}

impl Default for ObsGate {
    fn default() -> ObsGate {
        ObsGate {
            max_shed_rate: 0.25,
            min_hit_rate: 0.0,
            max_convergence_slowdown: 0.25,
        }
    }
}

/// One watchdog check's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsGateLine {
    /// What was checked.
    pub check: String,
    /// Measured value.
    pub value: f64,
    /// The configured limit.
    pub limit: f64,
    /// Whether the value breached the limit.
    pub breached: bool,
}

/// The watchdog's typed report for one pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsGateReport {
    /// Which pass was checked.
    pub pass: String,
    /// Every check, in check order.
    pub lines: Vec<ObsGateLine>,
}

impl ObsGateReport {
    /// Whether any check breached.
    pub fn breached(&self) -> bool {
        self.lines.iter().any(|l| l.breached)
    }

    /// Deterministic human-readable rendering; breached lines are
    /// prefixed `FAIL`, others `ok`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "fleet watchdog [{}]:", self.pass);
        for line in &self.lines {
            let verdict = if line.breached { "FAIL" } else { "ok  " };
            let _ = writeln!(
                out,
                "  {verdict} {:<26} {:>10.4}  limit {:.4}",
                line.check, line.value, line.limit
            );
        }
        let breaches = self.lines.iter().filter(|l| l.breached).count();
        if breaches == 0 {
            let _ = writeln!(out, "  healthy ({} checks)", self.lines.len());
        } else {
            let _ = writeln!(
                out,
                "  {breaches} breach(es) in {} checks",
                self.lines.len()
            );
        }
        out
    }
}

impl ObsGate {
    /// Checks a pass's health series. An empty series breaches nothing
    /// (there is nothing to judge); the shed and hit-rate checks read the
    /// final cumulative row, the convergence check compares the last
    /// wave's per-machine trials against the first wave's.
    pub fn check(&self, pass: &str, health: &[WaveHealth]) -> ObsGateReport {
        let mut lines = Vec::new();
        let Some(last) = health.last() else {
            return ObsGateReport {
                pass: pass.to_string(),
                lines,
            };
        };
        lines.push(ObsGateLine {
            check: "shed rate".to_string(),
            value: last.shed_rate(),
            limit: self.max_shed_rate,
            breached: last.shed_rate() > self.max_shed_rate,
        });
        lines.push(ObsGateLine {
            check: "hit rate (floor)".to_string(),
            value: last.hit_rate(),
            limit: self.min_hit_rate,
            breached: self.min_hit_rate > 0.0 && last.hit_rate() < self.min_hit_rate,
        });
        // Convergence: the store should make later waves cheaper, never
        // markedly dearer. First-wave trials/machine is the reference.
        let first = health.first().expect("non-empty");
        let reference = first.trials_per_machine();
        let prev = health.len().checked_sub(2).and_then(|i| health.get(i));
        let last_wave_machines = last.machines - prev.map_or(0, |p| p.machines);
        let last_wave_tunings = last.tunings - prev.map_or(0, |p| p.tunings);
        let current = if last_wave_machines == 0 {
            0.0
        } else {
            last_wave_tunings as f64 / last_wave_machines as f64
        };
        let slowdown = if reference > 0.0 {
            current / reference - 1.0
        } else {
            0.0
        };
        lines.push(ObsGateLine {
            check: "convergence slowdown".to_string(),
            value: slowdown,
            limit: self.max_convergence_slowdown,
            breached: slowdown > self.max_convergence_slowdown,
        });
        ObsGateReport {
            pass: pass.to_string(),
            lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::MachineSpec;

    fn machine(index: usize, ipc: f64, hits: u64, misses: u64, tunings: u64) -> MachineOutcome {
        MachineOutcome {
            spec: MachineSpec {
                index,
                preset: "compress".to_string(),
                seed: index as u64 + 1,
            },
            ipc,
            instret: 1_000_000,
            l1d_nj: 150_000.0,
            l2_nj: 50_000.0,
            baseline: None,
            tunings,
            tuned_hotspots: 1,
            warm_hits: hits,
            warm_misses: misses,
            warm_trials_saved: hits * 3,
            store_publishes: misses,
        }
    }

    #[test]
    fn sampler_accumulates_waves_into_cumulative_records() {
        let mut s = ObsSampler::new("cold");
        s.record_wave(
            1,
            &[machine(0, 1.0, 0, 2, 16), machine(1, 1.2, 0, 2, 16)],
            1,
            3,
        );
        s.record_wave(2, &[machine(2, 1.4, 2, 0, 4)], 0, 5);
        assert_eq!(s.records().len(), 2);
        assert_eq!(s.health().len(), 2);

        let h = &s.health()[1];
        assert_eq!(h.machines, 3);
        assert_eq!(h.shed, 1);
        assert_eq!(h.warm_hits, 2);
        assert_eq!(h.warm_misses, 4);
        assert_eq!(h.tunings, 36);
        assert_eq!(h.store_len, 5);
        assert!((h.hit_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert!((h.shed_rate() - 0.25).abs() < 1e-12);
        assert!(h.ipc_p50 > 0.0 && h.ipc_p90 >= h.ipc_p50);
        assert!(h.epi_p50 > 0.0);

        // Records are cumulative snapshots: wave 2's counters cover both
        // waves, and the delta recovers wave 2 alone.
        let w1 = &s.records()[0].metrics;
        let w2 = &s.records()[1].metrics;
        assert_eq!(w2.counters["fleet.machines"], 3);
        let delta = w2.delta_since(w1);
        assert_eq!(delta.counters["fleet.machines"], 1);
        assert_eq!(delta.counters["fleet.warm_hits"], 2);
    }

    #[test]
    fn sampler_snapshots_contain_no_wall_clock_metrics() {
        let mut s = ObsSampler::new("cold");
        s.record_wave(1, &[machine(0, 1.0, 0, 1, 8)], 0, 1);
        let snap = &s.records()[0].metrics;
        for name in snap
            .counters
            .keys()
            .chain(snap.gauges.keys())
            .chain(snap.histograms.keys())
        {
            assert!(
                !name.contains("_ms") && !name.contains("per_sec") && !name.contains("wall"),
                "wall-clock metric {name:?} leaked into the obs stream"
            );
        }
    }

    #[test]
    fn gate_passes_healthy_series_and_flags_breaches() {
        let mut s = ObsSampler::new("warm");
        s.record_wave(
            1,
            &[machine(0, 1.0, 3, 1, 4), machine(1, 1.1, 3, 1, 4)],
            0,
            4,
        );
        s.record_wave(2, &[machine(2, 1.0, 4, 0, 1)], 0, 4);
        let healthy = ObsGate {
            max_shed_rate: 0.1,
            min_hit_rate: 0.5,
            max_convergence_slowdown: 0.25,
        }
        .check("warm", s.health());
        assert!(!healthy.breached(), "{}", healthy.render());
        assert_eq!(healthy.lines.len(), 3);
        assert!(healthy.render().contains("healthy"));

        // Same series judged by an impossible hit-rate floor breaches.
        let strict = ObsGate {
            min_hit_rate: 0.99,
            ..ObsGate::default()
        }
        .check("warm", s.health());
        assert!(strict.breached());
        assert!(strict.render().contains("FAIL"));
    }

    #[test]
    fn gate_flags_shedding_and_slow_convergence() {
        let mut s = ObsSampler::new("cold");
        // Wave 1: cheap tuning; wave 2: heavy shedding and dearer tuning.
        s.record_wave(1, &[machine(0, 1.0, 0, 1, 4)], 0, 1);
        s.record_wave(2, &[machine(1, 1.0, 0, 1, 16)], 3, 1);
        let report = ObsGate {
            max_shed_rate: 0.25,
            min_hit_rate: 0.0,
            max_convergence_slowdown: 0.25,
        }
        .check("cold", s.health());
        let breached: Vec<&str> = report
            .lines
            .iter()
            .filter(|l| l.breached)
            .map(|l| l.check.as_str())
            .collect();
        assert_eq!(breached, vec!["shed rate", "convergence slowdown"]);
    }

    #[test]
    fn gate_on_empty_series_is_silent() {
        let report = ObsGate::default().check("cold", &[]);
        assert!(!report.breached());
        assert!(report.lines.is_empty());
    }

    #[test]
    fn wave_line_renders_deterministically() {
        let mut s = ObsSampler::new("warm");
        s.record_wave(1, &[machine(0, 1.25, 1, 1, 2)], 0, 7);
        let line = render_wave_line("warm", &s.health()[0]);
        assert!(line.contains("obs[warm] wave   1"), "{line}");
        assert!(line.contains("store 7"), "{line}");
        assert_eq!(line, render_wave_line("warm", &s.health()[0]));
    }
}
