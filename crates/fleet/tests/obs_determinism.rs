//! The observability determinism contract: the `--obs-out` time series,
//! the wave health rows, and the watchdog report are keyed on wave index
//! only, so they are byte-identical at any worker-pool width.

use ace_fleet::{
    fleet_registry_version, run_fleet_observed, FleetConfig, ObsGate, ObsSampler, TuningStore,
};
use ace_telemetry::{write_obs_jsonl, Telemetry};

fn test_config() -> FleetConfig {
    let mut cfg = FleetConfig::preset("smoke").expect("smoke preset");
    cfg.machines = 8;
    cfg.wave_size = 4;
    cfg.admit_limit = 4;
    cfg.measure_baseline = false;
    cfg.instruction_limit = 200_000;
    cfg
}

/// Runs a cold + warm pass with samplers attached and returns the
/// serialized obs stream plus the watchdog reports.
fn observed_run(jobs: usize) -> (Vec<u8>, String, String) {
    let cfg = test_config();
    let tel = Telemetry::counting();
    let mut store = TuningStore::in_memory(fleet_registry_version(), TuningStore::DEFAULT_CAPACITY);
    let mut cold_obs = ObsSampler::new("cold");
    let mut warm_obs = ObsSampler::new("warm");
    run_fleet_observed(&cfg, &mut store, jobs, &tel, Some(&mut cold_obs)).expect("cold pass");
    run_fleet_observed(&cfg, &mut store, jobs, &tel, Some(&mut warm_obs)).expect("warm pass");

    let gate = ObsGate::default();
    let cold_report = gate.check("cold", cold_obs.health()).render();
    let warm_report = gate.check("warm", warm_obs.health()).render();

    let mut records = cold_obs.into_records();
    records.extend(warm_obs.into_records());
    let mut bytes = Vec::new();
    write_obs_jsonl(&mut bytes, &records).expect("obs serializes");
    (bytes, cold_report, warm_report)
}

#[test]
fn obs_stream_is_byte_identical_across_worker_counts() {
    let serial = observed_run(1);
    let parallel = observed_run(4);

    assert_eq!(
        String::from_utf8_lossy(&serial.0),
        String::from_utf8_lossy(&parallel.0),
        "obs JSONL must not depend on --jobs"
    );
    assert_eq!(serial.1, parallel.1, "cold watchdog report differs");
    assert_eq!(serial.2, parallel.2, "warm watchdog report differs");

    // Sanity: both passes actually sampled (two waves each).
    let waves = String::from_utf8_lossy(&serial.0).lines().count();
    assert_eq!(waves, 4, "expected 2 waves x 2 passes");
}
